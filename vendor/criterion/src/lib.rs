//! A small, dependency-free re-implementation of the subset of the
//! [`criterion`](https://docs.rs/criterion) API this workspace uses.
//!
//! The build environment is offline, so the real crate cannot be
//! fetched. This stand-in keeps the bench sources unchanged and still
//! *measures*: each target is warmed up, then timed over enough
//! iterations to fill the measurement window, and the mean per-iteration
//! wall-clock time is printed in criterion's familiar one-line format.
//! Statistical analysis (outlier detection, regression vs saved
//! baselines, HTML reports) is not implemented.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results collected by [`run_target`] for the optional `--json` sink.
static RESULTS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-target timing loop handle.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX);
        // Measurement: enough iterations to fill the window, capped by
        // the sample size floor so fast targets still average stably.
        let target = self.measurement_time;
        let iters = if per_iter.is_zero() {
            self.sample_size as u64
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)) as u64
        }
        .clamp(1, 1_000_000_000)
        .max((self.sample_size as u64).min(64));
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.last_mean = Some(elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
}

fn run_target(id: &str, mean: Option<Duration>) {
    match mean {
        Some(mean) => {
            println!("{id:<50} time: [{mean:?}]");
            if let Ok(mut results) = RESULTS.lock() {
                results.push((id.to_string(), format!("{mean:?}")));
            }
        }
        None => println!("{id:<50} time: [not measured]"),
    }
}

/// Writes every result timed so far as a flat JSON object
/// (`{"name": "1.23ms", ...}`) when the bench binary was invoked with
/// `--json <path>` (or `--json=<path>`). Without the flag this is a
/// no-op, so local `cargo bench` runs are unaffected.
///
/// [`criterion_main!`] calls this after all groups finish; CI uses it to
/// fold each bench suite into a `BENCH_*.json` artifact without
/// re-parsing the human-readable one-line output.
pub fn write_json_results() {
    let mut args = std::env::args();
    let mut path: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--json" {
            path = args.next();
        } else if let Some(rest) = arg.strip_prefix("--json=") {
            path = Some(rest.to_string());
        }
    }
    let Some(path) = path else { return };
    let results = match RESULTS.lock() {
        Ok(results) => results,
        Err(_) => return,
    };
    let mut out = String::from("{\n");
    for (i, (name, time)) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Bench ids are path-like (`group/target/param`); none contain
        // characters that need JSON escaping.
        out.push_str(&format!("  \"{name}\": \"{time}\""));
    }
    out.push_str("\n}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("criterion: could not write {path}: {err}");
        std::process::exit(1);
    }
    println!("bench results -> {path}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    fn bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            last_mean: None,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        run_target(id, b.last_mean);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample-size floor for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the warm-up window for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            last_mean: None,
        }
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        run_target(&format!("{}/{}", self.name, id), b.last_mean);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b, input);
        run_target(&format!("{}/{}", self.name, id), b.last_mean);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_results();
        }
    };
}
