//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the deterministic per-case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates values until `f` accepts one (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backing type).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// The `prop::bool::ANY` strategy.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// Uniform boolean strategy.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                // unit_f64 is in [0,1); nudge the top so `hi` is reachable.
                let u = (rng.unit_f64() * (1.0 + f64::EPSILON)).min(1.0) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Size specification for collection strategies: an exact length or a
/// half-open/inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a `Vec` strategy: `vec(0u64..10, 1..20)` or `vec(strat, 64)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// String-pattern strategy for `&str` literals.
///
/// Supports the tiny regex subset the workspace uses: a sequence of
/// atoms, where an atom is a literal character or a `[a-z0-9_]`-style
/// class (with ranges), optionally followed by `{n}` or `{m,n}`
/// repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.class[rng.below(atom.class.len())]);
            }
        }
        out
    }
}

struct PatternAtom {
    class: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "inverted class range in {pattern:?}");
                    class.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    class.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        atoms.push(PatternAtom { class, min, max });
    }
    atoms
}
