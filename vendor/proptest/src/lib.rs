//! A small, dependency-free re-implementation of the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment is offline, so the real crate cannot be fetched;
//! this vendored stand-in keeps the property-test sources unchanged. It
//! generates random cases deterministically (per test name + case index)
//! but performs no shrinking: a failing case reports its case index and
//! the assertion message, which is reproducible because generation is
//! seeded.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! * integer/float range strategies (`0u64..100`, `0.0f64..=1.0`)
//! * `prop::collection::vec(strategy, size)`, tuple strategies,
//!   `prop::bool::ANY`, `any::<bool>()`, `Just`, `prop_oneof!`,
//!   `.prop_map(..)`, simple `"[a-z]{1,8}"` string-pattern strategies
//! * `ProptestConfig::with_cases(n)`, with the `PROPTEST_CASES`
//!   environment variable clamping the per-test case count downward.

pub mod strategy;
pub mod test_runner;

/// Namespaced strategy modules, mirroring `proptest::prop`-style paths
/// (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::{BoolAny, ANY};
    }
}

/// Arbitrary-by-type entry point: `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::BoolAny;
    fn arbitrary() -> Self::Strategy {
        strategy::BoolAny
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The common prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property '{}' failed at case {case}/{cases}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} vs {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{} ({:?} vs {:?})", format!($($fmt)*), l, r);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Picks one of several strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
