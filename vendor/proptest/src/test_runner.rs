//! Deterministic case generation and the runner configuration.

/// Why a single property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with the contained message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "inputs rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Runner configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// variable, which *clamps downward* so CI can cap suite runtime
    /// without inflating intentionally small counts.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(env_cases) => self.cases.min(env_cases),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case RNG (SplitMix64 over a hash of the property
/// name and the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one case of one named property. Deterministic: the
    /// same `(name, case)` always produces the same stream.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) has no valid output");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
