//! Shared scaffolding for the experiment-regenerator binaries.
//!
//! Every binary accepts `--smoke` to run the reduced-scale variant the
//! integration tests use; the default is full paper fidelity.

use pad::experiments::Fidelity;

/// Parses the common CLI: `--smoke` selects the reduced scale.
pub fn fidelity_from_args() -> Fidelity {
    if std::env::args().any(|a| a == "--smoke") {
        Fidelity::Smoke
    } else {
        Fidelity::Paper
    }
}

/// Prints a standard experiment banner.
pub fn banner(name: &str, paper_ref: &str, fidelity: Fidelity) {
    println!("=== {name} — reproduces {paper_ref} ===");
    println!(
        "fidelity: {}\n",
        match fidelity {
            Fidelity::Paper => "paper scale",
            Fidelity::Smoke => "smoke (reduced)",
        }
    );
}
