//! Runs every experiment regenerator in sequence — the one-shot
//! "reproduce the whole evaluation section" entry point.

use pad::experiments::{
    background, detect_rates, fig05, fig06, fig07, fig08, fig12, fig13, fig14, fig15, fig16, fig17,
    table1,
};

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("all_experiments", "every table and figure of §VI", fidelity);
    println!("{}", background::fig01().render());
    println!("{}", background::fig02_render());
    println!("{}", fig05::run(fidelity).render());
    println!("{}", fig06::run(fidelity).render());
    println!("{}", fig07::run(fidelity).render());
    println!("{}", fig08::run(fidelity).render());
    println!("{}", table1::run(fidelity).render());
    println!("{}", detect_rates::run(fidelity).render());
    println!("{}", fig12::run(fidelity).render());
    println!("{}", fig13::run(fidelity).render());
    println!("{}", fig14::run(fidelity).render());
    println!("{}", fig15::run(fidelity).render());
    println!("{}", fig16::run(fidelity).render());
    println!("{}", fig17::run(fidelity).render());
}
