//! Regenerates Figure 2: security-technology adoption survey.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig02_survey", "Figure 2 (SANS adoption survey)", fidelity);
    print!("{}", pad::experiments::background::fig02_render());
}
