//! Regenerates the fault-tolerance table: survival under coordinator-
//! message loss with the watchdog fallback armed vs frozen stale plans
//! (not in the paper — the robustness extension's headline result).
//!
//! Accepts `--jobs <N>` to fan the `(mode, loss, seed)` grid across
//! workers; the table is byte-identical for any worker count.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    let jobs = jobs_from_args();
    pad_bench::banner(
        "fault_tolerance",
        "watchdog fallback vs frozen plans (robustness extension)",
        fidelity,
    );
    print!(
        "{}",
        pad::experiments::fault_tolerance::run_with_jobs(fidelity, jobs).render()
    );
}

/// Parses `--jobs <N>` (default 1).
fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                });
        }
    }
    1
}
