//! Regenerates Figure 6: the two-phase attack demonstration timeline.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner(
        "fig06_two_phase",
        "Figure 6 (two-phase attack demo)",
        fidelity,
    );
    print!("{}", pad::experiments::fig06::run(fidelity).render());
}
