//! Regenerates Figure 7: failed attempts vs effective attacks.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner(
        "fig07_effective_attack",
        "Figure 7 (effective attack demo)",
        fidelity,
    );
    print!("{}", pad::experiments::fig07::run(fidelity).render());
}
