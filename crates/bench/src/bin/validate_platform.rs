//! Runs the platform-validation checks: the premises every experiment
//! leans on, as executable pass/fail assertions.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("validate_platform", "§V platform validation", fidelity);
    let checks = pad::experiments::validation::run(fidelity);
    print!("{}", pad::experiments::validation::render(&checks));
    if checks.iter().any(|c| !c.passed) {
        std::process::exit(1);
    }
}
