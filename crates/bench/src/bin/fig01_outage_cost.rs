//! Regenerates Figure 1: the CDF of data-center power-failure cost.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig01_outage_cost", "Figure 1 (Ponemon cost CDF)", fidelity);
    print!("{}", pad::experiments::background::fig01().render());
}
