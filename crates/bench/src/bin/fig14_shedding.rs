//! Regenerates Figure 14: load shedding under cluster-wide surges.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig14_shedding", "Figure 14 (load shedding)", fidelity);
    print!("{}", pad::experiments::fig14::run(fidelity).render());
}
