//! Regenerates Figure 5: SOC standard deviation across rack batteries,
//! online vs offline charging, over a month of trace-driven operation.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner(
        "fig05_soc_stddev",
        "Figure 5 (battery unevenness)",
        fidelity,
    );
    print!("{}", pad::experiments::fig05::run(fidelity).render());
}
