//! Runs the design-choice ablation sweeps (P_ideal, vDEB reserve, grant
//! interval, capping latency, battery wear by scheme) — sensitivity
//! analysis the paper asserts but does not report.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner(
        "ablations",
        "design-choice sensitivity (beyond the paper)",
        fidelity,
    );
    print!("{}", pad::experiments::ablation::run_all(fidelity));
}
