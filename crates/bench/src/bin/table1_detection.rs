//! Regenerates Table I: spike detection rate by metering interval.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("table1_detection", "Table I (detection rates)", fidelity);
    print!("{}", pad::experiments::table1::run(fidelity).render());
}
