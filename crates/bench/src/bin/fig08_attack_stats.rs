//! Regenerates Figure 8 (A, B, C): effective-attack counts vs node
//! count, spike width and frequency.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner(
        "fig08_attack_stats",
        "Figure 8 A/B/C (attack statistics)",
        fidelity,
    );
    print!("{}", pad::experiments::fig08::run(fidelity).render());
}
