//! Measures the attacker's side-channel information yield against PS vs
//! vDEB — the §IV.B.1 claim that capacity sharing blinds reconnaissance.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("recon_value", "§IV.B.1 recon-noise claim", fidelity);
    let outcomes = pad::experiments::recon::run(fidelity);
    print!("{}", pad::experiments::recon::render(&outcomes));
}
