//! Regenerates Figure 12: collected dense/sparse power-virus traces.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig12_traces", "Figure 12 (collected traces)", fidelity);
    print!("{}", pad::experiments::fig12::run(fidelity).render());
}
