//! Regenerates Figure 17: µDEB capacity vs cost ratio and survival.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig17_cost", "Figure 17 (cost efficiency)", fidelity);
    print!("{}", pad::experiments::fig17::run(fidelity).render());
}
