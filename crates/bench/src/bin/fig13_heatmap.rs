//! Regenerates Figure 13: DEB usage maps, conventional vs PAD.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig13_heatmap", "Figure 13 (DEB usage maps)", fidelity);
    print!("{}", pad::experiments::fig13::run(fidelity).render());
}
