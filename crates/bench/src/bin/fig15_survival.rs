//! Regenerates Figure 15: survival time across the six schemes under the
//! full attack matrix — the paper's headline result.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig15_survival", "Figure 15 (survival time)", fidelity);
    print!("{}", pad::experiments::fig15::run(fidelity).render());
}
