//! Regenerates the Table I extension: streaming detector bank vs
//! interval metering, plus baseline false-positive rate and latency.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner(
        "detect_rates",
        "Table I extension (detector bank)",
        fidelity,
    );
    print!("{}", pad::experiments::detect_rates::run(fidelity).render());
}
