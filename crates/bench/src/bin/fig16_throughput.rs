//! Regenerates Figure 16 (A, B): throughput under attack, vs rate and
//! spike width.

fn main() {
    let fidelity = pad_bench::fidelity_from_args();
    pad_bench::banner("fig16_throughput", "Figure 16 A/B (throughput)", fidelity);
    print!("{}", pad::experiments::fig16::run(fidelity).render());
}
