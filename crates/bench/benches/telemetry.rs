//! Benchmarks of the telemetry fast path: the same simulation slice run
//! with telemetry disabled (baseline), with a `NullRecorder` sink
//! (aggregates + counters only), and with a live ring sink. The
//! acceptance target is that the null path stays within a few percent of
//! baseline — enabling the registry must not tax the simulator's hot
//! loop when nobody is recording.

use criterion::{criterion_group, criterion_main, Criterion};
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use simkit::telemetry::TelemetrySink;
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Duration;
use workload::synth::SynthConfig;

fn built_sim() -> ClusterSim {
    let config = SimConfig::small_test(Scheme::Pad);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_mins(10),
        mean_utilization: 0.6,
        ..SynthConfig::small_test()
    }
    .generate_direct(11);
    ClusterSim::new(config, trace).expect("valid config")
}

fn run_slice(mut sim: ClusterSim) -> ClusterSim {
    for _ in 0..50 {
        sim.step(SimDuration::from_millis(100));
    }
    sim
}

fn bench_telemetry(c: &mut Criterion) {
    let base = built_sim();
    // Metric registration is a one-time setup cost; build each variant
    // outside the timed loop so the iterations measure stepping only.
    let null_sim = {
        let mut sim = base.clone();
        sim.enable_telemetry_sink(TelemetrySink::Null);
        sim
    };
    let ring_sim = {
        let mut sim = base.clone();
        sim.enable_telemetry(1 << 16);
        sim
    };
    let mut group = c.benchmark_group("sim_50_steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(run_slice(base.clone())))
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| black_box(run_slice(null_sim.clone())))
    });
    group.bench_function("ring_sink", |b| {
        b.iter(|| black_box(run_slice(ring_sim.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
