//! Benchmarks of the self-profiling path: the same simulation slice run
//! with no profiler installed (baseline), with a Null profiler installed
//! (the "shipped but off" path every production run takes), and with
//! live phase timing enabled. The acceptance target is that the Null
//! path stays within a few percent of baseline — the step() phase hooks
//! must collapse to one untaken branch each when profiling is off. A
//! paired measurement at the end enforces the bound, and the live column
//! is reported so the cost of turning the profiler on stays visible.

use criterion::{criterion_group, criterion_main, Criterion};
use pad::prof::SimProfiler;
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};
use workload::synth::SynthConfig;

fn built_sim() -> ClusterSim {
    let config = SimConfig::small_test(Scheme::Pad);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_mins(10),
        mean_utilization: 0.6,
        ..SynthConfig::small_test()
    }
    .generate_direct(11);
    ClusterSim::new(config, trace).expect("valid config")
}

/// A clone with the Null profiler installed: hooks present, clock off.
fn with_null_profiler(base: &ClusterSim) -> ClusterSim {
    let mut sim = base.clone();
    let racks = sim.config().topology.racks();
    sim.enable_profiler(SimProfiler::null(racks));
    sim
}

/// A clone with live phase timing enabled.
fn with_live_profiler(base: &ClusterSim) -> ClusterSim {
    let mut sim = base.clone();
    sim.enable_profiling();
    sim
}

fn run_slice(mut sim: ClusterSim) -> ClusterSim {
    for _ in 0..50 {
        sim.step(SimDuration::from_millis(100));
    }
    sim
}

fn bench_prof(c: &mut Criterion) {
    let base = built_sim();
    let null_sim = with_null_profiler(&base);
    let live_sim = with_live_profiler(&base);
    let mut group = c.benchmark_group("prof_sim_50_steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(run_slice(base.clone())))
    });
    group.bench_function("null_profiler", |b| {
        b.iter(|| black_box(run_slice(null_sim.clone())))
    });
    group.bench_function("live_profiler", |b| {
        b.iter(|| black_box(run_slice(live_sim.clone())))
    });
    group.finish();
}

/// Paired overhead check: interleave baseline and Null-profiler rounds
/// and compare the best round of each (min-of-rounds is robust to
/// scheduler noise). The disabled profiler must cost at most 5% — this
/// is the bound the CI perf step greps for. The live ratio is printed
/// for the record but not gated: timing twelve phases per step has a
/// real (small) cost, and that cost is the profiler's job to measure.
fn check_disabled_overhead(_c: &mut Criterion) {
    let base = built_sim();
    let null_sim = with_null_profiler(&base);
    let live_sim = with_live_profiler(&base);
    // Warm all paths before timing.
    black_box(run_slice(base.clone()));
    black_box(run_slice(null_sim.clone()));
    black_box(run_slice(live_sim.clone()));
    let mut best_base = Duration::MAX;
    let mut best_null = Duration::MAX;
    let mut best_live = Duration::MAX;
    for _ in 0..15 {
        let t = Instant::now();
        black_box(run_slice(base.clone()));
        best_base = best_base.min(t.elapsed());
        let t = Instant::now();
        black_box(run_slice(null_sim.clone()));
        best_null = best_null.min(t.elapsed());
        let t = Instant::now();
        black_box(run_slice(live_sim.clone()));
        best_live = best_live.min(t.elapsed());
    }
    let ratio = best_null.as_secs_f64() / best_base.as_secs_f64();
    let live_ratio = best_live.as_secs_f64() / best_base.as_secs_f64();
    println!("prof_overhead_ratio: {ratio:.4} (Null profiler vs no profiler, min of 15 rounds)");
    println!("prof_live_ratio: {live_ratio:.4} (live phase timing vs no profiler, informational)");
    assert!(
        ratio <= 1.05,
        "disabled profiler path is {:.1}% over baseline (budget 5%)",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_prof, check_disabled_overhead);
criterion_main!(benches);
