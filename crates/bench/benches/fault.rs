//! Benchmarks of the fault-injection path: the same simulation slice
//! run with no injector installed (baseline), with an injector armed on
//! a plan whose windows never open (the "deployed but quiet" path), and
//! with sensor + control-path faults actively firing. The acceptance
//! target is that the armed-idle path stays within a few percent of
//! baseline — carrying the injector must not tax the simulator's hot
//! loop while no fault window is open. A paired measurement at the end
//! enforces the bound.

use criterion::{criterion_group, criterion_main, Criterion};
use pad::fault::DegradedConfig;
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use simkit::fault::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};
use workload::synth::SynthConfig;

fn built_sim() -> ClusterSim {
    let config = SimConfig::small_test(Scheme::Pad);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_mins(10),
        mean_utilization: 0.6,
        ..SynthConfig::small_test()
    }
    .generate_direct(11);
    ClusterSim::new(config, trace).expect("valid config")
}

/// A plan whose only window opens far past the benchmark slice: the
/// injector is armed and scanned every step, but nothing ever fires.
fn idle_plan() -> FaultPlan {
    FaultPlan::new("bench-idle").with(FaultSpec::new(
        FaultKind::SensorNoise { std: 0.05 },
        FaultTarget::All,
        SimTime::from_hours(9),
        SimTime::from_hours(10),
    ))
}

/// Sensor and control-path faults live from the first step.
fn active_plan() -> FaultPlan {
    FaultPlan::new("bench-active")
        .with(FaultSpec::new(
            FaultKind::SensorNoise { std: 0.05 },
            FaultTarget::All,
            SimTime::ZERO,
            SimTime::from_hours(10),
        ))
        .with(FaultSpec::new(
            FaultKind::MsgLoss { p: 0.3 },
            FaultTarget::All,
            SimTime::ZERO,
            SimTime::from_hours(10),
        ))
}

fn armed(base: &ClusterSim, plan: FaultPlan) -> ClusterSim {
    let mut sim = base.clone();
    sim.enable_faults(
        plan,
        DegradedConfig::for_grant_interval(sim.config().grant_interval),
        7,
    )
    .expect("bench plan is valid");
    sim
}

fn run_slice(mut sim: ClusterSim) -> ClusterSim {
    for _ in 0..50 {
        sim.step(SimDuration::from_millis(100));
    }
    sim
}

fn bench_fault(c: &mut Criterion) {
    let base = built_sim();
    let idle_sim = armed(&base, idle_plan());
    let active_sim = armed(&base, active_plan());
    let mut group = c.benchmark_group("fault_sim_50_steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(run_slice(base.clone())))
    });
    group.bench_function("armed_idle", |b| {
        b.iter(|| black_box(run_slice(idle_sim.clone())))
    });
    group.bench_function("armed_active", |b| {
        b.iter(|| black_box(run_slice(active_sim.clone())))
    });
    group.finish();
}

/// Paired overhead check: interleave baseline and armed-idle rounds and
/// compare the best round of each (min-of-rounds is robust to scheduler
/// noise). The armed-but-quiet injector must cost at most 5% — this is
/// the bound the CI fault-suite step greps for.
fn check_idle_overhead(_c: &mut Criterion) {
    let base = built_sim();
    let idle_sim = armed(&base, idle_plan());
    // Warm both paths before timing.
    black_box(run_slice(base.clone()));
    black_box(run_slice(idle_sim.clone()));
    let mut best_base = Duration::MAX;
    let mut best_idle = Duration::MAX;
    for _ in 0..15 {
        let t = Instant::now();
        black_box(run_slice(base.clone()));
        best_base = best_base.min(t.elapsed());
        let t = Instant::now();
        black_box(run_slice(idle_sim.clone()));
        best_idle = best_idle.min(t.elapsed());
    }
    let ratio = best_idle.as_secs_f64() / best_base.as_secs_f64();
    println!("fault_overhead_ratio: {ratio:.4} (armed-idle vs no injector, min of 15 rounds)");
    assert!(
        ratio <= 1.05,
        "armed-idle fault path is {:.1}% over baseline (budget 5%)",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_fault, check_idle_overhead);
criterion_main!(benches);
