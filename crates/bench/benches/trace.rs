//! Benchmarks of the span-tracing fast path: the same attacked
//! simulation slice run with tracing disabled (baseline), with a
//! `Null` span sink (tracer installed, every span hook gated off), and
//! with a live ring sink. The acceptance target is that the null path
//! stays within a few percent of baseline — installing the tracer must
//! not tax the simulator's hot loop when nobody is recording.

use attack::scenario::{AttackScenario, AttackStyle};
use attack::virus::VirusClass;
use criterion::{criterion_group, criterion_main, Criterion};
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use simkit::time::{SimDuration, SimTime};
use simkit::trace::SpanSink;
use std::hint::black_box;
use std::time::Duration;
use workload::synth::SynthConfig;

fn built_sim() -> ClusterSim {
    let config = SimConfig::small_test(Scheme::Pad);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_mins(10),
        mean_utilization: 0.6,
        ..SynthConfig::small_test()
    }
    .generate_direct(11);
    let mut sim = ClusterSim::new(config, trace).expect("valid config");
    // Attack the slice so the traced variants actually open and close
    // episode spans — an idle cluster would make the ring sink look free.
    let scenario = AttackScenario::new(AttackStyle::Dense, VirusClass::CpuIntensive, 2);
    sim.set_attack(scenario, sim.most_vulnerable_rack(), SimTime::ZERO);
    sim
}

fn run_slice(mut sim: ClusterSim) -> ClusterSim {
    for _ in 0..50 {
        sim.step(SimDuration::from_millis(100));
    }
    sim
}

fn bench_trace(c: &mut Criterion) {
    let base = built_sim();
    // Tracer installation is a one-time setup cost; build each variant
    // outside the timed loop so the iterations measure stepping only.
    let null_sim = {
        let mut sim = base.clone();
        sim.enable_tracing_sink(SpanSink::Null);
        sim
    };
    let ring_sim = {
        let mut sim = base.clone();
        sim.enable_tracing(1 << 16);
        sim
    };
    let mut group = c.benchmark_group("sim_50_steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("trace_baseline", |b| {
        b.iter(|| black_box(run_slice(base.clone())))
    });
    group.bench_function("trace_null_sink", |b| {
        b.iter(|| black_box(run_slice(null_sim.clone())))
    });
    group.bench_function("trace_ring_sink", |b| {
        b.iter(|| black_box(run_slice(ring_sim.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
