//! Microbenchmarks of the substrate crates: battery chemistry, breaker
//! thermal model, metering, RNG and the event queue — the inner loops the
//! month-long simulations spend their time in.

use battery::model::EnergyStorage;
use battery::pack::BatteryCabinet;
use battery::units::Watts;
use criterion::{criterion_group, criterion_main, Criterion};
use powerinfra::breaker::CircuitBreaker;
use powerinfra::metering::PowerMeter;
use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_kibam_step(c: &mut Criterion) {
    c.bench_function("kibam_discharge_100ms", |b| {
        let mut cab = BatteryCabinet::facebook_v1(Watts(5210.0));
        b.iter(|| {
            let delivered = cab.discharge(black_box(Watts(400.0)), SimDuration::from_millis(100));
            if cab.soc() < 0.2 {
                cab.set_soc(1.0);
            }
            black_box(delivered)
        });
    });
}

fn bench_breaker_step(c: &mut Criterion) {
    c.bench_function("breaker_step", |b| {
        let mut cb = CircuitBreaker::new(Watts(4000.0));
        b.iter(|| {
            let state = cb.step(black_box(Watts(4100.0)), SimDuration::from_millis(100));
            if cb.is_tripped() {
                cb.reset();
            }
            black_box(state)
        });
    });
}

fn bench_meter_feed(c: &mut Criterion) {
    c.bench_function("meter_feed_100ms", |b| {
        let mut meter = PowerMeter::new(SimDuration::from_secs(5));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            meter.feed(black_box(Watts(3000.0)), t, SimDuration::from_millis(100));
            t += SimDuration::from_millis(100);
            if meter.samples().len() > 1000 {
                meter.take_samples();
            }
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_normal", |b| {
        let mut rng = RngStream::new(1);
        b.iter(|| black_box(rng.normal()));
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut i = 0u64;
        b.iter(|| {
            q.push(SimTime::from_millis(i % 1000), i);
            i += 1;
            if q.len() > 512 {
                black_box(q.pop());
            }
        });
    });
}

criterion_group!(
    benches,
    bench_kibam_step,
    bench_breaker_step,
    bench_meter_feed,
    bench_rng,
    bench_event_queue
);
criterion_main!(benches);
