//! Benchmarks of the `padsimd` daemon ingest path: a recorded session
//! pushed through the wire protocol in memory (classify + parse +
//! online pipeline, no socket), the same session over a real loopback
//! TCP daemon, and the connect/hello/end session cycle. The paired
//! measurement at the end prints the grep-able throughput line the CI
//! daemon-suite step records, and enforces a loose floor so a
//! catastrophic regression fails the step outright.

use criterion::{criterion_group, criterion_main, Criterion};
use pad::detect::DetectConfig;
use pad::pipeline::PipelineConfig;
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use paddaemon::client::{send, SendJob};
use paddaemon::server::{serve, ServeOptions};
use paddaemon::session::run_session;
use paddaemon::state::DaemonState;
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};
use workload::synth::SynthConfig;

/// A recorded telemetry stream from the small testbed: the payload
/// every measurement in this file replays.
fn recorded_telemetry() -> String {
    let config = SimConfig::small_test(Scheme::Pad);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_mins(10),
        mean_utilization: 0.6,
        ..SynthConfig::small_test()
    }
    .generate_direct(11);
    let mut sim = ClusterSim::new(config, trace).expect("valid config");
    sim.enable_telemetry(1 << 20);
    sim.enable_detection(DetectConfig::default());
    for _ in 0..200 {
        sim.step(SimDuration::from_millis(100));
    }
    sim.take_telemetry()
        .expect("telemetry enabled")
        .serialize(simkit::telemetry::Format::Jsonl)
}

/// One full session as request bytes: hello, the stream, end.
fn session_request(telemetry: &str) -> Vec<u8> {
    format!("hello bench jsonl\n{telemetry}end\n").into_bytes()
}

/// An in-memory session transport: reads the prepared request, drops
/// the replies. Isolates the daemon's per-line work from the socket.
struct Wire {
    input: io::Cursor<Vec<u8>>,
}

impl Read for Wire {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for Wire {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Starts a loopback daemon in a thread and discovers its data port.
fn start_daemon() -> (String, std::thread::JoinHandle<io::Result<()>>) {
    let dir = std::env::temp_dir().join(format!("padsimd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ports_file = dir.join("ports.txt");
    let opts = ServeOptions {
        listen: Some("127.0.0.1:0".to_string()),
        ports_file: Some(ports_file.clone()),
        ..ServeOptions::default()
    };
    let handle = std::thread::spawn(move || serve(opts));
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Ok(text) = std::fs::read_to_string(&ports_file) {
            for line in text.lines() {
                if let Some(("data", addr)) = line.split_once(' ') {
                    return (addr.to_string(), handle);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon did not write its data address in time");
}

fn stop_daemon(addr: &str, handle: std::thread::JoinHandle<io::Result<()>>) {
    let replies = send(
        addr,
        &SendJob {
            shutdown: true,
            ..SendJob::default()
        },
    )
    .expect("shutdown control line");
    assert_eq!(replies, vec!["ok shutdown".to_string()]);
    handle.join().expect("serve thread").expect("clean exit");
}

fn bench_daemon(c: &mut Criterion) {
    let telemetry = recorded_telemetry();
    let request = session_request(&telemetry);

    // The socket-free wire path: every line classified, parsed, and fed
    // to the tenant's online pipeline, summary rendered on `end`.
    let mut group = c.benchmark_group("daemon_session");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("ingest_in_memory", |b| {
        b.iter(|| {
            let state = DaemonState::new(PipelineConfig::default());
            let wire = Wire {
                input: io::Cursor::new(request.clone()),
            };
            black_box(run_session(wire, &state).expect("in-memory session"))
        })
    });
    // The same session with self-observability off: no per-tenant
    // monitor, no ops histograms, no ops log. The delta against the
    // instrumented path above is what the watchers cost.
    group.bench_function("ingest_in_memory_bare", |b| {
        b.iter(|| {
            let state = DaemonState::bare(PipelineConfig::default());
            let wire = Wire {
                input: io::Cursor::new(request.clone()),
            };
            black_box(run_session(wire, &state).expect("in-memory session"))
        })
    });
    group.finish();

    // The same session over a real loopback socket, plus the empty
    // connect/hello/end cycle that bounds per-session overhead.
    let (addr, handle) = start_daemon();
    let full_job = SendJob {
        tenant: "bench".to_string(),
        format: "jsonl",
        telemetry: telemetry.clone(),
        end: true,
        ..SendJob::default()
    };
    let cycle_job = SendJob {
        tenant: "cycle".to_string(),
        format: "jsonl",
        end: true,
        ..SendJob::default()
    };
    let mut group = c.benchmark_group("daemon_loopback");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("ingest_tcp", |b| {
        b.iter(|| black_box(send(&addr, &full_job).expect("session replies")))
    });
    group.bench_function("session_cycle", |b| {
        b.iter(|| black_box(send(&addr, &cycle_job).expect("cycle replies")))
    });
    group.finish();
    stop_daemon(&addr, handle);
}

/// Paired throughput measurement over loopback TCP: stream the recorded
/// session repeatedly and take the best round (min-of-rounds is robust
/// to scheduler noise). Prints the grep-able line the CI daemon-suite
/// step records, and enforces a floor loose enough for shared runners
/// but tight enough to catch an accidental per-line allocation storm.
fn check_ingest_throughput(_c: &mut Criterion) {
    let telemetry = recorded_telemetry();
    let events = telemetry.lines().count();
    let (addr, handle) = start_daemon();
    let job = SendJob {
        tenant: "throughput".to_string(),
        format: "jsonl",
        telemetry,
        end: true,
        ..SendJob::default()
    };
    black_box(send(&addr, &job).expect("warm-up session"));
    let mut best = Duration::MAX;
    for _ in 0..10 {
        let t = Instant::now();
        black_box(send(&addr, &job).expect("timed session"));
        best = best.min(t.elapsed());
    }
    stop_daemon(&addr, handle);
    let rate = events as f64 / best.as_secs_f64();
    println!(
        "daemon_ingest_events_per_sec: {rate:.0} ({events} events over loopback TCP, min of 10 rounds)"
    );
    assert!(
        rate >= 10_000.0,
        "daemon ingest fell to {rate:.0} events/sec (floor 10k)"
    );
}

/// Paired self-observability overhead measurement on the socket-free
/// wire path: the recorded session through a bare state (no monitors,
/// no ops metrics, no ops log) versus the default instrumented state,
/// min-of-rounds each. Prints the grep-able ratio line the CI
/// daemon-suite step records, and enforces a generous ceiling — the
/// ISSUE budget is 5%, the gate trips well before instrumentation
/// could hide a 50% regression.
fn check_selfobs_overhead(_c: &mut Criterion) {
    let telemetry = recorded_telemetry();
    let request = session_request(&telemetry);
    let events = telemetry.lines().count();
    let run = |bare: bool| {
        let state = if bare {
            DaemonState::bare(PipelineConfig::default())
        } else {
            DaemonState::new(PipelineConfig::default())
        };
        let wire = Wire {
            input: io::Cursor::new(request.clone()),
        };
        black_box(run_session(wire, &state).expect("in-memory session"));
    };
    // Warm both paths, then interleave the timed rounds so drift hits
    // bare and instrumented alike.
    run(true);
    run(false);
    let (mut best_bare, mut best_full) = (Duration::MAX, Duration::MAX);
    for _ in 0..10 {
        let t = Instant::now();
        run(true);
        best_bare = best_bare.min(t.elapsed());
        let t = Instant::now();
        run(false);
        best_full = best_full.min(t.elapsed());
    }
    let ratio = best_full.as_secs_f64() / best_bare.as_secs_f64();
    println!(
        "daemon_selfobs_overhead_ratio: {ratio:.3} ({events} events in memory, \
         instrumented {:.2?} vs bare {:.2?}, min of 10 rounds)",
        best_full, best_bare
    );
    assert!(
        ratio <= 1.5,
        "self-observability overhead ratio {ratio:.3} exceeds 1.5× the bare ingest path"
    );
}

/// Paired crash-recovery overhead measurement on the socket-free wire
/// path: the recorded session with tick-boundary checkpointing into a
/// `--state-dir` versus without, min-of-rounds each, interleaved so
/// drift hits both alike. Prints the grep-able ratio line the CI
/// daemon-suite step records, and enforces the ISSUE ceiling: durable
/// per-tick checkpoints may cost at most 1.5× the unprotected path.
fn check_checkpoint_overhead(_c: &mut Criterion) {
    let telemetry = recorded_telemetry();
    let request = session_request(&telemetry);
    let events = telemetry.lines().count();
    let state_dir = std::env::temp_dir().join(format!("padsimd-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir).expect("state dir");
    let run = |checkpointing: bool| {
        let mut state = DaemonState::new(PipelineConfig::default());
        if checkpointing {
            state.state_dir = Some(state_dir.clone());
        }
        let wire = Wire {
            input: io::Cursor::new(request.clone()),
        };
        black_box(run_session(wire, &state).expect("in-memory session"));
    };
    run(false);
    run(true);
    let (mut best_plain, mut best_ckpt) = (Duration::MAX, Duration::MAX);
    for _ in 0..10 {
        let t = Instant::now();
        run(false);
        best_plain = best_plain.min(t.elapsed());
        let t = Instant::now();
        run(true);
        best_ckpt = best_ckpt.min(t.elapsed());
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    let ratio = best_ckpt.as_secs_f64() / best_plain.as_secs_f64();
    println!(
        "daemon_checkpoint_overhead_ratio: {ratio:.3} ({events} events in memory, \
         checkpointed {:.2?} vs unprotected {:.2?}, min of 10 rounds)",
        best_ckpt, best_plain
    );
    assert!(
        ratio <= 1.5,
        "checkpoint overhead ratio {ratio:.3} exceeds 1.5× the unprotected ingest path"
    );
}

criterion_group!(
    benches,
    bench_daemon,
    check_ingest_throughput,
    check_selfobs_overhead,
    check_checkpoint_overhead
);
criterion_main!(benches);
