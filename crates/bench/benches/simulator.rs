//! Benchmarks of the cluster simulator: per-step cost at fine (100 ms)
//! resolution for each scheme, and synthetic-trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use workload::synth::SynthConfig;

fn sim_for(scheme: Scheme) -> ClusterSim {
    let config = SimConfig::small_test(scheme);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_hours(12),
        mean_utilization: 0.45,
        ..SynthConfig::small_test()
    }
    .generate_direct(1);
    ClusterSim::new(config, trace).expect("valid config")
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step_100ms");
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                let mut sim = sim_for(scheme);
                b.iter(|| black_box(sim.step(SimDuration::from_millis(100))));
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("synth_trace_direct_20x1day", |b| {
        let cfg = SynthConfig::small_test();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cfg.generate_direct(seed))
        });
    });
}

criterion_group!(benches, bench_step, bench_trace_generation);
criterion_main!(benches);
