//! Benchmarks of the parallel sweep engine: the same scenario grid run
//! serially and on a worker pool. On multi-core hosts the jobs=4 targets
//! report the fan-out speedup; on single-core machines they document the
//! (small) coordination overhead. Either way the results are
//! bit-identical — `pad::sweep` tests assert that, this file measures it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pad::schemes::Scheme;
use pad::sim::SimConfig;
use pad::sweep::{ConfigSweep, SurvivalCase};
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Duration;
use workload::synth::SynthConfig;
use workload::trace::ClusterTrace;

fn shared_trace(config: &SimConfig) -> Arc<ClusterTrace> {
    Arc::new(
        SynthConfig {
            machines: config.topology.total_servers(),
            horizon: SimTime::from_hours(1),
            ..SynthConfig::small_test()
        }
        .generate_direct(7),
    )
}

fn cases() -> Vec<SurvivalCase> {
    // Two quiet minutes per scheme: enough work per scenario for the
    // pool to matter, small enough for a tight statistical budget.
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            SurvivalCase::quiet(
                SimConfig::small_test(scheme),
                SimTime::from_mins(2),
                SimDuration::SECOND,
            )
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let trace = shared_trace(&SimConfig::small_test(Scheme::Pad));
    let mut group = c.benchmark_group("sweep_six_schemes");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let sweep = ConfigSweep::new(Arc::clone(&trace), 42).with_jobs(jobs);
                black_box(sweep.run(cases()).expect("valid cases"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
