//! One benchmark per paper table/figure: each target runs its experiment
//! regenerator end-to-end at smoke fidelity, so `cargo bench` exercises
//! every reproduction path and reports its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pad::experiments::{
    background, fig05, fig06, fig07, fig08, fig12, fig13, fig14, fig15, fig16, fig17, table1,
    Fidelity,
};
use std::hint::black_box;
use std::time::Duration;

fn experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_smoke");
    // Each iteration is a whole experiment; keep the statistical budget
    // small so `cargo bench` covers all thirteen in minutes.
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("fig01_outage_cost", |b| {
        b.iter(|| black_box(background::fig01()))
    });
    group.bench_function("fig02_survey", |b| {
        b.iter(|| black_box(background::fig02_render()))
    });
    group.bench_function("fig05_soc_stddev", |b| {
        b.iter(|| black_box(fig05::run(Fidelity::Smoke)))
    });
    group.bench_function("fig06_two_phase", |b| {
        b.iter(|| black_box(fig06::run(Fidelity::Smoke)))
    });
    group.bench_function("fig07_effective_attack", |b| {
        b.iter(|| black_box(fig07::run(Fidelity::Smoke)))
    });
    group.bench_function("fig08_attack_stats", |b| {
        b.iter(|| black_box(fig08::run(Fidelity::Smoke)))
    });
    group.bench_function("table1_detection", |b| {
        b.iter(|| black_box(table1::run(Fidelity::Smoke)))
    });
    group.bench_function("fig12_traces", |b| {
        b.iter(|| black_box(fig12::run(Fidelity::Smoke)))
    });
    group.bench_function("fig13_heatmap", |b| {
        b.iter(|| black_box(fig13::run(Fidelity::Smoke)))
    });
    group.bench_function("fig14_shedding", |b| {
        b.iter(|| black_box(fig14::run(Fidelity::Smoke)))
    });
    group.bench_function("fig15_survival", |b| {
        b.iter(|| black_box(fig15::run(Fidelity::Smoke)))
    });
    group.bench_function("fig16_throughput", |b| {
        b.iter(|| black_box(fig16::run(Fidelity::Smoke)))
    });
    group.bench_function("fig17_cost", |b| {
        b.iter(|| black_box(fig17::run(Fidelity::Smoke)))
    });
    group.finish();
}

criterion_group!(benches, experiments);
criterion_main!(benches);
