//! Benchmarks of the detection engine: the simulator hot loop with the
//! detector stack enabled (vs the undetected baseline), raw detector
//! push throughput, and offline replay of a recorded trace through a
//! fresh stack. The acceptance target is that enabling detection costs
//! the stepping loop only a small constant per tick — the detectors are
//! allocation-free on the steady-state path.

use criterion::{criterion_group, criterion_main, Criterion};
use pad::detect::{DetectConfig, SimDetectors};
use pad::schemes::Scheme;
use pad::sim::{ClusterSim, SimConfig};
use simkit::detect::{EwmaZScore, StreamDetector};
use simkit::telemetry::codec::{parse, Format, ParsedRecord};
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Duration;
use workload::synth::SynthConfig;

fn built_sim() -> ClusterSim {
    let config = SimConfig::small_test(Scheme::Pad);
    let trace = SynthConfig {
        machines: config.topology.total_servers(),
        horizon: SimTime::from_mins(10),
        mean_utilization: 0.6,
        ..SynthConfig::small_test()
    }
    .generate_direct(11);
    ClusterSim::new(config, trace).expect("valid config")
}

fn run_slice(mut sim: ClusterSim) -> ClusterSim {
    for _ in 0..50 {
        sim.step(SimDuration::from_millis(100));
    }
    sim
}

/// A recorded trace to replay: the same slice with telemetry on.
fn recorded_trace() -> (usize, Vec<ParsedRecord>) {
    let mut sim = built_sim();
    let racks = sim.rack_socs().len();
    sim.enable_telemetry(1 << 20);
    sim.enable_detection(DetectConfig::default());
    for _ in 0..200 {
        sim.step(SimDuration::from_millis(100));
    }
    let dump = sim.take_telemetry().expect("telemetry enabled");
    let records = parse(&dump.to_jsonl(), Format::Jsonl).expect("own dump parses");
    (racks, records)
}

fn bench_detect(c: &mut Criterion) {
    let base = built_sim();
    // Stack construction is a one-time setup cost; build the detecting
    // variant outside the timed loop so iterations measure stepping.
    let det_sim = {
        let mut sim = base.clone();
        sim.enable_detection(DetectConfig::default());
        sim
    };
    let mut group = c.benchmark_group("sim_50_steps");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(run_slice(base.clone())))
    });
    group.bench_function("detector_bank", |b| {
        b.iter(|| black_box(run_slice(det_sim.clone())))
    });
    group.finish();

    let mut group = c.benchmark_group("detectors");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("ewma_push_10k", |b| {
        b.iter(|| {
            let mut d = EwmaZScore::new(0.05, 5.0);
            let mut acc = 0.0;
            for i in 0u64..10_000 {
                acc += d.push(SimTime::from_millis(i * 100), (i % 7) as f64).score;
            }
            black_box(acc)
        })
    });
    let (racks, records) = recorded_trace();
    let template = SimDetectors::new(racks, DetectConfig::default());
    group.bench_function("replay_200_ticks", |b| {
        b.iter(|| {
            let mut stack = template.clone();
            black_box(stack.replay(black_box(&records)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
