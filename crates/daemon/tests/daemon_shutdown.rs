//! Graceful shutdown (std-only, via the `shutdown` control line): open
//! sessions drain, pending summaries and telemetry flush to `--out`,
//! and the daemon exits cleanly.

mod common;

use common::{recorded_run, TestDaemon};
use paddaemon::client::{send, Conn, SendJob};
use std::io::Write as _;

#[test]
fn shutdown_drains_open_sessions_and_flushes_outputs() {
    let run = recorded_run(0xD0_1D);
    let daemon = TestDaemon::start("shutdown");
    let out_dir = daemon.out_dir.clone();

    // Stream a session and leave it OPEN: no `end`, no EOF — the
    // connection idles with the stream mid-flight when shutdown hits.
    let mut open_conn = Conn::connect(&daemon.data_addr).unwrap();
    writeln!(open_conn, "hello draining jsonl").unwrap();
    open_conn.write_all(run.telemetry.as_bytes()).unwrap();
    open_conn.write_all(run.spans.as_bytes()).unwrap();
    open_conn.flush().unwrap();

    // A second, finished session rides along.
    let replies = send(
        &daemon.data_addr,
        &SendJob {
            tenant: "done".to_string(),
            format: "jsonl",
            telemetry: run.telemetry.clone(),
            end: true,
            ..SendJob::default()
        },
    )
    .unwrap();
    assert_eq!(format!("{}\n", replies[1]), run.summary_json);

    // Give the open session a moment to ingest everything it was sent
    // before the drain closes it (writes are async to the reader).
    std::thread::sleep(std::time::Duration::from_millis(300));
    daemon.shutdown();
    drop(open_conn);

    // The drained tenant's outputs match the offline pipeline exactly.
    let read = |name: &str| std::fs::read_to_string(out_dir.join(name)).unwrap();
    assert_eq!(read("draining.detect.json"), run.summary_json);
    assert_eq!(read("done.detect.json"), run.summary_json);
    assert_eq!(read("draining.firings.txt"), run.firings);
    assert_eq!(read("draining.incidents.json"), run.incidents_json);
    // Telemetry flush is the exact bytes that were streamed in.
    assert_eq!(read("draining.telemetry.jsonl"), run.telemetry);

    let report = read("daemon_report.json");
    assert!(report.contains("\"tenants\":["), "{report}");
    assert!(report.contains("\"tenant\":\"draining\""));
    assert!(report.contains("\"tenant\":\"done\""));
    assert!(report.contains("\"parse_errors\":0"));
    assert!(
        report.contains("\"sessions_opened\":2"),
        "shutdown-only connections open no session: {report}"
    );
}

#[test]
fn malformed_lines_surface_in_the_flush_report_not_as_aborts() {
    let daemon = TestDaemon::start("badlines");
    let out_dir = daemon.out_dir.clone();
    let telemetry = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":50,\"m\":\"rack-00.draw_w\",\"v\":1.2.3}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
                     not json at all {{{\n\
                     {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n";
    let replies = send(
        &daemon.data_addr,
        &SendJob {
            tenant: "noisy".to_string(),
            format: "jsonl",
            telemetry: telemetry.to_string(),
            end: true,
            ..SendJob::default()
        },
    )
    .unwrap();
    let summary = &replies[1];
    assert!(summary.contains("\"records\":3"), "{summary}");
    assert!(summary.contains("\"ticks\":3"), "{summary}");
    let (_, metrics) = paddaemon::client::http_get(&daemon.http_addr, "/metrics").unwrap();
    assert!(
        metrics.contains("padsimd_parse_errors_total 2\n"),
        "{metrics}"
    );
    assert!(metrics.contains("padsimd_tenant_parse_errors_total{tenant=\"noisy\"} 2\n"));
    daemon.shutdown();
    let report = std::fs::read_to_string(out_dir.join("daemon_report.json")).unwrap();
    assert!(report.contains("\"parse_errors\":2"), "{report}");
}
