//! The crash-recovery goldens: kill the daemon mid-stream at an
//! arbitrary byte offset — including mid-line, including between a
//! checkpoint and the lines consumed after it — restore a fresh daemon
//! from the `--state-dir` checkpoints, resume the stream from the
//! acked durable sequence number, and the final flushed outputs must be
//! **byte-identical** to what the offline pipeline says about the
//! uninterrupted trace. Pinned across both wire formats and a
//! three-tenant interleaving mixing clean EOFs with hard resets.
//!
//! The "crash" is a reader that raises `ConnectionReset` with no EOF:
//! the session dies exactly as a killed process's sockets do, with no
//! drain and no finalize — only what checkpoints made durable survives.

mod common;

use std::io::{self, Cursor, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

use common::{offline_alerts, recorded_run, scratch_dir, RecordedRun};
use pad::pipeline::PipelineConfig;
use paddaemon::server::flush_outputs;
use paddaemon::session::run_session;
use paddaemon::state::{checkpoint_schema, DaemonState};
use simkit::telemetry::{parse, render_parsed, Format, CSV_HEADER};
use simkit::trace::SPAN_CSV_HEADER;

/// One recorded attacked run shared by every test in this binary (the
/// testbed sim is the expensive part; the goldens all replay it).
fn run() -> &'static RecordedRun {
    static RUN: OnceLock<RecordedRun> = OnceLock::new();
    RUN.get_or_init(|| recorded_run(0xC4A5))
}

/// A stream that delivers a fixed byte prefix and then fails with
/// `ConnectionReset` — a killed peer, not a closed one. The session
/// must abort without draining (no finalize, no summary).
struct CrashStream {
    input: Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl Read for CrashStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.input.read(buf)? {
            0 => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "peer killed",
            )),
            n => Ok(n),
        }
    }
}

impl Write for CrashStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A well-behaved stream: the script, then clean EOF.
struct CleanStream {
    input: Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl Read for CleanStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for CleanStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs a session over `payload` that ends in a peer kill; returns the
/// replies written before the crash.
fn crash_session(state: &DaemonState, payload: Vec<u8>) -> String {
    let mut stream = CrashStream {
        input: Cursor::new(payload),
        output: Vec::new(),
    };
    let err = run_session(&mut stream, state).expect_err("a reset aborts the session");
    assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    String::from_utf8(stream.output).unwrap()
}

/// Runs a session over `payload` ending in clean EOF; returns replies.
fn clean_session(state: &DaemonState, payload: Vec<u8>) -> String {
    let mut stream = CleanStream {
        input: Cursor::new(payload),
        output: Vec::new(),
    };
    run_session(&mut stream, state).expect("clean session");
    String::from_utf8(stream.output).unwrap()
}

/// A fresh daemon state checkpointing into `state_dir`.
fn new_state(state_dir: &Path) -> DaemonState {
    let mut state = DaemonState::new(PipelineConfig::default());
    state.state_dir = Some(state_dir.to_path_buf());
    state
}

/// What an honest resuming client does first: re-attach and read the
/// daemon's durable sequence number off the ack. The probe connection
/// itself dies right after (covering resume-after-resume too).
fn resume_ack_seq(state: &DaemonState, tenant: &str, format: &str) -> u64 {
    let replies = crash_session(
        state,
        format!("hello {tenant} {format} resume 0\n").into_bytes(),
    );
    let ack = replies.lines().next().expect("resume ack");
    let prefix = format!("ok hello {tenant} seq ");
    ack.strip_prefix(&prefix)
        .unwrap_or_else(|| panic!("unexpected resume ack {ack:?}"))
        .parse()
        .expect("acked seq parses")
}

/// The data lines of a rendered stream: what the resume sequence
/// number counts (CSV headers and blank lines do not).
fn data_lines(text: &str, format: Format) -> Vec<&str> {
    text.lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty()
                && !(format == Format::Csv
                    && (t == CSV_HEADER.trim_end() || t == SPAN_CSV_HEADER.trim_end()))
        })
        .collect()
}

/// The resume payload an honest client sends after an ack of `seq`:
/// headers re-emitted for CSV, telemetry from `seq`, spans, `end`.
fn resume_payload(
    tenant: &str,
    format: Format,
    telemetry: &str,
    spans: &str,
    seq: u64,
    end: bool,
) -> Vec<u8> {
    let name = match format {
        Format::Jsonl => "jsonl",
        Format::Csv => "csv",
    };
    let mut payload = format!("hello {tenant} {name} resume {seq}\n");
    if format == Format::Csv {
        payload.push_str(CSV_HEADER);
    }
    for line in data_lines(telemetry, format).into_iter().skip(seq as usize) {
        payload.push_str(line);
        payload.push('\n');
    }
    if !spans.is_empty() {
        if format == Format::Csv {
            payload.push_str(SPAN_CSV_HEADER);
        }
        for line in data_lines(spans, format) {
            payload.push_str(line);
            payload.push('\n');
        }
    }
    if end {
        payload.push_str("end\n");
    }
    payload.into_bytes()
}

/// Asserts the flushed outputs for `tenant` in `dir` match the offline
/// pipeline's verdicts for the uninterrupted trace byte-for-byte.
fn assert_outputs_match(dir: &Path, tenant: &str, format: Format, run: &RecordedRun) {
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing output {name}: {e}"))
    };
    assert_eq!(
        read(&format!("{tenant}.detect.json")),
        run.summary_json,
        "summary diverged for {tenant}"
    );
    assert_eq!(read(&format!("{tenant}.firings.txt")), run.firings);
    assert_eq!(
        read(&format!("{tenant}.incidents.json")),
        run.incidents_json
    );
    assert_eq!(
        read(&format!("{tenant}.alerts.json")),
        offline_alerts(&run.telemetry),
        "alert document diverged for {tenant}"
    );
    let records = parse(&run.telemetry, Format::Jsonl).unwrap();
    assert_eq!(
        read(&format!("{tenant}.telemetry.{}", format.extension())),
        render_parsed(&records, format),
        "re-serialized telemetry diverged for {tenant}: a lost or \
         duplicated line"
    );
}

/// One full kill-and-recover cycle: stream `cut_bytes` of the wire
/// payload into daemon A, kill it (drop with no drain), restore daemon
/// B from the checkpoints, resume from the acked seq, flush, compare.
fn crash_recover_golden(tag: &str, format: Format, cut_bytes: usize) {
    let run = run();
    let (telemetry, spans) = rendered(format);
    let name = match format {
        Format::Jsonl => "jsonl",
        Format::Csv => "csv",
    };
    let state_dir = scratch_dir(&format!("{tag}-state"));
    let out_dir = scratch_dir(&format!("{tag}-out"));

    // Daemon A consumes an arbitrary prefix, then dies mid-stream.
    let state_a = new_state(&state_dir);
    let mut payload = format!("hello t {name} resume 0\n");
    if format == Format::Csv {
        payload.push_str(CSV_HEADER);
    }
    let mut payload = payload.into_bytes();
    payload.extend_from_slice(&telemetry.as_bytes()[..cut_bytes]);
    crash_session(&state_a, payload);
    drop(state_a); // SIGKILL: in-memory state gone, checkpoints remain.

    // Daemon B restores, acks its durable seq, and the client rewinds.
    let state_b = new_state(&state_dir);
    let restored = state_b.load_checkpoints().unwrap();
    let seq = resume_ack_seq(&state_b, "t", name);
    let total = data_lines(&telemetry, format).len() as u64;
    assert!(
        seq <= total,
        "acked seq {seq} cannot exceed the {total} lines sent"
    );
    if restored > 0 {
        assert!(seq > 0, "a restored checkpoint carries progress");
    }
    let replies = clean_session(
        &state_b,
        resume_payload("t", format, &telemetry, &spans, seq, true),
    );
    assert!(
        replies.lines().nth(1).unwrap_or_default().starts_with('{'),
        "resume session ends with the summary reply: {replies:?}"
    );

    flush_outputs(&state_b, &out_dir).unwrap();
    assert_outputs_match(&out_dir, "t", format, run);
}

/// The recorded trace rendered for `format` (telemetry, spans).
fn rendered(format: Format) -> (String, String) {
    let run = run();
    match format {
        Format::Jsonl => (run.telemetry.clone(), run.spans.clone()),
        Format::Csv => {
            let records = parse(&run.telemetry, Format::Jsonl).unwrap();
            let spans = simkit::trace::parse_spans(&run.spans, Format::Jsonl).unwrap();
            (
                render_parsed(&records, Format::Csv),
                simkit::trace::render_parsed_spans(&spans, Format::Csv),
            )
        }
    }
}

#[test]
fn jsonl_crash_at_arbitrary_offsets_recovers_byte_identically() {
    let (telemetry, _) = rendered(Format::Jsonl);
    let n = telemetry.len();
    // A line boundary, a mid-line cut, and a cut late in the stream —
    // the daemon has consumed lines past its last checkpoint in all
    // three, so restore genuinely rewinds.
    let first_line = telemetry.find('\n').unwrap() + 1;
    for (i, cut) in [first_line, n / 2 + 7, n - 3].into_iter().enumerate() {
        crash_recover_golden(&format!("jsonl-cut{i}"), Format::Jsonl, cut);
    }
}

#[test]
fn csv_crash_recovers_byte_identically_with_reemitted_headers() {
    let (telemetry, _) = rendered(Format::Csv);
    let n = telemetry.len();
    for (i, cut) in [n / 3, n / 2 + 11].into_iter().enumerate() {
        crash_recover_golden(&format!("csv-cut{i}"), Format::Csv, cut);
    }
}

#[test]
fn three_interleaved_tenants_survive_a_crash_and_mixed_disconnects() {
    let run = run();
    let tenants = ["alpha", "beta", "gamma"];
    let lines = data_lines(&run.telemetry, Format::Jsonl);
    let state_dir = scratch_dir("interleaved-state");
    let out_dir = scratch_dir("interleaved-out");

    // Phase 1: chunked, interleaved sessions — alpha and gamma close
    // each chunk with a clean EOF (which finalizes the stream; the next
    // resume must rewind it), beta's connections die with resets.
    let chunk = lines.len() / 4 + 1;
    let state_a = new_state(&state_dir);
    let mut crashed = false;
    'outer: for round in 0..4 {
        for (ti, tenant) in tenants.iter().enumerate() {
            // Kill the daemon mid-round, with the three tenants at
            // different stream positions.
            if round == 2 && ti == 1 {
                crashed = true;
                break 'outer;
            }
            let seq = resume_ack_seq(&state_a, tenant, "jsonl") as usize;
            let upto = ((round + 1) * chunk).min(lines.len());
            let mut payload = format!("hello {tenant} jsonl resume {seq}\n").into_bytes();
            for line in &lines[seq.min(upto)..upto] {
                payload.extend_from_slice(line.as_bytes());
                payload.push(b'\n');
            }
            if ti == 1 {
                crash_session(&state_a, payload);
            } else {
                clean_session(&state_a, payload);
            }
        }
    }
    assert!(crashed);
    drop(state_a);

    // Phase 2: a fresh daemon restores all three mid-stream tenants
    // and each client resumes from its own acked position.
    let state_b = new_state(&state_dir);
    assert_eq!(state_b.load_checkpoints().unwrap(), 3);
    let mut seqs = Vec::new();
    for tenant in tenants {
        let seq = resume_ack_seq(&state_b, tenant, "jsonl");
        let replies = clean_session(
            &state_b,
            resume_payload(tenant, Format::Jsonl, &run.telemetry, &run.spans, seq, true),
        );
        assert!(replies.contains("\"firings\""), "summary for {tenant}");
        seqs.push(seq);
    }
    assert!(
        seqs[0] != seqs[1] || seqs[1] != seqs[2],
        "the interleaving should leave tenants at distinct positions: {seqs:?}"
    );

    flush_outputs(&state_b, &out_dir).unwrap();
    for tenant in tenants {
        assert_outputs_match(&out_dir, tenant, Format::Jsonl, run);
    }
}

#[test]
fn checkpoint_schema_is_pinned() {
    // The on-disk checkpoint format is a compatibility surface: a
    // daemon restart restores files an older build wrote. Any change
    // here must bump CHECKPOINT_VERSION and regenerate the pin with
    // UPDATE_CHECKPOINT_SCHEMA=1 — deliberately, in review.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/checkpoint_schema.txt"
    );
    if std::env::var_os("UPDATE_CHECKPOINT_SCHEMA").is_some() {
        std::fs::write(path, checkpoint_schema()).unwrap();
    }
    let pinned = include_str!("data/checkpoint_schema.txt");
    assert_eq!(
        checkpoint_schema(),
        pinned,
        "checkpoint schema drifted — bump CHECKPOINT_VERSION and \
         regenerate tests/data/checkpoint_schema.txt"
    );
}

#[test]
fn recovery_outputs_exist_only_for_flushed_tenants() {
    // Sanity on the oracle itself: a state that never saw a tenant
    // flushes no files for it, so the byte-compare asserts above are
    // reading what this run produced, not a previous run's leftovers.
    let out_dir = scratch_dir("oracle-sanity");
    let state = DaemonState::new(PipelineConfig::default());
    flush_outputs(&state, &out_dir).unwrap();
    assert!(!out_dir.join("t.detect.json").exists());
    assert!(out_dir.join("alerts.json").exists());
}
