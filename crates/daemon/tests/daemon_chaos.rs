//! End-to-end chaos: real `padsimd` subprocesses, a real fault proxy,
//! a real `SIGKILL` and same-port restart — the `padsimd chaos
//! --ci-smoke` gate exercised as a test, so the wire-level recovery
//! contract is checked on every `cargo test`, not just in CI.

use paddaemon::chaos::{run_chaos, ChaosOptions};

#[test]
fn ci_smoke_scenarios_recover_byte_identically() {
    let out = std::env::temp_dir().join(format!("padsimd-chaos-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let opts = ChaosOptions {
        daemon_bin: env!("CARGO_BIN_EXE_padsimd").into(),
        out: out.clone(),
        seed: 11,
        ci_smoke: true,
    };
    let report = run_chaos(&opts).expect("chaos harness runs");

    let names: Vec<&str> = report.scenarios.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "kill_restart",
            "cut_mid_stream",
            "stall_chunk",
            "tiny_chunks"
        ],
        "the CI smoke set is pinned"
    );
    assert!(
        report.scenarios.iter().any(|s| s.killed),
        "the smoke set must include a real daemon kill"
    );
    assert!(report.scenarios.iter().all(|s| s.lossless));
    assert!(
        report.all_lossless_identical(),
        "a lossless scenario lost or duplicated data:\n{}",
        report.render_text()
    );

    let json = std::fs::read_to_string(out.join("chaos_report.json")).expect("report written");
    assert!(json.contains("\"name\":\"kill_restart\",\"lossless\":1,\"killed\":1,\"identical\":1"));
}
