//! The daemon's correctness harness: a recorded trace streamed through
//! a socket must make the daemon emit exactly the firings, escalations,
//! and incident reports the offline `padsim detect --replay` /
//! `padsim incident` pipeline produces — for two concurrent tenants,
//! deterministically across runs.

mod common;

use common::{recorded_run, RecordedRun, TestDaemon};
use paddaemon::client::{http_get, send, SendJob};

fn job(tenant: &str, run: &RecordedRun) -> SendJob {
    SendJob {
        tenant: tenant.to_string(),
        format: "jsonl",
        telemetry: run.telemetry.clone(),
        spans: Some(run.spans.clone()),
        end: true,
        ..SendJob::default()
    }
}

/// Streams both tenants concurrently and returns each session's
/// summary reply (the line after the hello ack).
fn stream_both(daemon: &TestDaemon, runs: &[(&str, &RecordedRun)]) -> Vec<String> {
    let mut handles = Vec::new();
    for (tenant, run) in runs {
        let addr = daemon.data_addr.clone();
        let job = job(tenant, run);
        handles.push(std::thread::spawn(move || send(&addr, &job).unwrap()));
    }
    handles
        .into_iter()
        .map(|h| {
            let replies = h.join().unwrap();
            assert!(replies[0].starts_with("ok hello "), "got {replies:?}");
            assert_eq!(replies.len(), 2, "hello ack + summary: {replies:?}");
            format!("{}\n", replies[1])
        })
        .collect()
}

#[test]
fn streamed_sessions_match_offline_pipeline_byte_for_byte() {
    let run_a = recorded_run(0xD0_1D);
    let run_b = recorded_run(0xBEEF);
    assert_ne!(
        run_a.summary_json, run_b.summary_json,
        "seeds should produce distinguishable traces"
    );
    assert!(
        run_a.summary_json.contains("\"escalations\":[{"),
        "the attacked run should escalate the policy: {}",
        run_a.summary_json
    );
    assert!(run_a.firings.contains("rising edges"));

    let daemon = TestDaemon::start("golden");
    let summaries = stream_both(&daemon, &[("acme", &run_a), ("globex", &run_b)]);
    assert_eq!(summaries[0], run_a.summary_json, "acme summary");
    assert_eq!(summaries[1], run_b.summary_json, "globex summary");

    // The HTTP API serves the same documents.
    let (status, summary) = http_get(&daemon.http_addr, "/tenants/acme/summary").unwrap();
    assert!(status.contains("200"), "{status}");
    assert_eq!(summary, run_a.summary_json);
    let (_, firings) = http_get(&daemon.http_addr, "/tenants/acme/firings").unwrap();
    assert_eq!(firings, run_a.firings);
    let (_, incidents) = http_get(&daemon.http_addr, "/tenants/acme/incidents").unwrap();
    assert_eq!(incidents, run_a.incidents_json);
    let (_, incidents_b) = http_get(&daemon.http_addr, "/tenants/globex/incidents").unwrap();
    assert_eq!(incidents_b, run_b.incidents_json);

    // One /metrics scrape carries both tenants, labeled.
    let (_, metrics) = http_get(&daemon.http_addr, "/metrics").unwrap();
    assert!(metrics.contains("pad_metric_count{tenant=\"acme\",metric=\"rack-00.draw_w\"}"));
    assert!(metrics.contains("pad_metric_count{tenant=\"globex\",metric=\"rack-00.draw_w\"}"));
    assert!(metrics.contains("padsimd_tenants 2\n"));
    assert!(metrics.contains("padsimd_parse_errors_total 0\n"));
    daemon.shutdown();
}

#[test]
fn daemon_output_is_deterministic_across_runs() {
    let run = recorded_run(0xD0_1D);
    let mut outputs = Vec::new();
    for _ in 0..2 {
        let daemon = TestDaemon::start("determinism");
        let summaries = stream_both(&daemon, &[("t0", &run)]);
        let (_, incidents) = http_get(&daemon.http_addr, "/tenants/t0/incidents").unwrap();
        let (_, tenant_metrics) = http_get(&daemon.http_addr, "/tenants/t0/metrics").unwrap();
        daemon.shutdown();
        outputs.push((summaries, incidents, tenant_metrics));
    }
    assert_eq!(outputs[0], outputs[1], "two daemon runs diverged");
    assert_eq!(outputs[0].0[0], run.summary_json);
}

#[test]
fn csv_wire_format_produces_the_same_summary() {
    let run = recorded_run(0xD0_1D);
    // Re-serialize the recorded telemetry as CSV; the summary must not
    // depend on the wire format.
    let records =
        simkit::telemetry::parse(&run.telemetry, simkit::telemetry::Format::Jsonl).unwrap();
    let csv = simkit::telemetry::render_parsed(&records, simkit::telemetry::Format::Csv);
    let daemon = TestDaemon::start("csv");
    let replies = send(
        &daemon.data_addr,
        &SendJob {
            tenant: "c".to_string(),
            format: "csv",
            telemetry: csv,
            end: true,
            ..SendJob::default()
        },
    )
    .unwrap();
    assert_eq!(format!("{}\n", replies[1]), run.summary_json);
    daemon.shutdown();
}
