//! Multi-tenant determinism: N tenants fed interleaved chunks in
//! shuffled arrival orders produce per-tenant outputs byte-identical
//! to single-tenant runs.

mod common;

use common::{recorded_run, RecordedRun, TestDaemon};
use paddaemon::client::{http_get, Conn};
use std::io::{BufRead, BufReader, Write};

/// Deterministic xorshift shuffle — arrival order varies by seed but
/// is reproducible in a failing run.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

/// Streams every tenant's trace as interleaved chunks over persistent
/// connections, arrival order shuffled by `order_seed`, and returns
/// each tenant's summary reply.
fn stream_interleaved(
    daemon: &TestDaemon,
    runs: &[(&str, &RecordedRun)],
    chunk_lines: usize,
    order_seed: u64,
) -> Vec<String> {
    let mut conns: Vec<Conn> = Vec::new();
    let mut queues: Vec<Vec<String>> = Vec::new();
    for (tenant, run) in runs {
        let mut conn = Conn::connect(&daemon.data_addr).unwrap();
        writeln!(conn, "hello {tenant} jsonl").unwrap();
        conns.push(conn);
        let lines: Vec<&str> = run.telemetry.lines().chain(run.spans.lines()).collect();
        let chunks: Vec<String> = lines
            .chunks(chunk_lines)
            .map(|chunk| {
                let mut text = chunk.join("\n");
                text.push('\n');
                text
            })
            .collect();
        queues.push(chunks);
    }
    // Arrival schedule: every (tenant, chunk-index) pair, shuffled, but
    // per-tenant order preserved by indexing chunks sequentially.
    let mut schedule: Vec<usize> = queues
        .iter()
        .enumerate()
        .flat_map(|(t, chunks)| std::iter::repeat_n(t, chunks.len()))
        .collect();
    shuffle(&mut schedule, order_seed);
    let mut next: Vec<usize> = vec![0; queues.len()];
    for t in schedule {
        conns[t].write_all(queues[t][next[t]].as_bytes()).unwrap();
        next[t] += 1;
    }
    let mut summaries = Vec::new();
    for (t, mut conn) in conns.into_iter().enumerate() {
        writeln!(conn, "end").unwrap();
        conn.flush().unwrap();
        conn.finish_writes().unwrap();
        let mut reader = BufReader::new(conn);
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        assert!(hello.starts_with("ok hello "), "tenant {t}: {hello:?}");
        let mut summary = String::new();
        reader.read_line(&mut summary).unwrap();
        summaries.push(summary);
    }
    summaries
}

#[test]
fn interleaved_shuffled_tenants_match_single_tenant_outputs() {
    let runs = [
        ("alpha", recorded_run(0xD0_1D)),
        ("beta", recorded_run(0xBEEF)),
        ("gamma", recorded_run(0xCAFE)),
    ];
    let named: Vec<(&str, &RecordedRun)> = runs.iter().map(|(n, r)| (*n, r)).collect();

    let daemon = TestDaemon::start("multitenant");
    let summaries = stream_interleaved(&daemon, &named, 64, 0x5EED);
    for ((tenant, run), summary) in runs.iter().zip(&summaries) {
        assert_eq!(
            summary, &run.summary_json,
            "{tenant}: interleaved summary diverged from the offline run"
        );
    }
    // Incident reports survive the interleaving too.
    for (tenant, run) in &runs {
        let (_, incidents) =
            http_get(&daemon.http_addr, &format!("/tenants/{tenant}/incidents")).unwrap();
        assert_eq!(&incidents, &run.incidents_json, "{tenant} incidents");
    }
    daemon.shutdown();
}

#[test]
fn arrival_order_does_not_change_any_tenant_output() {
    let runs = [
        ("alpha", recorded_run(0xD0_1D)),
        ("beta", recorded_run(0xBEEF)),
    ];
    let named: Vec<(&str, &RecordedRun)> = runs.iter().map(|(n, r)| (*n, r)).collect();
    let mut per_order = Vec::new();
    for order_seed in [1u64, 0xFEED_FACE] {
        let daemon = TestDaemon::start("ordering");
        // Different chunk sizes AND different shuffles per run.
        let chunk = if order_seed == 1 { 17 } else { 101 };
        per_order.push(stream_interleaved(&daemon, &named, chunk, order_seed));
        daemon.shutdown();
    }
    assert_eq!(
        per_order[0], per_order[1],
        "arrival order or chunking leaked into tenant outputs"
    );
    assert_eq!(per_order[0][0], runs[0].1.summary_json);
    assert_eq!(per_order[0][1], runs[1].1.summary_json);
}
