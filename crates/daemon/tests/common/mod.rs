//! Shared harness for the daemon integration suites: record a real
//! attacked testbed run, start an in-process daemon on loopback, and
//! compute the offline-pipeline expectations the daemon must match.
//
// Each suite uses a different slice of this harness; what one binary
// leaves unused another depends on.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use attack::scenario::{AttackScenario, AttackStyle};
use attack::virus::VirusClass;
use pad::detect::DetectConfig;
use pad::experiments::{testbed_config, testbed_trace};
use pad::pipeline::{self, PipelineConfig};
use pad::schemes::Scheme;
use pad::sim::ClusterSim;
use paddaemon::server::{serve, ServeOptions};
use powerinfra::topology::RackId;
use simkit::telemetry::{parse, render_parsed, Format};
use simkit::time::{SimDuration, SimTime};
use simkit::trace::parse_spans;

/// A recorded attacked run: serialized telemetry and span traces plus
/// the offline-pipeline expectations for them.
pub struct RecordedRun {
    pub telemetry: String,
    pub spans: String,
    pub summary_json: String,
    pub firings: String,
    pub incidents_json: String,
}

/// Runs the §V testbed under a sparse attack for three minutes with
/// telemetry, tracing, and detection on, and returns the recorded
/// traces together with what the offline pipeline says about them.
pub fn recorded_run(seed: u64) -> RecordedRun {
    let mut sim = ClusterSim::new(testbed_config(Scheme::Pad), testbed_trace(seed)).unwrap();
    sim.reseed_noise(seed ^ 0x5EED);
    sim.enable_detection(DetectConfig::default());
    sim.enable_telemetry(1 << 20);
    sim.enable_tracing(1 << 16);
    let attack = AttackScenario::new(AttackStyle::Sparse, VirusClass::CpuIntensive, 1).immediate();
    let attack_at = SimTime::from_secs(60);
    sim.set_attack(attack, RackId(0), attack_at);
    let horizon = attack_at + SimDuration::from_mins(3);
    let dt = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO;
    while t < horizon {
        sim.step(dt);
        t += dt;
    }
    let telemetry = sim.take_telemetry().unwrap().serialize(Format::Jsonl);
    let spans = sim.take_trace().unwrap().serialize(Format::Jsonl);

    let records = parse(&telemetry, Format::Jsonl).unwrap();
    let parsed_spans = parse_spans(&spans, Format::Jsonl).unwrap();
    let racks = pipeline::try_infer_racks(&records).unwrap();
    let summary = pipeline::replay_records(racks, PipelineConfig::default(), &records);
    RecordedRun {
        telemetry,
        spans,
        summary_json: summary.to_json(),
        firings: summary.render_firings(),
        incidents_json: pipeline::reconstruct_json(&parsed_spans, &records),
    }
}

/// Drops every telemetry record with sim-time in `[t0_ms, t1_ms)` and
/// re-serializes — a mid-stream tenant silence window, the scenario the
/// `tenant-silent` deadman rule exists to catch.
pub fn silence_window(telemetry: &str, t0_ms: u64, t1_ms: u64) -> String {
    let records = parse(telemetry, Format::Jsonl).unwrap();
    let kept: Vec<_> = records
        .into_iter()
        .filter(|r| r.time_ms < t0_ms || r.time_ms >= t1_ms)
        .collect();
    render_parsed(&kept, Format::Jsonl)
}

/// What the offline stream monitor says about a trace under the default
/// rules — the byte-exact document the daemon must serve for the same
/// records at `/tenants/<id>/alerts`.
pub fn offline_alerts(telemetry: &str) -> String {
    let records = parse(telemetry, Format::Jsonl).unwrap();
    let racks = pipeline::try_infer_racks(&records).unwrap_or(1);
    let (_, monitor) = pipeline::monitor_records(
        racks,
        PipelineConfig::default(),
        pipeline::default_alert_rules(),
        &records,
    );
    monitor.alerts_json()
}

/// An in-process daemon bound to loopback, plus its discovered ports.
pub struct TestDaemon {
    pub data_addr: String,
    pub http_addr: String,
    pub out_dir: PathBuf,
    handle: JoinHandle<std::io::Result<()>>,
}

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory for one test.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("padsimd-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

impl TestDaemon {
    /// Starts a daemon on loopback (port 0) with an HTTP endpoint and
    /// an `--out` flush directory, waiting until both ports are bound.
    pub fn start(tag: &str) -> TestDaemon {
        let out_dir = scratch_dir(tag);
        let ports_file = out_dir.join("ports.txt");
        let opts = ServeOptions {
            listen: Some("127.0.0.1:0".to_string()),
            http: Some("127.0.0.1:0".to_string()),
            out: Some(out_dir.clone()),
            ports_file: Some(ports_file.clone()),
            ..ServeOptions::default()
        };
        let handle = std::thread::spawn(move || serve(opts));
        let deadline = Instant::now() + Duration::from_secs(10);
        let (mut data_addr, mut http_addr) = (None, None);
        while Instant::now() < deadline {
            if let Ok(text) = std::fs::read_to_string(&ports_file) {
                for line in text.lines() {
                    match line.split_once(' ') {
                        Some(("data", addr)) => data_addr = Some(addr.to_string()),
                        Some(("http", addr)) => http_addr = Some(addr.to_string()),
                        _ => {}
                    }
                }
                if data_addr.is_some() && http_addr.is_some() {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        TestDaemon {
            data_addr: data_addr.expect("daemon wrote the data address in time"),
            http_addr: http_addr.expect("daemon wrote the http address in time"),
            out_dir,
            handle,
        }
    }

    /// Sends the shutdown control line and waits for the daemon's
    /// drain-and-flush to finish, asserting it exited cleanly.
    pub fn shutdown(self) {
        let replies = paddaemon::client::send(
            &self.data_addr,
            &paddaemon::client::SendJob {
                shutdown: true,
                ..paddaemon::client::SendJob::default()
            },
        )
        .expect("shutdown control line");
        assert_eq!(replies, vec!["ok shutdown".to_string()]);
        self.handle
            .join()
            .expect("serve thread")
            .expect("serve exits cleanly");
    }
}
