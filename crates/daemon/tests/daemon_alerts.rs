//! Alert-engine goldens for the daemon: a recorded §V scenario with a
//! mid-stream tenant silence window must fire the `tenant-silent`
//! deadman deterministically — the `/alerts` documents byte-identical
//! to the offline monitor, across repeated runs, chunkings, and
//! interleaved multi-tenant arrival orders.

mod common;

use common::{offline_alerts, recorded_run, silence_window, TestDaemon};
use paddaemon::client::{http_get, send, Conn, SendJob};
use std::io::{BufRead, BufReader, Write};

/// The silence cut: 30 s of dropped records starting two minutes in —
/// two orders of magnitude beyond the 100 ms tick gap the deadman has
/// learned by then.
const CUT: (u64, u64) = (120_000, 150_000);

fn silent_run(seed: u64) -> (String, String) {
    let run = recorded_run(seed);
    let silenced = silence_window(&run.telemetry, CUT.0, CUT.1);
    let expected = offline_alerts(&silenced);
    (silenced, expected)
}

fn stream_tenant(daemon: &TestDaemon, tenant: &str, telemetry: &str) {
    let job = SendJob {
        tenant: tenant.to_string(),
        format: "jsonl",
        telemetry: telemetry.to_string(),
        end: true,
        ..SendJob::default()
    };
    let replies = send(&daemon.data_addr, &job).unwrap();
    assert!(replies[0].starts_with("ok hello"), "{replies:?}");
}

fn tenant_alerts(daemon: &TestDaemon, tenant: &str) -> String {
    let (status, body) = http_get(&daemon.http_addr, &format!("/tenants/{tenant}/alerts")).unwrap();
    assert!(status.contains("200"), "{tenant} alerts: {status}");
    body
}

#[test]
fn silence_window_fires_the_deadman_and_matches_the_offline_monitor() {
    let (silenced, expected) = silent_run(0xA1E7);
    assert!(
        expected.contains(r#""rule":"tenant-silent","event":"fired""#),
        "the offline monitor must fire the deadman on the cut window:\n{expected}"
    );

    let daemon = TestDaemon::start("alerts");
    stream_tenant(&daemon, "acme", &silenced);
    assert_eq!(
        tenant_alerts(&daemon, "acme"),
        expected,
        "daemon alert document diverged from the offline monitor"
    );

    // The aggregate surfaces carry the same story.
    let (_, doc) = http_get(&daemon.http_addr, "/alerts").unwrap();
    assert!(doc.contains(r#""tenant":"acme""#), "{doc}");
    assert!(doc.contains(r#""rule":"tenant-silent","event":"fired""#));
    let (_, prom) = http_get(&daemon.http_addr, "/alerts?format=prom").unwrap();
    assert!(prom.starts_with("# HELP ALERTS"), "{prom}");
    let (_, logs) = http_get(&daemon.http_addr, "/logs").unwrap();
    assert!(
        logs.contains(r#""kind":"alert_fired""#) && logs.contains("tenant-silent"),
        "ops log should record the deadman firing:\n{logs}"
    );
    daemon.shutdown();
}

#[test]
fn alert_documents_are_byte_identical_across_repeated_runs() {
    let (silenced, expected) = silent_run(0xD0_1D);
    let mut docs = Vec::new();
    for round in 0..2 {
        let daemon = TestDaemon::start(&format!("alerts-rerun-{round}"));
        stream_tenant(&daemon, "acme", &silenced);
        docs.push(tenant_alerts(&daemon, "acme"));
        daemon.shutdown();
    }
    assert_eq!(docs[0], docs[1], "two identical runs disagreed");
    assert_eq!(
        docs[0], expected,
        "daemon diverged from the offline monitor"
    );
}

/// Deterministic xorshift shuffle — arrival order varies by seed but is
/// reproducible in a failing run.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

/// Streams both tenants' telemetry as interleaved chunks over
/// persistent connections, arrival order shuffled by `order_seed`.
fn stream_interleaved(
    daemon: &TestDaemon,
    runs: &[(&str, &str)],
    chunk_lines: usize,
    order_seed: u64,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut queues: Vec<Vec<String>> = Vec::new();
    for (tenant, telemetry) in runs {
        let mut conn = Conn::connect(&daemon.data_addr).unwrap();
        writeln!(conn, "hello {tenant} jsonl").unwrap();
        conns.push(conn);
        let lines: Vec<&str> = telemetry.lines().collect();
        queues.push(
            lines
                .chunks(chunk_lines)
                .map(|chunk| {
                    let mut text = chunk.join("\n");
                    text.push('\n');
                    text
                })
                .collect(),
        );
    }
    let mut schedule: Vec<usize> = queues
        .iter()
        .enumerate()
        .flat_map(|(t, chunks)| std::iter::repeat_n(t, chunks.len()))
        .collect();
    shuffle(&mut schedule, order_seed);
    let mut next: Vec<usize> = vec![0; queues.len()];
    for t in schedule {
        conns[t].write_all(queues[t][next[t]].as_bytes()).unwrap();
        next[t] += 1;
    }
    for (t, mut conn) in conns.into_iter().enumerate() {
        writeln!(conn, "end").unwrap();
        conn.flush().unwrap();
        conn.finish_writes().unwrap();
        let mut reader = BufReader::new(conn);
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        assert!(hello.starts_with("ok hello "), "tenant {t}: {hello:?}");
        let mut summary = String::new();
        reader.read_line(&mut summary).unwrap();
        assert!(!summary.is_empty(), "tenant {t}: no summary reply");
    }
}

#[test]
fn arrival_order_does_not_change_the_alert_documents() {
    let (silenced, expected) = silent_run(0xBEEF);
    let noisy = recorded_run(0xCAFE);
    let noisy_expected = offline_alerts(&noisy.telemetry);
    let runs = [
        ("alpha", silenced.as_str()),
        ("beta", noisy.telemetry.as_str()),
    ];

    let mut per_order: Vec<(String, String)> = Vec::new();
    for (chunk, seed) in [(64usize, 0x5EED_u64), (17, 0xFEED_FACE)] {
        let daemon = TestDaemon::start("alerts-order");
        stream_interleaved(&daemon, &runs, chunk, seed);
        per_order.push((
            tenant_alerts(&daemon, "alpha"),
            tenant_alerts(&daemon, "beta"),
        ));
        daemon.shutdown();
    }
    assert_eq!(
        per_order[0], per_order[1],
        "arrival order or chunking leaked into the alert documents"
    );
    assert_eq!(per_order[0].0, expected, "alpha diverged from offline");
    assert_eq!(per_order[0].1, noisy_expected, "beta diverged from offline");
}

#[test]
fn shutdown_flush_writes_the_alert_documents() {
    let (silenced, expected) = silent_run(0x0DD5);
    let daemon = TestDaemon::start("alerts-flush");
    stream_tenant(&daemon, "acme", &silenced);
    let out_dir = daemon.out_dir.clone();
    daemon.shutdown();

    let per_tenant = std::fs::read_to_string(out_dir.join("acme.alerts.json")).unwrap();
    assert_eq!(per_tenant, expected, "flushed per-tenant alert document");
    let aggregate = std::fs::read_to_string(out_dir.join("alerts.json")).unwrap();
    assert!(aggregate.contains(r#""tenant":"acme""#));
    let report = std::fs::read_to_string(out_dir.join("daemon_report.json")).unwrap();
    assert!(report.contains(r#""alert_events":"#), "{report}");
    assert!(report.contains(r#""ops_log":["#), "{report}");
}
