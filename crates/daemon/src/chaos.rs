//! Wire-level chaos harness: kill-and-restart and fault-proxy
//! scenarios with a byte-identical recovery oracle.
//!
//! Each scenario runs the same deterministic trace twice through real
//! `padsimd` subprocesses: once uninterrupted (the baseline) and once
//! under a [`ChaosPlan`] — connection cuts, stalls, pathological
//! chunking via [`FaultProxy`], and/or a hard daemon kill (`SIGKILL`)
//! mid-stream followed by a restart on the same port and a
//! checkpoint-restore. The resuming client is [`send_resumable`]. The
//! oracle then diffs every flushed output file (`<t>.detect.json`,
//! `<t>.firings.txt`, `<t>.incidents.json`, `<t>.alerts.json`,
//! `<t>.telemetry.*`, `alerts.json`) between the two runs: for a
//! lossless plan they must be **byte-identical** — a crash at any
//! checkpoint boundary costs neither a replayed nor a dropped line.
//! (`daemon_report.json` is excluded: session counts legitimately
//! differ across a reconnect.)
//!
//! `padsimd chaos --ci-smoke` runs the four lossless scenarios the CI
//! gate pins; the full set adds a CSV-format cut and a deliberately
//! lossy garble plan (reported, never failed on).

use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use simkit::chaos::{ChaosPlan, FaultProxy, WireFault};
use simkit::rng::RngStream;
use simkit::telemetry::{parse, render_parsed, Format, CSV_HEADER};
use simkit::trace::SPAN_CSV_HEADER;

use crate::client::{open_resume, send, send_resumable, Conn, RetryOpts, SendJob};

/// What the chaos runner should do.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Path to the `padsimd` binary to spawn daemons from.
    pub daemon_bin: PathBuf,
    /// Scratch and report directory; each scenario gets a subdirectory
    /// and the aggregate lands in `chaos_report.json`.
    pub out: PathBuf,
    /// Seed for the generated trace and the fault plans.
    pub seed: u64,
    /// Run only the lossless CI scenario set.
    pub ci_smoke: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            daemon_bin: PathBuf::new(),
            out: PathBuf::from("chaos-out"),
            seed: 42,
            ci_smoke: false,
        }
    }
}

/// One scenario's verdict.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario (and plan) name.
    pub name: String,
    /// Whether the plan was lossless (identical outputs required).
    pub lossless: bool,
    /// Whether the daemon was killed and restarted mid-stream.
    pub killed: bool,
    /// Whether every compared output file matched byte-for-byte.
    pub identical: bool,
    /// The output files that differed (empty when `identical`).
    pub mismatches: Vec<String>,
}

/// The aggregate chaos verdict, written to `chaos_report.json`.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Per-scenario verdicts, in run order.
    pub scenarios: Vec<ScenarioResult>,
}

impl ChaosReport {
    /// `true` when every lossless scenario recovered byte-identically
    /// — the CI gate.
    pub fn all_lossless_identical(&self) -> bool {
        self.scenarios.iter().all(|s| !s.lossless || s.identical)
    }

    /// One human-readable line per scenario plus a verdict line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            let _ = writeln!(
                out,
                "chaos {}: lossless={} killed={} identical={}{}",
                s.name,
                s.lossless,
                s.killed,
                s.identical,
                if s.mismatches.is_empty() {
                    String::new()
                } else {
                    format!(" mismatches={}", s.mismatches.join(","))
                }
            );
        }
        let passing = self
            .scenarios
            .iter()
            .filter(|s| !s.lossless || s.identical)
            .count();
        let _ = writeln!(
            out,
            "chaos: {}/{} scenarios pass the lossless-identical gate",
            passing,
            self.scenarios.len()
        );
        out
    }

    /// The `chaos_report.json` document (flags as 0/1, repo JSON
    /// convention).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"scenarios\":[");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"lossless\":{},\"killed\":{},\"identical\":{},\
                 \"mismatches\":[{}]}}",
                s.name,
                u8::from(s.lossless),
                u8::from(s.killed),
                u8::from(s.identical),
                s.mismatches
                    .iter()
                    .map(|m| format!("\"{m}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        if !self.scenarios.is_empty() {
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Generates the deterministic chaos trace: `ticks` detector ticks of
/// 100 ms across `racks` racks, with seeded noise and periodic spikes
/// so the detector stack, policy FSM, and alert engine all change
/// state mid-stream.
pub fn chaos_trace(seed: u64, ticks: u64, racks: u64) -> String {
    let mut rng = RngStream::new(seed).fork("chaos-trace");
    let mut out = String::new();
    for t in 0..ticks {
        for rack in 0..racks {
            let noise = rng.uniform(-2.0, 2.0);
            let spike = if t % 19 == 3 { 45.0 } else { 0.0 };
            let v = 100.0 + rack as f64 * 5.0 + (t % 7) as f64 + noise + spike;
            let _ = writeln!(
                out,
                "{{\"t\":{},\"m\":\"rack-{rack:02}.draw_w\",\"v\":{v}}}",
                t * 100
            );
        }
    }
    out
}

/// The span trace streamed alongside the telemetry (drives the
/// incident reconstruction outputs).
fn chaos_spans(ticks: u64) -> String {
    let end = ticks.saturating_sub(1) * 100;
    let mid = end / 2;
    format!(
        "{{\"id\":0,\"name\":\"attack.drain\",\"parent\":null,\"t0\":300,\"t1\":{mid},\"attrs\":{{\"rack\":1}}}}\n\
         {{\"id\":1,\"name\":\"attack.spike\",\"parent\":0,\"t0\":400,\"t1\":800,\"attrs\":{{}}}}\n"
    )
}

/// A spawned `padsimd serve` subprocess plus its bound data address.
struct DaemonProc {
    child: Child,
    data_addr: SocketAddr,
}

impl DaemonProc {
    /// `SIGKILL` — the crash under test, not a graceful drain.
    fn kill(&mut self) -> io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        Ok(())
    }

    /// Asks the daemon to drain and flush, then reaps it.
    fn shutdown(mut self) -> io::Result<()> {
        let job = SendJob {
            shutdown: true,
            ..SendJob::default()
        };
        send(&self.data_addr.to_string(), &job)?;
        self.child.wait()?;
        Ok(())
    }
}

/// Spawns `padsimd serve --listen <listen> --state-dir … --out …` and
/// waits for its ports file to name the bound data address.
fn start_daemon(
    bin: &Path,
    listen: &str,
    state_dir: &Path,
    out_dir: &Path,
    ports_file: &Path,
) -> io::Result<DaemonProc> {
    let _ = std::fs::remove_file(ports_file);
    let child = Command::new(bin)
        .arg("serve")
        .arg("--listen")
        .arg(listen)
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--out")
        .arg(out_dir)
        .arg("--ports-file")
        .arg(ports_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()?;
    let started = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(ports_file) {
            if let Some(addr) = text
                .lines()
                .find_map(|line| line.strip_prefix("data "))
                .and_then(|addr| addr.parse::<SocketAddr>().ok())
            {
                return Ok(DaemonProc {
                    child,
                    data_addr: addr,
                });
            }
        }
        if started.elapsed() > Duration::from_secs(10) {
            let mut child = child;
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "daemon did not write its ports file within 10s",
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Streams the first `prefix_lines` telemetry data lines of `job` over
/// a resume session and returns the open connection, so the caller can
/// kill the daemon while the stream is mid-send.
fn stream_prefix(target: &str, job: &SendJob, prefix_lines: usize) -> io::Result<Conn> {
    let csv = job.format == "csv";
    let lines: Vec<&str> = job
        .telemetry
        .lines()
        .filter(|l| !(l.trim().is_empty() || csv && l.trim_end() == CSV_HEADER.trim_end()))
        .collect();
    let (mut conn, seq) = open_resume(target, &job.tenant, job.format, lines.len() as u64)?;
    if csv {
        conn.write_all(CSV_HEADER.as_bytes())?;
    }
    for line in lines
        .iter()
        .skip(seq as usize)
        .take(prefix_lines.saturating_sub(seq as usize))
    {
        writeln!(conn, "{line}")?;
    }
    conn.flush()?;
    Ok(conn)
}

/// One scenario: a plan, a wire format, and whether to run it in the
/// `--ci-smoke` set.
struct Scenario {
    plan: ChaosPlan,
    format: Format,
    smoke: bool,
}

/// Builds the scenario set for a trace of `bytes` bytes / `lines` data
/// lines.
fn scenarios(seed: u64, bytes: u64, lines: u64) -> Vec<Scenario> {
    vec![
        Scenario {
            plan: ChaosPlan::new("kill_restart", seed).with_kill_at_line(lines / 2),
            format: Format::Jsonl,
            smoke: true,
        },
        Scenario {
            plan: ChaosPlan::new("cut_mid_stream", seed).with(WireFault::CutAt {
                offset: bytes * 2 / 5,
            }),
            format: Format::Jsonl,
            smoke: true,
        },
        Scenario {
            plan: ChaosPlan::new("stall_chunk", seed)
                .with(WireFault::StallAt {
                    offset: bytes / 3,
                    ms: 20,
                })
                .with(WireFault::Chunk { max_bytes: 7 }),
            format: Format::Jsonl,
            smoke: true,
        },
        Scenario {
            plan: ChaosPlan::new("tiny_chunks", seed).with(WireFault::Chunk { max_bytes: 5 }),
            format: Format::Jsonl,
            smoke: true,
        },
        Scenario {
            plan: ChaosPlan::new("csv_cut", seed).with(WireFault::CutAt { offset: bytes / 2 }),
            format: Format::Csv,
            smoke: false,
        },
        Scenario {
            plan: ChaosPlan::new("lossy_garble", seed).with(WireFault::GarbleLine {
                index: 1 + lines / 3,
            }),
            format: Format::Jsonl,
            smoke: false,
        },
    ]
}

/// The output files the oracle compares (with `<t>` = the tenant).
const COMPARED: [&str; 6] = [
    "chaos.detect.json",
    "chaos.firings.txt",
    "chaos.incidents.json",
    "chaos.alerts.json",
    "chaos.telemetry.{ext}",
    "alerts.json",
];

/// Byte-diffs the baseline and chaos output directories.
fn compare_outputs(base: &Path, chaos: &Path, ext: &str) -> io::Result<Vec<String>> {
    let mut mismatches = Vec::new();
    for name in COMPARED {
        let name = name.replace("{ext}", ext);
        let a = std::fs::read(base.join(&name));
        let b = std::fs::read(chaos.join(&name));
        match (a, b) {
            (Ok(a), Ok(b)) if a == b => {}
            _ => mismatches.push(name),
        }
    }
    Ok(mismatches)
}

/// Runs one scenario end to end and returns its verdict.
fn run_scenario(opts: &ChaosOptions, scenario: &Scenario) -> io::Result<ScenarioResult> {
    let plan = &scenario.plan;
    let dir = opts.out.join(plan.name());
    let _ = std::fs::remove_dir_all(&dir);
    for sub in ["base-out", "chaos-out", "base-state", "chaos-state"] {
        std::fs::create_dir_all(dir.join(sub))?;
    }

    // The deterministic workload, rendered for the scenario's format.
    let ticks = 240;
    let jsonl = chaos_trace(opts.seed, ticks, 2);
    let records = parse(&jsonl, Format::Jsonl)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (telemetry, format_name, ext) = match scenario.format {
        Format::Jsonl => (jsonl.clone(), "jsonl", "jsonl"),
        Format::Csv => (render_parsed(&records, Format::Csv), "csv", "csv"),
    };
    let data_lines = records.len() as u64;
    let job = SendJob {
        tenant: "chaos".to_string(),
        format: format_name,
        telemetry,
        spans: Some(match scenario.format {
            Format::Jsonl => chaos_spans(ticks),
            Format::Csv => {
                // Same spans, CSV-framed.
                let mut out = String::from(SPAN_CSV_HEADER);
                let half = (ticks - 1) * 100 / 2;
                let _ = writeln!(out, "0,attack.drain,,300,{half},rack=1");
                let _ = writeln!(out, "1,attack.spike,0,400,800,");
                out
            }
        }),
        end: true,
        shutdown: false,
    };
    let retries = RetryOpts::default();

    // Baseline: uninterrupted run.
    let base = start_daemon(
        &opts.daemon_bin,
        "127.0.0.1:0",
        &dir.join("base-state"),
        &dir.join("base-out"),
        &dir.join("base-ports.txt"),
    )?;
    send_resumable(&base.data_addr.to_string(), &job, &retries)?;
    base.shutdown()?;

    // Chaos run.
    let mut daemon = start_daemon(
        &opts.daemon_bin,
        "127.0.0.1:0",
        &dir.join("chaos-state"),
        &dir.join("chaos-out"),
        &dir.join("chaos-ports.txt"),
    )?;
    let daemon_addr = daemon.data_addr;
    let proxy = if plan.faults().is_empty() {
        None
    } else {
        Some(FaultProxy::start(daemon_addr, plan)?)
    };
    let target = proxy
        .as_ref()
        .map(|p| p.addr().to_string())
        .unwrap_or_else(|| daemon_addr.to_string());

    let mut killed = false;
    if let Some(kill_at) = plan.kill_at_line() {
        // Stream the prefix, hard-kill mid-stream, restart on the SAME
        // port (so the target address stays valid), then let the
        // resumable client recover from the restored checkpoint.
        let conn = stream_prefix(&target, &job, kill_at.min(data_lines) as usize)?;
        std::thread::sleep(Duration::from_millis(150));
        daemon.kill()?;
        killed = true;
        drop(conn);
        daemon = start_daemon(
            &opts.daemon_bin,
            &daemon_addr.to_string(),
            &dir.join("chaos-state"),
            &dir.join("chaos-out"),
            &dir.join("chaos-ports.txt"),
        )?;
    }
    send_resumable(&target, &job, &retries)?;
    if let Some(proxy) = proxy {
        proxy.stop();
    }
    daemon.shutdown()?;

    let mismatches = compare_outputs(&dir.join("base-out"), &dir.join("chaos-out"), ext)?;
    Ok(ScenarioResult {
        name: plan.name().to_string(),
        lossless: plan.is_lossless(),
        killed,
        identical: mismatches.is_empty(),
        mismatches,
    })
}

/// Runs the scenario set and writes `chaos_report.json` under
/// `opts.out`.
pub fn run_chaos(opts: &ChaosOptions) -> io::Result<ChaosReport> {
    if opts.daemon_bin.as_os_str().is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "ChaosOptions.daemon_bin must point at a padsimd binary",
        ));
    }
    std::fs::create_dir_all(&opts.out)?;
    // Size the plans off the JSONL rendering; offsets are approximate
    // by design (faults only need to land mid-stream).
    let jsonl = chaos_trace(opts.seed, 240, 2);
    let lines = jsonl.lines().count() as u64;
    let mut report = ChaosReport::default();
    for scenario in scenarios(opts.seed, jsonl.len() as u64, lines) {
        if opts.ci_smoke && !scenario.smoke {
            continue;
        }
        report.scenarios.push(run_scenario(opts, &scenario)?);
    }
    std::fs::write(opts.out.join("chaos_report.json"), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_trace_is_deterministic_and_parseable() {
        let a = chaos_trace(7, 50, 2);
        let b = chaos_trace(7, 50, 2);
        assert_eq!(a, b);
        assert_ne!(a, chaos_trace(8, 50, 2));
        let records = parse(&a, Format::Jsonl).unwrap();
        assert_eq!(records.len(), 100);
        // The CSV rendering round-trips through the shared codec too.
        let csv = render_parsed(&records, Format::Csv);
        assert_eq!(parse(&csv, Format::Csv).unwrap(), records);
    }

    #[test]
    fn report_renders_json_and_gates_on_lossless_scenarios_only() {
        let report = ChaosReport {
            scenarios: vec![
                ScenarioResult {
                    name: "kill_restart".to_string(),
                    lossless: true,
                    killed: true,
                    identical: true,
                    mismatches: Vec::new(),
                },
                ScenarioResult {
                    name: "lossy_garble".to_string(),
                    lossless: false,
                    killed: false,
                    identical: false,
                    mismatches: vec!["chaos.detect.json".to_string()],
                },
            ],
        };
        assert!(report.all_lossless_identical(), "lossy may differ");
        let json = report.to_json();
        assert!(json.contains("\"name\":\"kill_restart\",\"lossless\":1,\"killed\":1"));
        assert!(json.contains("\"mismatches\":[\"chaos.detect.json\"]"));
        let text = report.render_text();
        assert!(text.contains("chaos kill_restart: lossless=true killed=true identical=true"));
        assert!(text.contains("2/2 scenarios pass"));

        let mut failing = report.clone();
        failing.scenarios[0].identical = false;
        failing.scenarios[0].mismatches = vec!["alerts.json".to_string()];
        assert!(!failing.all_lossless_identical());
    }

    #[test]
    fn scenario_set_covers_kill_faults_and_formats() {
        let all = scenarios(1, 20_000, 400);
        assert_eq!(all.len(), 6);
        let smoke: Vec<&str> = all
            .iter()
            .filter(|s| s.smoke)
            .map(|s| s.plan.name())
            .collect();
        assert_eq!(
            smoke,
            [
                "kill_restart",
                "cut_mid_stream",
                "stall_chunk",
                "tiny_chunks"
            ]
        );
        assert!(all.iter().filter(|s| s.smoke).all(|s| s.plan.is_lossless()));
        assert!(all.iter().any(|s| s.format == Format::Csv));
        assert!(all.iter().any(|s| !s.plan.is_lossless()));
        assert!(all[0].plan.kill_at_line().is_some());
    }
}
