//! A minimal std-only HTTP/1.0 endpoint: Prometheus exposition plus
//! the incident/status JSON API.
//!
//! One request per connection, `GET` only, `Connection: close` — the
//! smallest server a scrape loop and a CI step need. Routes:
//!
//! | path                        | body                                    |
//! |-----------------------------|-----------------------------------------|
//! | `/healthz`                  | `ok` — pure liveness, always 200        |
//! | `/readyz`                   | `ready`, or 503 before bind / draining  |
//! | `/statusz`                  | one-object daemon status JSON           |
//! | `/metrics`                  | merged exposition, all tenants + daemon |
//! | `/alerts`                   | alert state JSON (`?format=prom` for    |
//! |                             | Prometheus `ALERTS{...}` series)        |
//! | `/logs`                     | bounded structured ops log, JSONL       |
//! | `/tenants`                  | JSON array of tenant status objects     |
//! | `/tenants/<id>`             | one tenant's status JSON                |
//! | `/tenants/<id>/summary`     | replay-summary JSON (after `end`)       |
//! | `/tenants/<id>/incidents`   | incident report JSON                    |
//! | `/tenants/<id>/firings`     | detector firing log, text               |
//! | `/tenants/<id>/metrics`     | that tenant's full labeled exposition   |
//! | `/tenants/<id>/alerts`      | that tenant's alert document JSON       |

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::time::Instant;

use simkit::alert::{render_alerts_prom, AlertEngine};
use simkit::telemetry::{
    render_prometheus_families, MetricDigest, MetricRegistry, TelemetryReport,
};

use crate::state::{Counters, DaemonState};

/// A response body plus its media type.
struct Reply {
    status: &'static str,
    content_type: &'static str,
    body: String,
}

impl Reply {
    fn ok(content_type: &'static str, body: String) -> Self {
        Reply {
            status: "200 OK",
            content_type,
            body,
        }
    }

    fn not_found() -> Self {
        Reply {
            status: "404 Not Found",
            content_type: "text/plain",
            body: "not found\n".to_string(),
        }
    }

    fn unavailable(body: &str) -> Self {
        Reply {
            status: "503 Service Unavailable",
            content_type: "text/plain",
            body: body.to_string(),
        }
    }
}

/// Hard cap on the request line; longer lines are answered 400 and the
/// excess is never buffered.
const MAX_REQUEST_LINE: usize = 8192;

/// Serves one HTTP exchange on `stream` and closes it.
pub fn handle_http<S: Read + Write>(stream: S, state: &DaemonState) -> io::Result<()> {
    Counters::bump(&state.counters.http_requests);
    let started = state.self_obs.then(Instant::now);
    let mut reader = BufReader::new(stream);
    let mut request_line: Vec<u8> = Vec::new();
    // Bounded request-line framing: a newline must arrive within
    // MAX_REQUEST_LINE bytes or the request is rejected without
    // buffering the rest. EOF before the newline is equally malformed.
    let well_formed = loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            break false; // EOF with no terminator
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let take = pos + 1;
                if request_line.len() + take <= MAX_REQUEST_LINE {
                    request_line.extend_from_slice(&available[..take]);
                    reader.consume(take);
                    break true;
                }
                reader.consume(take);
                break false;
            }
            None => {
                let len = available.len();
                let fits = request_line.len() + len <= MAX_REQUEST_LINE;
                if fits {
                    request_line.extend_from_slice(available);
                }
                reader.consume(len);
                if !fits {
                    break false;
                }
            }
        }
    };
    let request_line = String::from_utf8_lossy(&request_line);
    let mut parts = request_line.split_ascii_whitespace();
    let reply = match (well_formed, parts.next(), parts.next()) {
        (true, Some("GET"), Some(path)) => route(state, path),
        _ => Reply {
            status: "400 Bad Request",
            content_type: "text/plain",
            body: "bad request\n".to_string(),
        },
    };
    let class = match reply.status.as_bytes().first() {
        Some(b'2') => Some(&state.counters.http_2xx),
        Some(b'4') => Some(&state.counters.http_4xx),
        Some(b'5') => Some(&state.counters.http_5xx),
        _ => None,
    };
    if let Some(counter) = class {
        Counters::bump(counter);
    }
    if let Some(started) = started {
        state
            .ops
            .lock()
            .expect("ops lock")
            .observe_http(started.elapsed().as_secs_f64());
    }
    let stream = reader.get_mut();
    let header = format!(
        "HTTP/1.0 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reply.status,
        reply.content_type,
        reply.body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(reply.body.as_bytes())?;
    stream.flush()
}

fn route(state: &DaemonState, path: &str) -> Reply {
    let (path, query) = match path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (path, ""),
    };
    match path {
        "/healthz" => Reply::ok("text/plain", "ok\n".to_string()),
        "/readyz" => {
            if state.shutting_down() {
                Reply::unavailable("draining\n")
            } else if !state.is_ready() {
                Reply::unavailable("starting\n")
            } else if Counters::get(&state.counters.overloaded_tenants) > 0 {
                Reply::unavailable("overloaded\n")
            } else {
                Reply::ok("text/plain", "ready\n".to_string())
            }
        }
        "/statusz" => Reply::ok("application/json", render_statusz(state)),
        "/alerts" => {
            if query == "format=prom" {
                Reply::ok("text/plain", render_alerts_prom_doc(state))
            } else {
                Reply::ok("application/json", render_alerts_doc(state))
            }
        }
        "/logs" => Reply::ok(
            "application/json",
            state.with_ops_log(|log| log.render_jsonl()),
        ),
        "/metrics" => Reply::ok("text/plain", render_metrics(state)),
        "/tenants" | "/tenants/" => Reply::ok("application/json", render_tenant_list(state)),
        _ => {
            let Some(rest) = path.strip_prefix("/tenants/") else {
                return Reply::not_found();
            };
            let (name, leaf) = match rest.split_once('/') {
                Some((name, leaf)) => (name, leaf),
                None => (rest, ""),
            };
            let Some(tenant) = state.tenant(name) else {
                return Reply::not_found();
            };
            let guard = tenant.lock().expect("tenant lock");
            match leaf {
                "" => Reply::ok("application/json", guard.status_json()),
                "summary" => match &guard.summary {
                    Some(summary) => Reply::ok("application/json", summary.to_json()),
                    None => Reply {
                        status: "404 Not Found",
                        content_type: "text/plain",
                        body: "stream still open; summary appears after end\n".to_string(),
                    },
                },
                "incidents" => Reply::ok("application/json", guard.incidents_json()),
                "firings" => {
                    let body = match &guard.summary {
                        Some(summary) => summary.render_firings(),
                        None => "detector firings: stream still open\n".to_string(),
                    };
                    Reply::ok("text/plain", body)
                }
                "metrics" => {
                    let report = TelemetryReport::from_records(&guard.records);
                    let label = format!("tenant=\"{}\"", guard.name);
                    Reply::ok("text/plain", report.render_prometheus_labeled(&label))
                }
                "alerts" => match guard.alerts_json() {
                    Some(doc) => Reply::ok("application/json", doc),
                    None => Reply {
                        status: "404 Not Found",
                        content_type: "text/plain",
                        body: "self-observability disabled\n".to_string(),
                    },
                },
                _ => Reply::not_found(),
            }
        }
    }
}

/// Per-tenant monitor snapshots: `(label, engine)` pairs plus the
/// matching `(label, registry)` pairs when requested.
type MonitorSnapshots = (Vec<(String, AlertEngine)>, Vec<(String, MetricRegistry)>);

/// Clones every monitored tenant's alert engine (and optionally its
/// metric registry) out from under the tenant locks, so rendering
/// happens without holding any of them.
fn snapshot_monitors(state: &DaemonState, with_registries: bool) -> MonitorSnapshots {
    let mut engines = Vec::new();
    let mut registries = Vec::new();
    for (name, tenant) in state.tenants() {
        let guard = tenant.lock().expect("tenant lock");
        if let Some(mon) = guard.monitor() {
            let label = format!("tenant=\"{name}\"");
            engines.push((label.clone(), mon.engine().clone()));
            if with_registries {
                registries.push((label, mon.registry().clone()));
            }
        }
    }
    (engines, registries)
}

/// The aggregate `/alerts` JSON document: overall firing count plus
/// every monitored tenant's own alert document. Also written to
/// `alerts.json` on the shutdown flush.
pub(crate) fn render_alerts_doc(state: &DaemonState) -> String {
    let mut firing = 0;
    let mut emitted = 0;
    let mut out = String::from("{\"tenants\":[");
    for (name, tenant) in state.tenants() {
        let guard = tenant.lock().expect("tenant lock");
        let Some(mon) = guard.monitor() else {
            continue;
        };
        firing += mon.engine().firing_count();
        if emitted > 0 {
            out.push(',');
        }
        emitted += 1;
        let _ = write!(
            out,
            "\n{{\"tenant\":\"{name}\",\"alerts\":{}}}",
            mon.alerts_json().trim_end()
        );
    }
    if !out.ends_with('[') {
        out.push('\n');
    }
    let _ = writeln!(out, "],\"firing\":{firing}}}");
    out
}

/// `/alerts?format=prom`: every tenant's active alerts as one
/// Prometheus `ALERTS{...}` gauge family.
fn render_alerts_prom_doc(state: &DaemonState) -> String {
    let (engines, _) = snapshot_monitors(state, false);
    let refs: Vec<(&str, &AlertEngine)> = engines.iter().map(|(l, e)| (l.as_str(), e)).collect();
    render_alerts_prom(&refs)
}

/// `/statusz`: one JSON object of daemon-wide operational state. No
/// wall-clock fields — everything here is a counter or a flag.
fn render_statusz(state: &DaemonState) -> String {
    let c = &state.counters;
    let (engines, _) = snapshot_monitors(state, false);
    let firing: usize = engines.iter().map(|(_, e)| e.firing_count()).sum();
    format!(
        "{{\"ready\":{},\"draining\":{},\"self_obs\":{},\"tenants\":{},\
         \"sessions_opened\":{},\"sessions_closed\":{},\"active_sessions\":{},\
         \"records\":{},\"spans\":{},\"parse_errors\":{},\"http_requests\":{},\
         \"alerts_firing\":{},\"ops_log_entries\":{},\"ops_log_dropped\":{},\
         \"lines_shed\":{},\"checkpoints_written\":{},\"checkpoint_frames\":{},\
         \"sessions_reaped\":{},\"overloaded_tenants\":{}}}\n",
        state.is_ready(),
        state.shutting_down(),
        state.self_obs,
        state.tenants().len(),
        Counters::get(&c.sessions_opened),
        Counters::get(&c.sessions_closed),
        Counters::get(&c.active_sessions),
        Counters::get(&c.records),
        Counters::get(&c.spans),
        Counters::get(&c.parse_errors),
        Counters::get(&c.http_requests),
        firing,
        state.with_ops_log(|log| log.len()),
        state.with_ops_log(|log| log.dropped()),
        Counters::get(&c.lines_shed),
        Counters::get(&c.checkpoints_written),
        Counters::get(&c.checkpoint_frames),
        Counters::get(&c.sessions_reaped),
        Counters::get(&c.overloaded_tenants),
    )
}

fn render_tenant_list(state: &DaemonState) -> String {
    let mut out = String::from("{\"tenants\":[");
    for (i, (_, tenant)) in state.tenants().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        let status = tenant.lock().expect("tenant lock").status_json();
        out.push_str(status.trim_end());
    }
    if !out.ends_with('[') {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// The merged exposition: daemon self-counters, one `padsimd_tenant_*`
/// gauge per tenant, then the shared `pad_*` families with a `tenant`
/// label on every series. Families are emitted once (a single
/// HELP/TYPE block each), tenants in name order inside them, so the
/// scrape is valid Prometheus text and deterministic.
fn render_metrics(state: &DaemonState) -> String {
    let c = &state.counters;
    let mut out = String::new();
    let self_counters: [(&str, &str, u64); 13] = [
        (
            "padsimd_sessions_opened_total",
            "sessions opened (hello)",
            Counters::get(&c.sessions_opened),
        ),
        (
            "padsimd_sessions_closed_total",
            "sessions closed (end, EOF, or drain)",
            Counters::get(&c.sessions_closed),
        ),
        (
            "padsimd_records_total",
            "telemetry records accepted",
            Counters::get(&c.records),
        ),
        (
            "padsimd_spans_total",
            "span lines accepted",
            Counters::get(&c.spans),
        ),
        (
            "padsimd_parse_errors_total",
            "malformed wire lines skipped",
            Counters::get(&c.parse_errors),
        ),
        (
            "padsimd_http_requests_total",
            "HTTP requests served",
            Counters::get(&c.http_requests),
        ),
        (
            "padsimd_http_responses_2xx_total",
            "HTTP responses with a 2xx status",
            Counters::get(&c.http_2xx),
        ),
        (
            "padsimd_http_responses_4xx_total",
            "HTTP responses with a 4xx status",
            Counters::get(&c.http_4xx),
        ),
        (
            "padsimd_http_responses_5xx_total",
            "HTTP responses with a 5xx status",
            Counters::get(&c.http_5xx),
        ),
        (
            "padsimd_lines_shed_total",
            "data lines dropped by overload shedding",
            Counters::get(&c.lines_shed),
        ),
        (
            "padsimd_checkpoints_written_total",
            "tenant base checkpoints written to the state dir",
            Counters::get(&c.checkpoints_written),
        ),
        (
            "padsimd_checkpoint_frames_total",
            "delta frames appended to checkpoint journals",
            Counters::get(&c.checkpoint_frames),
        ),
        (
            "padsimd_sessions_reaped_total",
            "sessions closed by the idle-timeout reaper",
            Counters::get(&c.sessions_reaped),
        ),
    ];
    for (name, help, value) in self_counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }

    let tenants = state.tenants();
    let _ = writeln!(out, "# HELP padsimd_tenants tenant streams known");
    let _ = writeln!(out, "# TYPE padsimd_tenants gauge");
    let _ = writeln!(out, "padsimd_tenants {}", tenants.len());
    let _ = writeln!(
        out,
        "# HELP padsimd_active_sessions stream connections inside their read loop"
    );
    let _ = writeln!(out, "# TYPE padsimd_active_sessions gauge");
    let _ = writeln!(
        out,
        "padsimd_active_sessions {}",
        Counters::get(&c.active_sessions)
    );
    let _ = writeln!(
        out,
        "# HELP padsimd_overloaded_tenants tenant streams currently shedding load"
    );
    let _ = writeln!(out, "# TYPE padsimd_overloaded_tenants gauge");
    let _ = writeln!(
        out,
        "padsimd_overloaded_tenants {}",
        Counters::get(&c.overloaded_tenants)
    );

    // Daemon-wide wall-clock histograms (ingest latency, HTTP latency)
    // plus each monitored tenant's ingest-health registry, all under
    // the padsimd_ prefix with full _bucket/_sum/_count exposition.
    if state.self_obs {
        out.push_str(
            &state
                .ops
                .lock()
                .expect("ops lock")
                .registry()
                .render_prometheus("padsimd_", ""),
        );
    }
    let (engines, registries) = snapshot_monitors(state, true);
    if !registries.is_empty() {
        let refs: Vec<(&str, &MetricRegistry)> =
            registries.iter().map(|(l, r)| (l.as_str(), r)).collect();
        out.push_str(&render_prometheus_families("padsimd_", &refs));
    }
    if !engines.is_empty() {
        let refs: Vec<(&str, &AlertEngine)> =
            engines.iter().map(|(l, e)| (l.as_str(), e)).collect();
        out.push_str(&render_alerts_prom(&refs));
    }

    // Snapshot every tenant once; the per-family loops below reuse it.
    struct Snap {
        name: String,
        level: u8,
        errors: u64,
        report: TelemetryReport,
    }
    let snaps: Vec<Snap> = tenants
        .iter()
        .map(|(name, tenant)| {
            let guard = tenant.lock().expect("tenant lock");
            Snap {
                name: name.clone(),
                level: guard.level().number(),
                errors: guard.parse_errors,
                report: TelemetryReport::from_records(&guard.records),
            }
        })
        .collect();

    let _ = writeln!(out, "# HELP padsimd_tenant_level current policy level");
    let _ = writeln!(out, "# TYPE padsimd_tenant_level gauge");
    for s in &snaps {
        let _ = writeln!(
            out,
            "padsimd_tenant_level{{tenant=\"{}\"}} {}",
            s.name, s.level
        );
    }
    let _ = writeln!(
        out,
        "# HELP padsimd_tenant_parse_errors_total malformed lines, by tenant"
    );
    let _ = writeln!(out, "# TYPE padsimd_tenant_parse_errors_total counter");
    for s in &snaps {
        let _ = writeln!(
            out,
            "padsimd_tenant_parse_errors_total{{tenant=\"{}\"}} {}",
            s.name, s.errors
        );
    }

    type Aggregate = (&'static str, &'static str, fn(&MetricDigest) -> f64);
    let aggregates: [Aggregate; 6] = [
        ("pad_metric_count", "samples recorded", |d| {
            d.stats.count() as f64
        }),
        ("pad_metric_mean", "mean of samples", |d| d.stats.mean()),
        ("pad_metric_min", "minimum sample", |d| d.stats.min()),
        ("pad_metric_max", "maximum sample", |d| d.stats.max()),
        ("pad_metric_p50", "median sample", |d| d.summary.median()),
        ("pad_metric_p95", "95th percentile sample", |d| {
            d.summary.percentile(95.0)
        }),
    ];
    for (name, help, f) in aggregates {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for s in &snaps {
            for metric in s.report.metric_names() {
                let digest = s.report.metric(metric).expect("name from the report");
                let _ = writeln!(
                    out,
                    "{name}{{tenant=\"{}\",metric=\"{metric}\"}} {}",
                    s.name,
                    f(digest)
                );
            }
        }
    }
    if snaps.iter().any(|s| s.report.events().next().is_some()) {
        let _ = writeln!(out, "# HELP pad_events_total events recorded, by kind");
        let _ = writeln!(out, "# TYPE pad_events_total counter");
        for s in &snaps {
            for event in s.report.events() {
                let _ = writeln!(
                    out,
                    "pad_events_total{{tenant=\"{}\",kind=\"{}\"}} {}",
                    s.name, event.kind, event.count
                );
            }
        }
    }
    let _ = writeln!(out, "# HELP pad_trace_samples_total samples in the trace");
    let _ = writeln!(out, "# TYPE pad_trace_samples_total counter");
    for s in &snaps {
        let _ = writeln!(
            out,
            "pad_trace_samples_total{{tenant=\"{}\"}} {}",
            s.name,
            s.report.sample_count()
        );
    }
    let _ = writeln!(out, "# HELP pad_trace_span_ms latest sim-time in the trace");
    let _ = writeln!(out, "# TYPE pad_trace_span_ms gauge");
    for s in &snaps {
        let _ = writeln!(
            out,
            "pad_trace_span_ms{{tenant=\"{}\"}} {}",
            s.name,
            s.report.span_ms()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad::pipeline::PipelineConfig;
    use simkit::telemetry::{parse, Format};

    fn seeded_state() -> DaemonState {
        let state = DaemonState::new(PipelineConfig::default());
        let (tenant, _) = state.open_tenant("acme", Format::Jsonl);
        let trace = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
                     {\"t\":100,\"e\":\"breaker_trip\",\"s\":\"rack-00\",\"v\":1}\n";
        let mut guard = tenant.lock().unwrap();
        for r in parse(trace, Format::Jsonl).unwrap() {
            guard.ingest_record(r);
        }
        guard.finalize();
        drop(guard);
        state
    }

    struct Duplex {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }
    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }
    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn raw(state: &DaemonState, request: &[u8]) -> String {
        let mut stream = Duplex {
            input: io::Cursor::new(request.to_vec()),
            output: Vec::new(),
        };
        handle_http(&mut stream, state).unwrap();
        String::from_utf8(stream.output).unwrap()
    }

    fn get(state: &DaemonState, path: &str) -> String {
        raw(state, format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
    }

    #[test]
    fn metrics_merges_tenants_with_single_help_blocks() {
        let state = seeded_state();
        let response = get(&state, "/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(response.contains("padsimd_tenants 1\n"));
        assert!(
            response.contains("pad_metric_mean{tenant=\"acme\",metric=\"rack-00.draw_w\"} 101\n")
        );
        assert!(response.contains("pad_events_total{tenant=\"acme\",kind=\"breaker_trip\"} 1\n"));
        assert!(response.contains("padsimd_tenant_level{tenant=\"acme\"} 1\n"));
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            body.matches("# TYPE pad_metric_mean gauge").count(),
            1,
            "one HELP/TYPE block per family"
        );
    }

    #[test]
    fn tenant_routes_serve_status_summary_firings_and_incidents() {
        let state = seeded_state();
        assert!(get(&state, "/healthz").ends_with("ok\n"));
        assert!(get(&state, "/tenants").contains("\"tenant\":\"acme\""));
        assert!(get(&state, "/tenants/acme").contains("\"finished\":true"));
        assert!(get(&state, "/tenants/acme/summary").contains("\"ticks\":2"));
        assert!(get(&state, "/tenants/acme/firings").contains("detector firings"));
        assert!(get(&state, "/tenants/acme/incidents").contains("\"incidents\":["));
        assert!(get(&state, "/tenants/acme/metrics")
            .contains("pad_metric_count{tenant=\"acme\",metric=\"rack-00.draw_w\"} 2\n"));
        assert!(get(&state, "/tenants/ghost").starts_with("HTTP/1.0 404"));
        assert!(get(&state, "/nope").starts_with("HTTP/1.0 404"));
    }

    #[test]
    fn readyz_tracks_bind_and_drain_while_healthz_stays_ok() {
        let state = DaemonState::new(PipelineConfig::default());
        assert!(get(&state, "/healthz").ends_with("ok\n"));
        let before = get(&state, "/readyz");
        assert!(before.starts_with("HTTP/1.0 503"), "not ready before bind");
        assert!(before.ends_with("starting\n"));
        state.set_ready(true);
        assert!(get(&state, "/readyz").starts_with("HTTP/1.0 200"));
        state.request_shutdown();
        let draining = get(&state, "/readyz");
        assert!(
            draining.starts_with("HTTP/1.0 503"),
            "draining is not ready"
        );
        assert!(draining.ends_with("draining\n"));
        assert!(
            get(&state, "/healthz").ends_with("ok\n"),
            "liveness is unaffected by readiness"
        );
    }

    #[test]
    fn metrics_carries_self_observability_histograms_and_alerts() {
        let state = seeded_state();
        let response = get(&state, "/metrics");
        assert!(response.contains("padsimd_ingest_latency_seconds_bucket{le=\""));
        assert!(response.contains("padsimd_ingest_latency_seconds_bucket{le=\"+Inf\"}"));
        assert!(response.contains("padsimd_ingest_latency_seconds_sum"));
        assert!(response.contains("padsimd_http_request_seconds_count"));
        assert!(response.contains("padsimd_ingest_records_total{tenant=\"acme\"} 3\n"));
        assert!(response.contains("padsimd_ingest_tick_gap_ms_bucket{tenant=\"acme\",le=\""));
        assert!(response.contains("padsimd_active_sessions 0\n"));
        assert!(response.contains("padsimd_http_responses_2xx_total"));
        assert!(response.contains("# TYPE ALERTS gauge"));
    }

    #[test]
    fn bare_state_renders_metrics_without_monitor_families() {
        let state = DaemonState::bare(PipelineConfig::default());
        state.open_tenant("t", Format::Jsonl);
        let response = get(&state, "/metrics");
        assert!(!response.contains("padsimd_ingest_latency_seconds"));
        assert!(!response.contains("ALERTS"));
        assert!(response.contains("padsimd_tenants 1\n"));
    }

    #[test]
    fn statusz_alerts_and_logs_routes_serve_documents() {
        let state = seeded_state();
        let statusz = get(&state, "/statusz");
        assert!(statusz.contains("\"ready\":false"));
        assert!(statusz.contains("\"tenants\":1"));
        assert!(statusz.contains("\"alerts_firing\":0"));
        let alerts = get(&state, "/alerts");
        assert!(alerts.contains("\"tenant\":\"acme\""));
        assert!(alerts.contains("\"firing\":0"));
        let prom = get(&state, "/alerts?format=prom");
        assert!(prom.starts_with("HTTP/1.0 200"));
        assert!(prom.contains("# TYPE ALERTS gauge"));
        let logs = get(&state, "/logs");
        assert!(logs.contains("\"kind\":\"session_open\""));
        let doc = get(&state, "/tenants/acme/alerts");
        assert!(doc.contains("\"name\":\"tenant-silent\""));
        assert!(doc.contains("\"events_dropped\":0"));
    }

    #[test]
    fn hostile_requests_get_4xx_and_are_counted() {
        let state = DaemonState::new(PipelineConfig::default());
        // Oversized request line: no newline within the cap.
        let mut flood = b"GET /".to_vec();
        flood.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 1024));
        flood.extend_from_slice(b" HTTP/1.0\r\n\r\n");
        assert!(raw(&state, &flood).starts_with("HTTP/1.0 400"));
        // Missing terminator: EOF before any newline.
        assert!(raw(&state, b"GET /healthz HTTP/1.0").starts_with("HTTP/1.0 400"));
        // Unknown method.
        assert!(raw(&state, b"POST /healthz HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 400"));
        // Binary garbage.
        assert!(raw(&state, b"\xff\xfe\x00\x01\n").starts_with("HTTP/1.0 400"));
        assert_eq!(Counters::get(&state.counters.http_4xx), 4);
        assert_eq!(Counters::get(&state.counters.http_5xx), 0);
        assert_eq!(Counters::get(&state.counters.http_requests), 4);
    }

    #[test]
    fn pipelined_requests_serve_the_first_and_close() {
        let state = DaemonState::new(PipelineConfig::default());
        let response = raw(
            &state,
            b"GET /healthz HTTP/1.0\r\nGET /statusz HTTP/1.0\r\n\r\njunk trailing bytes\n",
        );
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert!(response.contains("Connection: close"));
        assert!(response.ends_with("ok\n"), "one response only: {response}");
        assert_eq!(Counters::get(&state.counters.http_2xx), 1);
    }

    #[test]
    fn readyz_reports_overload_as_unavailable() {
        let state = DaemonState::new(PipelineConfig::default());
        state.set_ready(true);
        assert!(get(&state, "/readyz").starts_with("HTTP/1.0 200"));
        Counters::bump(&state.counters.overloaded_tenants);
        let overloaded = get(&state, "/readyz");
        assert!(overloaded.starts_with("HTTP/1.0 503"), "{overloaded}");
        assert!(overloaded.ends_with("overloaded\n"));
        Counters::drop_one(&state.counters.overloaded_tenants);
        assert!(get(&state, "/readyz").starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn metrics_exposes_robustness_counters() {
        let state = DaemonState::new(PipelineConfig::default());
        let response = get(&state, "/metrics");
        assert!(response.contains("padsimd_lines_shed_total 0\n"));
        assert!(response.contains("padsimd_checkpoints_written_total 0\n"));
        assert!(response.contains("padsimd_sessions_reaped_total 0\n"));
        assert!(response.contains("padsimd_overloaded_tenants 0\n"));
        let statusz = get(&state, "/statusz");
        assert!(statusz.contains("\"lines_shed\":0"));
        assert!(statusz.contains("\"checkpoints_written\":0"));
        assert!(statusz.contains("\"sessions_reaped\":0"));
        assert!(statusz.contains("\"overloaded_tenants\":0"));
    }

    #[test]
    fn summary_is_404_while_the_stream_is_open() {
        let state = DaemonState::new(PipelineConfig::default());
        let (tenant, _) = state.open_tenant("open", Format::Jsonl);
        for r in parse(
            "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n",
            Format::Jsonl,
        )
        .unwrap()
        {
            tenant.lock().unwrap().ingest_record(r);
        }
        assert!(get(&state, "/tenants/open/summary").starts_with("HTTP/1.0 404"));
        assert!(get(&state, "/tenants/open").contains("\"finished\":false"));
    }
}
