//! # paddaemon — defense-as-a-service for telemetry streams
//!
//! The library behind `padsimd`: a long-running daemon that ingests
//! JSONL/CSV telemetry streams over TCP or Unix sockets for many
//! independent tenant clusters, runs each through the PAD detection
//! pipeline ([`pad::pipeline`] — detector bank, security-policy FSM,
//! incident reconstruction) **online**, and serves live verdicts,
//! Prometheus metrics, and incident reports over a tiny HTTP API.
//!
//! ## Correctness contract
//!
//! The daemon and `padsim detect --replay` / `padsim incident` are two
//! transports over the *same* library pipeline: a recorded trace
//! streamed through a socket — in any chunking, interleaved with any
//! other tenants — produces firings, escalations, summaries, and
//! incident reports **byte-identical** to the offline CLI run on the
//! same file. The golden suites in `tests/` pin this.
//!
//! ## Module map
//!
//! * [`proto`] — line framing and the 4-keyword control grammar
//!   (`hello`, `end`, `ping`, `shutdown`); data lines are the existing
//!   telemetry/span wire formats, so recorded files stream verbatim;
//! * [`session`] — the per-connection read loop: codec dispatch,
//!   per-line error containment, drain-on-EOF;
//! * [`state`] — the tenant registry (lazy rack inference at the first
//!   tick boundary), the daemon's self-metric counters, wall-clock ops
//!   histograms, the bounded ops-log ring, and per-tenant
//!   [`StreamMonitor`](pad::pipeline::StreamMonitor) alert sidecars;
//! * [`http`] — `/metrics` (merged, tenant-labeled exposition with full
//!   histogram buckets), `/readyz`/`/statusz`/`/alerts`/`/logs`
//!   operational surfaces, and the `/tenants/...` JSON API;
//! * [`server`] — non-blocking accept loops, thread-per-session,
//!   graceful shutdown with per-tenant output flush;
//! * [`client`] — the `send`/`get` helpers the CLI and CI use, plus
//!   the crash-tolerant [`send_resumable`](client::send_resumable)
//!   reconnect-and-rewind path;
//! * [`chaos`] — the wire-level fault-injection harness behind
//!   `padsimd chaos`: kill/restart and proxy-fault scenarios diffed
//!   byte-for-byte against an uninterrupted baseline.
//!
//! ## Crash tolerance
//!
//! With `--state-dir`, every tenant's full pipeline state (records,
//! spans, detector/policy/alert snapshots) is checkpointed atomically
//! at detector-tick boundaries and restored on startup; clients
//! re-attach with `hello <tenant> [fmt] resume <seq>` and rewind to
//! the daemon's acked durable sequence number, so a `SIGKILL` at any
//! point costs neither a replayed nor a dropped line.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod http;
pub mod proto;
pub mod server;
pub mod session;
pub mod state;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport};
pub use client::{http_get, open_resume, send, send_resumable, Conn, RetryOpts, SendJob};
pub use proto::{classify, valid_tenant, Control, Line};
pub use server::{flush_outputs, serve, ServeOptions, READ_TIMEOUT};
pub use session::{run_session, SessionStats};
pub use state::{Counters, DaemonState, OpsEntry, OpsLog, OpsMetrics, Tenant};
