//! One connection's read loop: control dispatch, codec framing, and
//! per-line error containment.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use simkit::telemetry::{is_csv_header, parse_line, Format};
use simkit::trace::{is_span_csv_header, parse_span_line};

use crate::proto::{classify, Control, Line};
use crate::state::{Counters, DaemonState, Tenant};

/// Which block a CSV session's header most recently opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CsvBlock {
    Telemetry,
    Spans,
}

/// Outcome of a finished session, for the caller's logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Telemetry records accepted.
    pub records: u64,
    /// Span lines accepted.
    pub spans: u64,
    /// Lines skipped as malformed (wire or protocol).
    pub errors: u64,
    /// `true` when the session asked the daemon to shut down.
    pub shutdown: bool,
}

/// Runs one session over `stream` until EOF, `shutdown`, or a daemon
/// drain. The stream should carry a read timeout so the loop can poll
/// the shutdown flag; on timeout, partially-read bytes stay buffered
/// (never dropped) and the read resumes where it left off.
///
/// Every malformed line is contained to that line: it increments the
/// session, tenant, and daemon error counters and the loop moves on —
/// a wire hiccup can cost a record, never a session.
pub fn run_session<S: Read + Write>(stream: S, state: &DaemonState) -> io::Result<SessionStats> {
    Counters::bump(&state.counters.active_sessions);
    let result = run_session_inner(stream, state);
    Counters::drop_one(&state.counters.active_sessions);
    result
}

/// One wire poll's wall-clock accounting: started lazily at the first
/// line after a blocking wait, flushed into the ops histograms (and the
/// open tenant's monitor) whenever the loop blocks again.
struct Poll {
    started: Instant,
    lines: u64,
    records_before: u64,
}

fn run_session_inner<S: Read + Write>(stream: S, state: &DaemonState) -> io::Result<SessionStats> {
    let mut session = Session {
        state,
        tenant: None,
        format: Format::Jsonl,
        csv_block: CsvBlock::Telemetry,
        line_no: 0,
        stats: SessionStats::default(),
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut poll: Option<Poll> = None;
    loop {
        if state.shutting_down() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if state.self_obs {
                    let poll = poll.get_or_insert_with(|| Poll {
                        started: Instant::now(),
                        lines: 0,
                        records_before: session.stats.records,
                    });
                    poll.lines += 1;
                }
                let reply = session.handle_line(&line);
                line.clear();
                if let Some(reply) = reply {
                    let stream = reader.get_mut();
                    stream.write_all(reply.as_bytes())?;
                    stream.flush()?;
                }
                if session.stats.shutdown {
                    break;
                }
            }
            // A timeout may have appended a partial line to `line`;
            // keep it and resume — the next read completes it.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                session.flush_poll(&mut poll);
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    session.flush_poll(&mut poll);
    session.drain();
    Ok(session.stats)
}

struct Session<'a> {
    state: &'a DaemonState,
    tenant: Option<Arc<Mutex<Tenant>>>,
    format: Format,
    csv_block: CsvBlock,
    line_no: usize,
    stats: SessionStats,
}

impl Session<'_> {
    /// Processes one complete line, returning the reply to send, if any.
    fn handle_line(&mut self, raw: &str) -> Option<String> {
        self.line_no += 1;
        match classify(raw) {
            Line::Blank => None,
            Line::Control(Control::Ping) => Some("pong\n".to_string()),
            Line::Control(Control::Hello { tenant, format }) => {
                // Ending the previous stream first keeps `hello a …
                // hello b` on one connection well-formed.
                self.finish_open_tenant();
                self.format = format;
                self.csv_block = CsvBlock::Telemetry;
                self.tenant = Some(self.state.open_tenant(&tenant, format));
                Some(format!("ok hello {tenant}\n"))
            }
            Line::Control(Control::End) => match self.tenant.take() {
                Some(tenant) => {
                    let mut guard = tenant.lock().expect("tenant lock");
                    let json = guard.finalize().to_json();
                    let name = guard.name.clone();
                    let transitions = guard.take_transitions();
                    drop(guard);
                    self.log_transitions(&name, &transitions);
                    Counters::bump(&self.state.counters.sessions_closed);
                    self.state.log_event("session_end", &name, "");
                    Some(json)
                }
                None => self.error("end without an open session"),
            },
            Line::Control(Control::Shutdown) => {
                self.state.request_shutdown();
                self.stats.shutdown = true;
                Some("ok shutdown\n".to_string())
            }
            Line::BadControl(message) => self.error(&message),
            Line::Data => self.handle_data(raw),
        }
    }

    /// Feeds a data line to the codec the framing selects.
    fn handle_data(&mut self, raw: &str) -> Option<String> {
        let Some(tenant) = self.tenant.clone() else {
            return self.error("data line before hello");
        };
        let text = raw.trim_end_matches(['\r', '\n']);
        let line_no = self.line_no;
        // Channel framing: JSONL lines self-describe by prefix; CSV rows
        // bind to whichever block the last header opened.
        let is_span = match self.format {
            Format::Jsonl => text.starts_with("{\"id\":"),
            Format::Csv => {
                if is_csv_header(text) {
                    self.csv_block = CsvBlock::Telemetry;
                    return None;
                }
                if is_span_csv_header(text) {
                    self.csv_block = CsvBlock::Spans;
                    return None;
                }
                self.csv_block == CsvBlock::Spans
            }
        };
        if is_span {
            match parse_span_line(text, line_no, self.format) {
                Ok(span) => {
                    tenant.lock().expect("tenant lock").ingest_span(span);
                    self.stats.spans += 1;
                    Counters::bump(&self.state.counters.spans);
                    None
                }
                Err(e) => self.data_error(&tenant, &e.to_string()),
            }
        } else {
            match parse_line(text, line_no, self.format) {
                Ok(record) => {
                    let mut guard = tenant.lock().expect("tenant lock");
                    guard.ingest_record(record);
                    let transitions = guard.take_transitions();
                    let name = if transitions.is_empty() {
                        String::new()
                    } else {
                        guard.name.clone()
                    };
                    drop(guard);
                    self.log_transitions(&name, &transitions);
                    self.stats.records += 1;
                    Counters::bump(&self.state.counters.records);
                    None
                }
                Err(e) => self.data_error(&tenant, &e.to_string()),
            }
        }
    }

    /// Forwards drained alert transitions to the daemon ops log.
    fn log_transitions(&mut self, tenant: &str, transitions: &[simkit::alert::AlertEvent]) {
        for ev in transitions {
            self.state.log_event(
                if ev.fired {
                    "alert_fired"
                } else {
                    "alert_resolved"
                },
                tenant,
                &format!("{} t={} value={}", ev.rule, ev.time_ms, ev.value),
            );
        }
    }

    /// Flushes the open wire poll, if any, into the ops histograms and
    /// the current tenant's monitor.
    fn flush_poll(&mut self, poll: &mut Option<Poll>) {
        let Some(poll) = poll.take() else {
            return;
        };
        let seconds = poll.started.elapsed().as_secs_f64();
        let records = self.stats.records - poll.records_before;
        self.state
            .ops
            .lock()
            .expect("ops lock")
            .observe_poll(seconds, poll.lines, records);
        if let Some(tenant) = &self.tenant {
            tenant
                .lock()
                .expect("tenant lock")
                .observe_poll(seconds, poll.lines, records);
        }
    }

    /// Charges a malformed data line to the tenant and the daemon.
    fn data_error(&mut self, tenant: &Arc<Mutex<Tenant>>, _message: &str) -> Option<String> {
        tenant.lock().expect("tenant lock").note_parse_error();
        self.stats.errors += 1;
        Counters::bump(&self.state.counters.parse_errors);
        None
    }

    /// Counts a protocol error and reports it on the wire.
    fn error(&mut self, message: &str) -> Option<String> {
        self.stats.errors += 1;
        Counters::bump(&self.state.counters.parse_errors);
        Some(format!("err {message}\n"))
    }

    /// Finalizes the open tenant stream without a reply — the drain
    /// path for EOF, daemon shutdown, and a mid-session re-`hello`.
    fn finish_open_tenant(&mut self) {
        if let Some(tenant) = self.tenant.take() {
            let mut guard = tenant.lock().expect("tenant lock");
            guard.finalize();
            let name = guard.name.clone();
            let transitions = guard.take_transitions();
            drop(guard);
            self.log_transitions(&name, &transitions);
            Counters::bump(&self.state.counters.sessions_closed);
            self.state.log_event("session_end", &name, "");
        }
    }

    fn drain(&mut self) {
        self.finish_open_tenant();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad::pipeline::PipelineConfig;

    /// An in-memory duplex: the session reads a canned script and
    /// writes replies into a buffer.
    struct Script {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run(state: &DaemonState, script: &str) -> (SessionStats, String) {
        let mut script = Script {
            input: io::Cursor::new(script.as_bytes().to_vec()),
            output: Vec::new(),
        };
        let stats = run_session(&mut script, state).unwrap();
        (stats, String::from_utf8(script.output).unwrap())
    }

    fn run_replies(state: &DaemonState, script: &str) -> String {
        run(state, script).1
    }

    #[test]
    fn jsonl_session_streams_records_and_spans() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "hello acme\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
             {\"id\":0,\"name\":\"attack.drain\",\"parent\":null,\"t0\":0,\"t1\":100,\"attrs\":{}}\n\
             end\n",
        );
        assert!(replies.starts_with("ok hello acme\n"));
        assert!(replies.contains("\"records\":2"));
        let tenant = state.tenant("acme").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.records.len(), 2);
        assert_eq!(guard.spans.len(), 1);
        assert!(guard.finished());
    }

    #[test]
    fn malformed_lines_never_abort_the_session() {
        let state = DaemonState::new(PipelineConfig::default());
        let (stats, replies) = run(
            &state,
            "hello t\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":50,\"m\":\"rack-00.draw_w\",\"v\":10\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
             end\n",
        );
        assert_eq!(stats.records, 2, "survivors on both sides of the error");
        assert_eq!(stats.errors, 1);
        assert_eq!(Counters::get(&state.counters.parse_errors), 1);
        assert!(replies.contains("\"records\":2"));
        let tenant = state.tenant("t").unwrap();
        assert_eq!(tenant.lock().unwrap().parse_errors, 1);
    }

    #[test]
    fn csv_blocks_switch_on_headers() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "hello c csv\n\
             time_ms,record,name,source,value\n\
             0,sample,rack-00.draw_w,,100\n\
             id,name,parent,start_ms,end_ms,attrs\n\
             0,attack.drain,,0,100,\n\
             time_ms,record,name,source,value\n\
             100,sample,rack-00.draw_w,,101\n\
             end\n",
        );
        assert!(replies.contains("\"records\":2"));
        let tenant = state.tenant("c").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.records.len(), 2);
        assert_eq!(guard.spans.len(), 1);
        assert_eq!(guard.spans[0].name, "attack.drain");
    }

    #[test]
    fn protocol_errors_reply_err_and_count() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "{\"t\":0,\"m\":\"a.x\",\"v\":1}\nend\nhello ../evil\nping\n",
        );
        assert!(replies.contains("err data line before hello"));
        assert!(replies.contains("err end without an open session"));
        assert!(replies.contains("err invalid tenant name"));
        assert!(replies.ends_with("pong\n"));
        assert_eq!(Counters::get(&state.counters.parse_errors), 3);
    }

    #[test]
    fn eof_drains_the_open_stream() {
        let state = DaemonState::new(PipelineConfig::default());
        let (_, replies) = run(
            &state,
            "hello drainy\n{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n",
        );
        assert_eq!(replies, "ok hello drainy\n", "no end reply at EOF");
        let tenant = state.tenant("drainy").unwrap();
        assert!(tenant.lock().unwrap().finished(), "drained at EOF");
        assert_eq!(Counters::get(&state.counters.sessions_closed), 1);
    }

    #[test]
    fn shutdown_control_sets_the_flag_and_acks() {
        let state = DaemonState::new(PipelineConfig::default());
        let (stats, replies) = run(&state, "hello s\nshutdown\nping\n");
        assert!(stats.shutdown);
        assert!(replies.ends_with("ok shutdown\n"), "ping never processed");
        assert!(state.shutting_down());
        let tenant = state.tenant("s").unwrap();
        assert!(tenant.lock().unwrap().finished(), "open stream drained");
    }
}
