//! One connection's read loop: control dispatch, codec framing, and
//! per-line error containment.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use simkit::telemetry::{is_csv_header, parse_line, Format};
use simkit::trace::{is_span_csv_header, parse_span_line};

use crate::proto::{classify, Control, Line};
use crate::state::{Counters, DaemonState, Tenant};

/// Hard cap on one wire line, including its newline. Longer lines are
/// discarded (never buffered) and answered with an `err` reply, so a
/// client that forgets its newlines cannot balloon daemon memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Retry hint, in milliseconds, sent with a `busy` admission refusal.
pub const RETRY_AFTER_MS: u64 = 1000;

/// Which block a CSV session's header most recently opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CsvBlock {
    Telemetry,
    Spans,
}

/// Outcome of a finished session, for the caller's logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Telemetry records accepted.
    pub records: u64,
    /// Span lines accepted.
    pub spans: u64,
    /// Lines skipped as malformed (wire or protocol).
    pub errors: u64,
    /// `true` when the session asked the daemon to shut down.
    pub shutdown: bool,
}

/// Runs one session over `stream` until EOF, `shutdown`, or a daemon
/// drain. The stream should carry a read timeout so the loop can poll
/// the shutdown flag; on timeout, partially-read bytes stay buffered
/// (never dropped) and the read resumes where it left off.
///
/// Every malformed line is contained to that line: it increments the
/// session, tenant, and daemon error counters and the loop moves on —
/// a wire hiccup can cost a record, never a session.
pub fn run_session<S: Read + Write>(stream: S, state: &DaemonState) -> io::Result<SessionStats> {
    Counters::bump(&state.counters.active_sessions);
    let result = run_session_inner(stream, state);
    Counters::drop_one(&state.counters.active_sessions);
    result
}

/// One wire poll's wall-clock accounting: started lazily at the first
/// line after a blocking wait, flushed into the ops histograms (and the
/// open tenant's monitor) whenever the loop blocks again.
struct Poll {
    started: Instant,
    lines: u64,
    records_before: u64,
}

/// One wire line, as framed by [`LineReader`].
enum WireLine {
    /// Clean end of stream.
    Eof,
    /// A complete, newline-terminated UTF-8 line.
    Text(String),
    /// A line longer than [`MAX_LINE_BYTES`]; its bytes were discarded.
    Oversized,
    /// A newline-terminated line that was not valid UTF-8.
    BadUtf8,
}

/// Bounded, restartable line framing over a non-blocking stream.
///
/// Unlike `BufRead::read_line`, this (a) caps how many bytes one line
/// may buffer, discarding the rest of an oversized line instead of
/// growing without bound, and (b) turns invalid UTF-8 into a per-line
/// verdict instead of a session-fatal `InvalidData` error. Partial
/// lines survive `WouldBlock`: accumulated bytes stay in `buf` and the
/// next call resumes where the read left off.
struct LineReader<S: Read> {
    inner: BufReader<S>,
    buf: Vec<u8>,
    /// `true` while skipping the remainder of an oversized line.
    discarding: bool,
}

impl<S: Read> LineReader<S> {
    fn new(stream: S) -> Self {
        LineReader {
            inner: BufReader::new(stream),
            buf: Vec::new(),
            discarding: false,
        }
    }

    fn get_mut(&mut self) -> &mut S {
        self.inner.get_mut()
    }

    /// Reads the next line, propagating `WouldBlock`/`TimedOut` with
    /// all partial-line state intact.
    fn next_line(&mut self) -> io::Result<WireLine> {
        loop {
            let available = self.inner.fill_buf()?;
            if available.is_empty() {
                // EOF. An unterminated trailing fragment is
                // indistinguishable from a connection cut mid-write,
                // so it is never committed — only newline-terminated
                // lines count, and a resuming client re-sends the
                // fragment in full. Committing it would advance the
                // durable sequence number past data the client never
                // finished delivering.
                self.buf.clear();
                self.discarding = false;
                return Ok(WireLine::Eof);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let take = pos + 1;
                    if !self.discarding && self.buf.len() + take <= MAX_LINE_BYTES {
                        self.buf.extend_from_slice(&available[..take]);
                    } else if !self.discarding {
                        self.discarding = true;
                        self.buf.clear();
                    }
                    self.inner.consume(take);
                    return Ok(self.take_line());
                }
                None => {
                    let len = available.len();
                    if !self.discarding {
                        if self.buf.len() + len > MAX_LINE_BYTES {
                            self.discarding = true;
                            self.buf.clear();
                        } else {
                            self.buf.extend_from_slice(available);
                        }
                    }
                    self.inner.consume(len);
                }
            }
        }
    }

    fn take_line(&mut self) -> WireLine {
        if self.discarding {
            self.discarding = false;
            self.buf.clear();
            return WireLine::Oversized;
        }
        match String::from_utf8(std::mem::take(&mut self.buf)) {
            Ok(text) => WireLine::Text(text),
            Err(_) => WireLine::BadUtf8,
        }
    }
}

fn run_session_inner<S: Read + Write>(stream: S, state: &DaemonState) -> io::Result<SessionStats> {
    let mut session = Session {
        state,
        tenant: None,
        format: Format::Jsonl,
        csv_block: CsvBlock::Telemetry,
        line_no: 0,
        stats: SessionStats::default(),
        generation: 0,
        fenced: false,
    };
    let mut reader = LineReader::new(stream);
    let mut poll: Option<Poll> = None;
    let mut last_read = Instant::now();
    loop {
        if state.shutting_down() {
            break;
        }
        match reader.next_line() {
            Ok(WireLine::Eof) => break,
            Ok(wire) => {
                last_read = Instant::now();
                if state.self_obs {
                    let poll = poll.get_or_insert_with(|| Poll {
                        started: Instant::now(),
                        lines: 0,
                        records_before: session.stats.records,
                    });
                    poll.lines += 1;
                }
                let reply = match wire {
                    WireLine::Text(line) => session.handle_line(&line),
                    WireLine::Oversized => {
                        session.error(&format!("line exceeds {MAX_LINE_BYTES} bytes"))
                    }
                    WireLine::BadUtf8 => session.error("line is not valid UTF-8"),
                    WireLine::Eof => unreachable!("handled above"),
                };
                if let Some(reply) = reply {
                    let stream = reader.get_mut();
                    stream.write_all(reply.as_bytes())?;
                    stream.flush()?;
                }
                if session.stats.shutdown {
                    break;
                }
            }
            // A timeout leaves any partial line buffered in the reader;
            // the next read resumes where it left off.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                session.flush_poll(&mut poll);
                if let Some(timeout) = state.idle_timeout {
                    if last_read.elapsed() >= timeout {
                        Counters::bump(&state.counters.sessions_reaped);
                        let tenant = session
                            .tenant
                            .as_ref()
                            .map(|t| t.lock().expect("tenant lock").name.clone())
                            .unwrap_or_default();
                        state.log_event("session_idle_reap", &tenant, "");
                        break;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    session.flush_poll(&mut poll);
    session.drain();
    Ok(session.stats)
}

struct Session<'a> {
    state: &'a DaemonState,
    tenant: Option<Arc<Mutex<Tenant>>>,
    format: Format,
    csv_block: CsvBlock,
    line_no: usize,
    stats: SessionStats,
    /// The tenant generation this session attached under. When the
    /// tenant's live generation moves past it, a newer session has
    /// taken over and this one is fenced.
    generation: u64,
    /// Set once fencing is detected: the rest of this connection is
    /// ignored. A cut socket can keep draining buffered lines after
    /// the client has already reconnected; committing them would race
    /// the resumed stream and duplicate records.
    fenced: bool,
}

impl Session<'_> {
    /// Processes one complete line, returning the reply to send, if any.
    fn handle_line(&mut self, raw: &str) -> Option<String> {
        if self.fenced {
            // A superseded session is inert: it drains its socket
            // without committing, replying, or erroring.
            return None;
        }
        self.line_no += 1;
        match classify(raw) {
            Line::Blank => None,
            Line::Control(Control::Ping) => Some("pong\n".to_string()),
            Line::Control(Control::Hello {
                tenant,
                format,
                resume,
            }) => {
                // Ending the previous stream first keeps `hello a …
                // hello b` on one connection well-formed.
                self.finish_open_tenant();
                self.csv_block = CsvBlock::Telemetry;
                match resume {
                    // A plain hello resets the tenant, which also clears
                    // any overload: the reset empties the buffers that
                    // caused it.
                    None => {
                        self.format = format;
                        let (handle, generation) = self.state.open_tenant(&tenant, format);
                        self.generation = generation;
                        self.tenant = Some(handle);
                        Some(format!("ok hello {tenant}\n"))
                    }
                    // A resume re-attaches without resetting. The ack
                    // carries the daemon's durable sequence number; the
                    // client rewinds its send buffer to that line, so
                    // the client's claimed position is advisory only.
                    Some(_client_seq) => {
                        if let Some(handle) = self.state.tenant(&tenant) {
                            if handle.lock().expect("tenant lock").overloaded {
                                self.state.log_event("session_busy", &tenant, "");
                                return Some(format!("busy retry-after {RETRY_AFTER_MS}\n"));
                            }
                        }
                        match self.state.resume_tenant(&tenant, format) {
                            Ok((handle, seq, generation)) => {
                                self.format = format;
                                self.generation = generation;
                                self.tenant = Some(handle);
                                Some(format!("ok hello {tenant} seq {seq}\n"))
                            }
                            Err(message) => self.error(&message),
                        }
                    }
                }
            }
            Line::Control(Control::End) => match self.tenant.take() {
                Some(tenant) => {
                    let mut guard = tenant.lock().expect("tenant lock");
                    if guard.generation != self.generation {
                        let name = guard.name.clone();
                        drop(guard);
                        self.fence(&name);
                        return None;
                    }
                    let json = guard.finalize().to_json();
                    let name = guard.name.clone();
                    let transitions = guard.take_transitions();
                    // Close-of-stream durability: a finished delta frame
                    // (or the base itself if no tick ever wrote one).
                    let ckpt_err = if guard.checkpoint_due() {
                        self.state.write_checkpoint(&mut guard).err()
                    } else {
                        self.state.append_checkpoint_frame(&mut guard).err()
                    };
                    drop(guard);
                    if let Some(e) = ckpt_err {
                        self.state
                            .log_event("checkpoint_error", &name, &e.to_string());
                    }
                    self.log_transitions(&name, &transitions);
                    Counters::bump(&self.state.counters.sessions_closed);
                    self.state.log_event("session_end", &name, "");
                    Some(json)
                }
                None => self.error("end without an open session"),
            },
            Line::Control(Control::Shutdown) => {
                self.state.request_shutdown();
                self.stats.shutdown = true;
                Some("ok shutdown\n".to_string())
            }
            Line::BadControl(message) => self.error(&message),
            Line::Data => self.handle_data(raw),
        }
    }

    /// Feeds a data line to the codec the framing selects.
    fn handle_data(&mut self, raw: &str) -> Option<String> {
        let Some(tenant) = self.tenant.clone() else {
            return self.error("data line before hello");
        };
        let text = raw.trim_end_matches(['\r', '\n']);
        let line_no = self.line_no;
        // CSV headers only switch blocks — they buffer nothing, advance
        // no sequence number, and are exempt from shedding.
        if self.format == Format::Csv {
            if is_csv_header(text) {
                self.csv_block = CsvBlock::Telemetry;
                return None;
            }
            if is_span_csv_header(text) {
                self.csv_block = CsvBlock::Spans;
                return None;
            }
        }
        // Overload shedding: past the watermark the line is dropped
        // with accounting but without advancing the stream sequence, so
        // a resuming client retransmits it.
        {
            let mut guard = tenant.lock().expect("tenant lock");
            if guard.generation != self.generation {
                let name = guard.name.clone();
                drop(guard);
                self.fence(&name);
                return None;
            }
            if guard.buffered_lines() >= self.state.max_buffered_lines {
                guard.shed += 1;
                Counters::bump(&self.state.counters.lines_shed);
                let newly = !guard.overloaded;
                guard.overloaded = true;
                let name = guard.name.clone();
                let buffered = guard.buffered_lines();
                drop(guard);
                if newly {
                    Counters::bump(&self.state.counters.overloaded_tenants);
                    self.state
                        .log_event("overload_shed", &name, &format!("buffered={buffered}"));
                }
                return None;
            }
        }
        // Channel framing: JSONL lines self-describe by prefix; CSV rows
        // bind to whichever block the last header opened.
        let is_span = match self.format {
            Format::Jsonl => text.starts_with("{\"id\":"),
            Format::Csv => self.csv_block == CsvBlock::Spans,
        };
        if is_span {
            match parse_span_line(text, line_no, self.format) {
                Ok(span) => {
                    let mut guard = tenant.lock().expect("tenant lock");
                    if guard.generation != self.generation {
                        let name = guard.name.clone();
                        drop(guard);
                        self.fence(&name);
                        return None;
                    }
                    guard.ingest_span_wire(text, span);
                    drop(guard);
                    self.stats.spans += 1;
                    Counters::bump(&self.state.counters.spans);
                    None
                }
                Err(e) => self.data_error(&tenant, &e.to_string()),
            }
        } else {
            match parse_line(text, line_no, self.format) {
                Ok(record) => {
                    let mut guard = tenant.lock().expect("tenant lock");
                    if guard.generation != self.generation {
                        let name = guard.name.clone();
                        drop(guard);
                        self.fence(&name);
                        return None;
                    }
                    let ticked = guard.ingest_record_wire(text, record);
                    let transitions = guard.take_transitions();
                    let name = if transitions.is_empty() && !ticked {
                        String::new()
                    } else {
                        guard.name.clone()
                    };
                    // Checkpoint at tick boundaries: detector state only
                    // changes when a tick closes, so that is the natural
                    // durability cadence. The first tick writes the base
                    // document; every later tick appends a cheap delta
                    // frame to the journal, keeping total write cost
                    // O(stream) instead of O(stream²).
                    let ckpt_err = if ticked {
                        if guard.checkpoint_due() {
                            self.state.write_checkpoint(&mut guard).err()
                        } else {
                            self.state.append_checkpoint_frame(&mut guard).err()
                        }
                    } else {
                        None
                    };
                    drop(guard);
                    if let Some(e) = ckpt_err {
                        self.state
                            .log_event("checkpoint_error", &name, &e.to_string());
                    }
                    self.log_transitions(&name, &transitions);
                    self.stats.records += 1;
                    Counters::bump(&self.state.counters.records);
                    None
                }
                Err(e) => self.data_error(&tenant, &e.to_string()),
            }
        }
    }

    /// Forwards drained alert transitions to the daemon ops log.
    fn log_transitions(&mut self, tenant: &str, transitions: &[simkit::alert::AlertEvent]) {
        for ev in transitions {
            self.state.log_event(
                if ev.fired {
                    "alert_fired"
                } else {
                    "alert_resolved"
                },
                tenant,
                &format!("{} t={} value={}", ev.rule, ev.time_ms, ev.value),
            );
        }
    }

    /// Flushes the open wire poll, if any, into the ops histograms and
    /// the current tenant's monitor.
    fn flush_poll(&mut self, poll: &mut Option<Poll>) {
        let Some(poll) = poll.take() else {
            return;
        };
        let seconds = poll.started.elapsed().as_secs_f64();
        let records = self.stats.records - poll.records_before;
        self.state
            .ops
            .lock()
            .expect("ops lock")
            .observe_poll(seconds, poll.lines, records);
        if let Some(tenant) = &self.tenant {
            let mut guard = tenant.lock().expect("tenant lock");
            if guard.generation == self.generation {
                guard.observe_poll(seconds, poll.lines, records);
            }
        }
    }

    /// Charges a malformed data line to the tenant and the daemon.
    fn data_error(&mut self, tenant: &Arc<Mutex<Tenant>>, _message: &str) -> Option<String> {
        let mut guard = tenant.lock().expect("tenant lock");
        if guard.generation != self.generation {
            let name = guard.name.clone();
            drop(guard);
            self.fence(&name);
            return None;
        }
        guard.note_parse_error();
        drop(guard);
        self.stats.errors += 1;
        Counters::bump(&self.state.counters.parse_errors);
        None
    }

    /// Counts a protocol error and reports it on the wire.
    fn error(&mut self, message: &str) -> Option<String> {
        self.stats.errors += 1;
        Counters::bump(&self.state.counters.parse_errors);
        Some(format!("err {message}\n"))
    }

    /// Marks this session as superseded by a newer attach and stops it
    /// from committing anything further.
    fn fence(&mut self, name: &str) {
        self.tenant = None;
        self.fenced = true;
        Counters::bump(&self.state.counters.sessions_closed);
        self.state.log_event("session_fenced", name, "");
    }

    /// Finalizes the open tenant stream without a reply — the drain
    /// path for EOF, daemon shutdown, and a mid-session re-`hello`.
    fn finish_open_tenant(&mut self) {
        if let Some(tenant) = self.tenant.take() {
            let mut guard = tenant.lock().expect("tenant lock");
            if guard.generation != self.generation {
                // A newer session owns the stream now; EOF on this
                // stale socket must not finalize it mid-send.
                let name = guard.name.clone();
                drop(guard);
                self.fence(&name);
                return;
            }
            guard.finalize();
            let name = guard.name.clone();
            let transitions = guard.take_transitions();
            let ckpt_err = if guard.checkpoint_due() {
                self.state.write_checkpoint(&mut guard).err()
            } else {
                self.state.append_checkpoint_frame(&mut guard).err()
            };
            drop(guard);
            if let Some(e) = ckpt_err {
                self.state
                    .log_event("checkpoint_error", &name, &e.to_string());
            }
            self.log_transitions(&name, &transitions);
            Counters::bump(&self.state.counters.sessions_closed);
            self.state.log_event("session_end", &name, "");
        }
    }

    fn drain(&mut self) {
        self.finish_open_tenant();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pad::pipeline::PipelineConfig;

    /// An in-memory duplex: the session reads a canned script and
    /// writes replies into a buffer.
    struct Script {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run(state: &DaemonState, script: &str) -> (SessionStats, String) {
        let mut script = Script {
            input: io::Cursor::new(script.as_bytes().to_vec()),
            output: Vec::new(),
        };
        let stats = run_session(&mut script, state).unwrap();
        (stats, String::from_utf8(script.output).unwrap())
    }

    fn run_replies(state: &DaemonState, script: &str) -> String {
        run(state, script).1
    }

    #[test]
    fn jsonl_session_streams_records_and_spans() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "hello acme\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
             {\"id\":0,\"name\":\"attack.drain\",\"parent\":null,\"t0\":0,\"t1\":100,\"attrs\":{}}\n\
             end\n",
        );
        assert!(replies.starts_with("ok hello acme\n"));
        assert!(replies.contains("\"records\":2"));
        let tenant = state.tenant("acme").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.records.len(), 2);
        assert_eq!(guard.spans.len(), 1);
        assert!(guard.finished());
    }

    #[test]
    fn malformed_lines_never_abort_the_session() {
        let state = DaemonState::new(PipelineConfig::default());
        let (stats, replies) = run(
            &state,
            "hello t\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":50,\"m\":\"rack-00.draw_w\",\"v\":10\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
             end\n",
        );
        assert_eq!(stats.records, 2, "survivors on both sides of the error");
        assert_eq!(stats.errors, 1);
        assert_eq!(Counters::get(&state.counters.parse_errors), 1);
        assert!(replies.contains("\"records\":2"));
        let tenant = state.tenant("t").unwrap();
        assert_eq!(tenant.lock().unwrap().parse_errors, 1);
    }

    fn raw_session(state: &DaemonState) -> Session<'_> {
        Session {
            state,
            tenant: None,
            format: Format::Jsonl,
            csv_block: CsvBlock::Telemetry,
            line_no: 0,
            stats: SessionStats::default(),
            generation: 0,
            fenced: false,
        }
    }

    #[test]
    fn stale_sessions_are_fenced_after_a_resume_takeover() {
        // After a connection cut, the dead session's socket can keep
        // draining buffered lines while the client has already
        // reconnected. Those late lines must not commit — they would
        // race the resumed stream and duplicate records — and the
        // stale EOF must not finalize the new session's open stream.
        let state = DaemonState::new(PipelineConfig::default());
        let r1 = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}";
        let r2 = "{\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}";

        let mut stale = raw_session(&state);
        stale.handle_line("hello t jsonl");
        stale.handle_line(r1);

        let mut fresh = raw_session(&state);
        let ack = fresh.handle_line("hello t jsonl resume 1").unwrap();
        assert_eq!(ack, "ok hello t seq 1\n");

        // The stale session's leftovers arrive late: dropped silently.
        stale.handle_line(r2);
        assert!(stale.fenced);
        assert_eq!(stale.stats.records, 1, "only the pre-takeover line");
        stale.drain();
        {
            let tenant = state.tenant("t").unwrap();
            let guard = tenant.lock().unwrap();
            assert_eq!(guard.records.len(), 1, "no duplicate commits");
            assert_eq!(guard.seq, 1);
            assert!(!guard.finished(), "stale EOF must not finalize");
        }

        // The takeover session still owns the stream.
        fresh.handle_line(r2);
        let tenant = state.tenant("t").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.records.len(), 2);
        assert_eq!(guard.seq, 2);
    }

    #[test]
    fn truncated_final_lines_are_never_committed() {
        // A stream cut mid-write leaves an unterminated fragment at
        // EOF. Committing it (as a record OR a parse error) would
        // advance the durable sequence number past data the client
        // never finished sending, breaking exactly-once resume.
        let state = DaemonState::new(PipelineConfig::default());
        let (stats, _) = run(
            &state,
            "hello cut\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":1",
        );
        assert_eq!(stats.records, 1, "only the terminated line counts");
        assert_eq!(stats.errors, 0, "a fragment is not a parse error");
        let tenant = state.tenant("cut").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.records.len(), 1);
        assert_eq!(guard.seq, 1, "durable seq excludes the fragment");
        assert_eq!(guard.parse_errors, 0);
    }

    #[test]
    fn csv_blocks_switch_on_headers() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "hello c csv\n\
             time_ms,record,name,source,value\n\
             0,sample,rack-00.draw_w,,100\n\
             id,name,parent,start_ms,end_ms,attrs\n\
             0,attack.drain,,0,100,\n\
             time_ms,record,name,source,value\n\
             100,sample,rack-00.draw_w,,101\n\
             end\n",
        );
        assert!(replies.contains("\"records\":2"));
        let tenant = state.tenant("c").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.records.len(), 2);
        assert_eq!(guard.spans.len(), 1);
        assert_eq!(guard.spans[0].name, "attack.drain");
    }

    #[test]
    fn protocol_errors_reply_err_and_count() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "{\"t\":0,\"m\":\"a.x\",\"v\":1}\nend\nhello ../evil\nping\n",
        );
        assert!(replies.contains("err data line before hello"));
        assert!(replies.contains("err end without an open session"));
        assert!(replies.contains("err invalid tenant name"));
        assert!(replies.ends_with("pong\n"));
        assert_eq!(Counters::get(&state.counters.parse_errors), 3);
    }

    #[test]
    fn eof_drains_the_open_stream() {
        let state = DaemonState::new(PipelineConfig::default());
        let (_, replies) = run(
            &state,
            "hello drainy\n{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n",
        );
        assert_eq!(replies, "ok hello drainy\n", "no end reply at EOF");
        let tenant = state.tenant("drainy").unwrap();
        assert!(tenant.lock().unwrap().finished(), "drained at EOF");
        assert_eq!(Counters::get(&state.counters.sessions_closed), 1);
    }

    #[test]
    fn oversized_lines_are_discarded_not_buffered() {
        let state = DaemonState::new(PipelineConfig::default());
        let mut script = String::from("hello big\n");
        script.push_str(&"x".repeat(MAX_LINE_BYTES + 4096));
        script.push('\n');
        script.push_str("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\nend\n");
        let (stats, replies) = run(&state, &script);
        assert!(
            replies.contains(&format!("err line exceeds {MAX_LINE_BYTES} bytes")),
            "{replies}"
        );
        assert_eq!(stats.records, 1, "the session survives the flood");
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn invalid_utf8_is_contained_to_the_line() {
        let state = DaemonState::new(PipelineConfig::default());
        let mut bytes = b"hello u8\n".to_vec();
        bytes.extend_from_slice(b"\xff\xfe garbage\n");
        bytes.extend_from_slice(b"{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\nend\n");
        let mut script = Script {
            input: io::Cursor::new(bytes),
            output: Vec::new(),
        };
        let stats = run_session(&mut script, &state).unwrap();
        let replies = String::from_utf8(script.output).unwrap();
        assert!(replies.contains("err line is not valid UTF-8"), "{replies}");
        assert_eq!(stats.records, 1, "session continues past the bad line");
    }

    #[test]
    fn hello_resume_acks_the_durable_seq_and_keeps_state() {
        let state = DaemonState::new(PipelineConfig::default());
        let replies = run_replies(
            &state,
            "hello r\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n",
        );
        assert_eq!(replies, "ok hello r\n");
        // EOF drained (finalized) the stream; a resume re-attaches and
        // reports how many data lines the daemon durably consumed.
        let replies = run_replies(&state, "hello r jsonl resume 2\nend\n");
        assert!(replies.starts_with("ok hello r seq 2\n"), "{replies}");
        assert!(replies.contains("\"records\":2"), "idempotent end");
        // A format flip is refused without touching the stream.
        let replies = run_replies(&state, "hello r csv resume 2\n");
        assert!(replies.contains("err resume format"), "{replies}");
        assert_eq!(state.tenant("r").unwrap().lock().unwrap().records.len(), 2);
    }

    #[test]
    fn overload_sheds_data_and_refuses_resume_until_reset() {
        let mut state = DaemonState::new(PipelineConfig::default());
        state.max_buffered_lines = 2;
        let (stats, _) = run(
            &state,
            "hello o\n\
             {\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
             {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
             {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
             {\"t\":300,\"m\":\"rack-00.draw_w\",\"v\":103}\n",
        );
        assert_eq!(stats.records, 2, "watermark admits two lines");
        assert_eq!(Counters::get(&state.counters.lines_shed), 2);
        assert_eq!(Counters::get(&state.counters.overloaded_tenants), 1);
        {
            let tenant = state.tenant("o").unwrap();
            let guard = tenant.lock().unwrap();
            assert_eq!(guard.shed, 2);
            assert_eq!(guard.seq, 2, "shed lines do not advance the sequence");
        }
        let log = state.with_ops_log(crate::state::OpsLog::render_jsonl);
        assert_eq!(
            log.matches("\"kind\":\"overload_shed\"").count(),
            1,
            "edge-triggered: one event per crossing"
        );
        // Resume is refused while overloaded…
        let replies = run_replies(&state, "hello o jsonl resume 2\n");
        assert_eq!(replies, format!("busy retry-after {RETRY_AFTER_MS}\n"));
        // …and a fresh hello resets the stream, clearing the overload.
        let _ = run_replies(&state, "hello o\n");
        assert_eq!(Counters::get(&state.counters.overloaded_tenants), 0);
    }

    /// Read half that yields its script, then blocks forever.
    struct IdleAfterScript {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for IdleAfterScript {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.input.read(buf)? {
                0 => Err(io::ErrorKind::WouldBlock.into()),
                n => Ok(n),
            }
        }
    }

    impl Write for IdleAfterScript {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn idle_sessions_are_reaped_and_drained() {
        let mut state = DaemonState::new(PipelineConfig::default());
        state.idle_timeout = Some(std::time::Duration::ZERO);
        let mut script = IdleAfterScript {
            input: io::Cursor::new(
                b"hello idle\n{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n".to_vec(),
            ),
            output: Vec::new(),
        };
        let stats = run_session(&mut script, &state).unwrap();
        assert_eq!(stats.records, 1);
        assert_eq!(Counters::get(&state.counters.sessions_reaped), 1);
        assert_eq!(Counters::get(&state.counters.active_sessions), 0);
        let tenant = state.tenant("idle").unwrap();
        assert!(tenant.lock().unwrap().finished(), "reap drains the stream");
        let log = state.with_ops_log(crate::state::OpsLog::render_jsonl);
        assert!(
            log.contains("\"kind\":\"session_idle_reap\",\"tenant\":\"idle\""),
            "{log}"
        );
    }

    #[test]
    fn tick_boundaries_write_checkpoints() {
        let dir =
            std::env::temp_dir().join(format!("padsimd-session-test-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut state = DaemonState::new(PipelineConfig::default());
        state.state_dir = Some(dir.clone());
        // 25 records at 100ms: two full 1s ticks close mid-stream.
        let mut script = String::from("hello ck\n");
        for t in 0..25 {
            script.push_str(&format!(
                "{{\"t\":{},\"m\":\"rack-00.draw_w\",\"v\":{}}}\n",
                t * 100,
                100 + t % 5
            ));
        }
        script.push_str("end\n");
        let _ = run(&state, &script);
        assert_eq!(
            Counters::get(&state.counters.checkpoints_written),
            1,
            "the first tick writes the base exactly once"
        );
        assert!(
            Counters::get(&state.counters.checkpoint_frames) >= 2,
            "later tick crossings plus the end-of-stream frame append to the journal"
        );
        let doc = std::fs::read_to_string(dir.join("ck.ckpt")).unwrap();
        assert!(doc.starts_with("{\"version\":1,\"tenant\":\"ck\""), "{doc}");
        let journal = std::fs::read_to_string(dir.join("ck.ckpt.log")).unwrap();
        assert!(journal.contains("\"finished\":1"), "end frame: {journal}");
        assert!(
            journal.contains("ok frame 0\n"),
            "commit markers: {journal}"
        );

        // Base plus journal restore to the full finished stream, and
        // boot compaction folds them into one fresh base.
        let mut reborn = DaemonState::new(PipelineConfig::default());
        reborn.state_dir = Some(dir.clone());
        assert_eq!(reborn.load_checkpoints().unwrap(), 1);
        let tenant = reborn.tenant("ck").unwrap();
        let guard = tenant.lock().unwrap();
        assert_eq!(guard.seq, 25);
        assert!(guard.finished(), "the journal's finished frame re-ran end");
        drop(guard);
        let doc = std::fs::read_to_string(dir.join("ck.ckpt")).unwrap();
        assert!(doc.contains("\"finished\":1"), "compacted base: {doc}");
        assert!(
            !dir.join("ck.ckpt.log").exists(),
            "compaction drops the journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_control_sets_the_flag_and_acks() {
        let state = DaemonState::new(PipelineConfig::default());
        let (stats, replies) = run(&state, "hello s\nshutdown\nping\n");
        assert!(stats.shutdown);
        assert!(replies.ends_with("ok shutdown\n"), "ping never processed");
        assert!(state.shutting_down());
        let tenant = state.tenant("s").unwrap();
        assert!(tenant.lock().unwrap().finished(), "open stream drained");
    }
}
