//! Shared daemon state: the tenant registry, self-metrics counters,
//! wall-clock ops histograms, the bounded ops log, per-tenant alert
//! monitors, and the crash-recovery checkpoint codec.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use pad::pipeline::{
    self, default_alert_rules, PipelineConfig, ReplayPipeline, ReplaySummary, StreamMonitor,
};
use pad::policy::SecurityLevel;
use simkit::alert::{AlertEvent, AlertRule};
use simkit::jsonio::{JsonParser, ObjFields};
use simkit::telemetry::{
    parse_line, render_parsed, Format, MetricId, MetricRegistry, ParsedRecord,
};
use simkit::trace::{parse_span_line, render_parsed_spans, ParsedSpan};

/// Monotonic daemon self-metrics, exported on `/metrics` as
/// `padsimd_*` counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Sessions opened (`hello` accepted).
    pub sessions_opened: AtomicU64,
    /// Sessions closed (`end`, EOF, or drain).
    pub sessions_closed: AtomicU64,
    /// Stream connections currently inside their read loop (a gauge:
    /// bumped on connect, dropped on return).
    pub active_sessions: AtomicU64,
    /// Telemetry records accepted across all tenants.
    pub records: AtomicU64,
    /// Span lines accepted across all tenants.
    pub spans: AtomicU64,
    /// Malformed wire lines (codec or protocol) that were skipped.
    pub parse_errors: AtomicU64,
    /// HTTP requests served.
    pub http_requests: AtomicU64,
    /// HTTP responses with a 2xx status.
    pub http_2xx: AtomicU64,
    /// HTTP responses with a 4xx status.
    pub http_4xx: AtomicU64,
    /// HTTP responses with a 5xx status.
    pub http_5xx: AtomicU64,
    /// Tenant base checkpoints written to the state directory (full
    /// document rewrites: first tick of a stream, boot compaction).
    pub checkpoints_written: AtomicU64,
    /// Delta frames appended to tenant checkpoint journals (the
    /// per-tick durability path; see
    /// [`DaemonState::append_checkpoint_frame`]).
    pub checkpoint_frames: AtomicU64,
    /// Data lines shed by per-tenant backpressure (never ingested and
    /// never acknowledged via the resume sequence, so a resuming client
    /// retransmits them).
    pub lines_shed: AtomicU64,
    /// Sessions closed by the idle-reap timeout.
    pub sessions_reaped: AtomicU64,
    /// Tenants currently over their buffered-line high watermark (a
    /// gauge: bumped on crossing, dropped when a fresh `hello` resets
    /// the stream).
    pub overloaded_tenants: AtomicU64,
}

impl Counters {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one from a gauge-style counter.
    pub fn drop_one(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Daemon-wide wall-clock histograms: ingest poll latency/batch sizes
/// and HTTP request latency. These are `/metrics`-only observability —
/// wall times never feed the alert engine, whose documents must stay a
/// pure function of the recorded stream.
#[derive(Debug)]
pub struct OpsMetrics {
    reg: MetricRegistry,
    ingest_latency: MetricId,
    poll_lines: MetricId,
    poll_records: MetricId,
    http_seconds: MetricId,
}

impl OpsMetrics {
    fn new() -> Self {
        let mut reg = MetricRegistry::new();
        let ingest_latency = reg.register_histogram("ingest.latency_seconds", 0.0, 0.25, 50);
        let poll_lines = reg.register_histogram("ingest.poll_lines", 0.0, 50_000.0, 50);
        let poll_records = reg.register_histogram("ingest.poll_records", 0.0, 50_000.0, 50);
        let http_seconds = reg.register_histogram("http.request_seconds", 0.0, 0.25, 50);
        OpsMetrics {
            reg,
            ingest_latency,
            poll_lines,
            poll_records,
            http_seconds,
        }
    }

    /// Records one wire poll: wall seconds spent inside the read loop
    /// between blocking waits, lines handled, records accepted.
    pub fn observe_poll(&mut self, seconds: f64, lines: u64, records: u64) {
        self.reg.observe(self.ingest_latency, seconds);
        self.reg.observe(self.poll_lines, lines as f64);
        self.reg.observe(self.poll_records, records as f64);
    }

    /// Records one HTTP exchange's wall seconds.
    pub fn observe_http(&mut self, seconds: f64) {
        self.reg.observe(self.http_seconds, seconds);
    }

    /// The registry, for `/metrics` rendering under `padsimd_`.
    pub fn registry(&self) -> &MetricRegistry {
        &self.reg
    }
}

/// One structured ops-log entry. No wall-clock timestamp on purpose:
/// the `seq` orders entries, and keeping timestamps out keeps replayed
/// logs diffable.
#[derive(Debug, Clone)]
pub struct OpsEntry {
    /// Monotonic sequence number (survives ring eviction).
    pub seq: u64,
    /// Event kind (`session_open`, `alert_fired`, `ready`, ...).
    pub kind: &'static str,
    /// Tenant the event concerns, empty for daemon-wide events.
    pub tenant: String,
    /// Free-form detail over the wire-safe charset (no escaping).
    pub detail: String,
}

/// Bounded ring of [`OpsEntry`]s: keeps the newest `cap` entries and
/// counts evictions, so `/logs` is always a cheap, bounded read.
#[derive(Debug)]
pub struct OpsLog {
    entries: VecDeque<OpsEntry>,
    next_seq: u64,
    dropped: u64,
    cap: usize,
}

/// Entries the ops-log ring retains before evicting the oldest.
pub const OPS_LOG_CAP: usize = 1024;

impl OpsLog {
    fn new(cap: usize) -> Self {
        OpsLog {
            entries: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            cap,
        }
    }

    fn push(&mut self, kind: &'static str, tenant: &str, detail: &str) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        // The entries render as JSON without escaping, so any byte that
        // would need an escape is squashed to keep `/logs` well-formed
        // whatever an error message drags in.
        let detail = detail
            .chars()
            .map(|c| match c {
                '"' | '\\' => '\'',
                c if c.is_control() => ' ',
                c => c,
            })
            .collect();
        self.entries.push_back(OpsEntry {
            seq: self.next_seq,
            kind,
            tenant: tenant.to_string(),
            detail,
        });
        self.next_seq += 1;
    }

    /// Oldest-retained-first JSONL, one entry per line (`/logs`).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"seq\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"detail\":\"{}\"}}\n",
                e.seq, e.kind, e.tenant, e.detail
            ));
        }
        out
    }

    /// The same entries as one JSON array (for `daemon_report.json`).
    pub fn render_json_array(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"detail\":\"{}\"}}",
                e.seq, e.kind, e.tenant, e.detail
            ));
        }
        out.push(']');
        out
    }

    /// Entries evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been logged (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One tenant's accumulated stream state.
///
/// The detector/policy pipeline is created lazily at the first tick
/// boundary, once the first tick's records have named every rack —
/// mirroring the offline CLI's whole-file rack inference (every rack
/// emits its draw gauge every tick, so the first tick already names
/// them all).
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// Wire format of the tenant's data lines.
    pub format: Format,
    /// Every accepted telemetry record, in arrival order.
    pub records: Vec<ParsedRecord>,
    /// Every accepted span line, in arrival order.
    pub spans: Vec<ParsedSpan>,
    /// Records of the still-open first tick, before racks are known.
    pending: Vec<ParsedRecord>,
    /// The live pipeline, once racks are known.
    pipeline: Option<ReplayPipeline>,
    /// The finished summary, once the stream has ended.
    pub summary: Option<ReplaySummary>,
    /// Malformed lines charged to this tenant.
    pub parse_errors: u64,
    /// Sessions this tenant has opened.
    pub sessions: u64,
    /// Stream sequence number: data lines consumed since the stream
    /// opened (records, spans, and malformed lines alike — the resume
    /// protocol's unit is the client's data line). Reset with the
    /// stream; shed lines do NOT advance it.
    pub seq: u64,
    /// Data lines shed by backpressure, lifetime tally (like
    /// [`parse_errors`](Tenant::parse_errors), survives stream resets).
    pub shed: u64,
    /// Whether the tenant is currently over its buffered-line high
    /// watermark (edge-tracked so the overloaded-tenants gauge and the
    /// ops log see each crossing once).
    pub overloaded: bool,
    /// Fencing token: bumped every time a session attaches (hello or
    /// resume). A session that attached under an older generation is
    /// stale — its socket may still be draining buffered lines after a
    /// cut — and must not commit anything, or a resumed client would
    /// race it and duplicate (or mis-sequence) records. Monotonic for
    /// the tenant's lifetime; never checkpointed (restored tenants
    /// start over, sessions re-read it at attach).
    pub generation: u64,
    config: PipelineConfig,
    /// Self-observability sidecar (absent in `bare` mode): alert
    /// engine plus ingest-health metrics, driven on sim time so its
    /// documents match the offline replay byte-for-byte.
    monitor: Option<StreamMonitor>,
    /// The monitor's state just before [`finalize`](Tenant::finalize)
    /// ran its end-of-stream evaluation — what
    /// [`reopen`](Tenant::reopen) rewinds to when a connection drop
    /// finalized a stream the client is still sending.
    pre_finish_monitor: Option<String>,
    /// Buffered-line count at the last durable checkpoint write
    /// (`None` until the stream is first checkpointed, and again after
    /// a [`reset`](Tenant::reset)). Drives the amortized cadence in
    /// [`checkpoint_due`](Tenant::checkpoint_due); runtime-only, never
    /// serialized.
    checkpointed_lines: Option<usize>,
    /// Incrementally rendered canonical-JSONL records section of the
    /// checkpoint document, paired with the record count it covers.
    /// Records are append-only while a stream is open, so each is
    /// rendered once per stream and a checkpoint write costs the delta
    /// since the last write plus one buffer copy — not a full
    /// re-serialization of the stream.
    ckpt_records: (String, usize),
    /// The same incremental cache for the spans section.
    ckpt_spans: (String, usize),
    /// Durable high-water mark into `ckpt_records` as `(bytes,
    /// records)`: everything before it is already on disk, in the base
    /// checkpoint or an appended journal frame. The next frame appends
    /// only the suffix.
    journal_records: (usize, usize),
    /// The same durable mark for the spans cache.
    journal_spans: (usize, usize),
    /// Next journal frame number; each frame's commit marker repeats
    /// it so a torn append is detectable.
    journal_frame: u64,
    /// Lineage tag for journal frames: the stream sequence the current
    /// base checkpoint covers. Frames repeat it, so a restore can
    /// discard frames left behind by an interrupted compaction of an
    /// earlier base (or an earlier stream) exactly.
    journal_base_seq: u64,
    /// Open append handle to the journal, held across ticks: reopening
    /// the file per frame costs ~10x the append itself. Dropped when a
    /// base write retires the journal.
    journal_file: Option<std::fs::File>,
}

impl Tenant {
    /// Creates an empty tenant stream.
    pub fn new(name: &str, format: Format, config: PipelineConfig) -> Self {
        Tenant {
            name: name.to_string(),
            format,
            records: Vec::new(),
            spans: Vec::new(),
            pending: Vec::new(),
            pipeline: None,
            summary: None,
            parse_errors: 0,
            sessions: 0,
            seq: 0,
            shed: 0,
            overloaded: false,
            generation: 0,
            config,
            monitor: None,
            pre_finish_monitor: None,
            checkpointed_lines: None,
            ckpt_records: (String::new(), 0),
            ckpt_spans: (String::new(), 0),
            journal_records: (0, 0),
            journal_spans: (0, 0),
            journal_frame: 0,
            journal_base_seq: 0,
            journal_file: None,
        }
    }

    /// Attaches a self-observability monitor running `rules`.
    pub fn attach_monitor(&mut self, rules: Vec<AlertRule>) {
        self.monitor = Some(StreamMonitor::new(rules));
    }

    /// The attached monitor, if self-observability is on.
    pub fn monitor(&self) -> Option<&StreamMonitor> {
        self.monitor.as_ref()
    }

    /// Resets the stream for a fresh session (`hello` on an existing
    /// tenant), keeping the session and error tallies.
    pub fn reset(&mut self, format: Format) {
        self.format = format;
        self.records.clear();
        self.spans.clear();
        self.pending.clear();
        self.pipeline = None;
        self.summary = None;
        self.seq = 0;
        self.checkpointed_lines = None;
        self.ckpt_records = (String::new(), 0);
        self.ckpt_spans = (String::new(), 0);
        self.journal_records = (0, 0);
        self.journal_spans = (0, 0);
        self.journal_frame = 0;
        self.journal_base_seq = 0;
        self.journal_file = None;
        if let Some(mon) = &mut self.monitor {
            mon.reset();
        }
    }

    /// Buffered data lines: what the backpressure watermark bounds.
    pub fn buffered_lines(&self) -> usize {
        self.records.len() + self.spans.len()
    }

    /// Feeds one record in arrival order, creating the pipeline at the
    /// first tick boundary. Returns `true` when the record closed a
    /// detector tick — the checkpoint cadence.
    pub fn ingest_record(&mut self, r: ParsedRecord) -> bool {
        let ticks_before = self.pipeline.as_ref().map_or(0, ReplayPipeline::tick_count);
        self.feed_pipeline(&r);
        if self.monitor.is_some() {
            let (level, fused, firings) = (self.level(), self.fused_fired(), self.firing_count());
            if let Some(mon) = &mut self.monitor {
                mon.observe_record(&r, level, fused, firings);
            }
        }
        self.records.push(r);
        self.seq += 1;
        self.pipeline.as_ref().map_or(0, ReplayPipeline::tick_count) != ticks_before
    }

    /// Cumulative detector rising edges: live from the pipeline, frozen
    /// from the summary after the stream ends, zero before either.
    pub fn firing_count(&self) -> usize {
        match (&self.summary, &self.pipeline) {
            (Some(summary), _) => summary.firing_count,
            (None, Some(pipe)) => pipe.stack().bank().firings().len(),
            (None, None) => 0,
        }
    }

    /// The detector-side half of [`ingest_record`](Tenant::ingest_record):
    /// routes one record into the pipeline, creating it at the first
    /// tick boundary. Also the replay kernel [`reopen`](Tenant::reopen)
    /// uses to rebuild pipeline state from the record log.
    fn feed_pipeline(&mut self, r: &ParsedRecord) {
        match &mut self.pipeline {
            Some(pipe) => pipe.ingest(r),
            None => {
                let first_tick_closed = self
                    .pending
                    .first()
                    .is_some_and(|first| first.time_ms != r.time_ms);
                if first_tick_closed {
                    let mut pipe = self.make_pipeline();
                    pipe.ingest(r);
                    self.pipeline = Some(pipe);
                } else {
                    self.pending.push(r.clone());
                }
            }
        }
    }

    /// Builds the pipeline from the buffered first tick and drains the
    /// buffer into it.
    fn make_pipeline(&mut self) -> ReplayPipeline {
        let racks = pipeline::try_infer_racks(&self.pending).unwrap_or(1);
        let mut pipe = ReplayPipeline::new(racks, self.config);
        for r in self.pending.drain(..) {
            pipe.ingest(&r);
        }
        pipe
    }

    /// Feeds one span in arrival order.
    pub fn ingest_span(&mut self, s: ParsedSpan) {
        self.spans.push(s);
        self.seq += 1;
    }

    /// [`ingest_record`](Tenant::ingest_record) plus checkpoint
    /// capture: the verbatim wire line lands in the checkpoint cache,
    /// so durability never re-renders what the wire already spelled
    /// out (re-parsing the same line yields the identical record). The
    /// capture only applies while the cache is caught up — it always
    /// is on the live path; a caller that bypassed it falls back to
    /// [`refresh_ckpt_caches`](Tenant::refresh_ckpt_caches) rendering.
    pub fn ingest_record_wire(&mut self, line: &str, r: ParsedRecord) -> bool {
        let caught_up = self.ckpt_records.1 == self.records.len();
        let ticked = self.ingest_record(r);
        if caught_up {
            self.ckpt_records.0.push_str(line);
            self.ckpt_records.0.push('\n');
            self.ckpt_records.1 = self.records.len();
        }
        ticked
    }

    /// [`ingest_span`](Tenant::ingest_span) plus checkpoint capture of
    /// the verbatim wire line; see
    /// [`ingest_record_wire`](Tenant::ingest_record_wire).
    pub fn ingest_span_wire(&mut self, line: &str, s: ParsedSpan) {
        let caught_up = self.ckpt_spans.1 == self.spans.len();
        self.ingest_span(s);
        if caught_up {
            self.ckpt_spans.0.push_str(line);
            self.ckpt_spans.0.push('\n');
            self.ckpt_spans.1 = self.spans.len();
        }
    }

    /// Ends the stream: closes the final tick and caches the summary.
    /// Idempotent — a second `end` returns the same summary.
    pub fn finalize(&mut self) -> &ReplaySummary {
        if self.summary.is_none() {
            let pipe = match self.pipeline.take() {
                Some(pipe) => pipe,
                // The whole stream fit in one tick (or was empty).
                None => self.make_pipeline(),
            };
            let summary = pipe.finalize();
            if let Some(mon) = &mut self.monitor {
                // Keep the pre-finish state: a dropped connection
                // finalizes a stream its client is still sending, and a
                // later resume must rewind past this evaluation.
                self.pre_finish_monitor = Some(mon.snapshot_json());
                mon.finish(summary.final_level, false, summary.firing_count);
            }
            self.summary = Some(summary);
        }
        self.summary.as_ref().expect("summary just cached")
    }

    /// Rewinds a finalized stream back to its open state so a resuming
    /// client can keep sending — the recovery path when a dropped
    /// connection EOF-drained (and so finalized) a stream mid-send.
    ///
    /// The pipeline is rebuilt deterministically by replaying the
    /// record log (byte-identical to never having finalized), and the
    /// monitor rewinds to its pre-finish snapshot. No-op when the
    /// stream is open. (A monitored stream finished without a
    /// pre-finish snapshot cannot be rewound and stays finished —
    /// defensive only: `finalize` always captures one, and a restored
    /// `finished` checkpoint re-runs `finalize`.)
    pub fn reopen(&mut self) {
        if self.summary.is_none() {
            return;
        }
        if self.monitor.is_some() && self.pre_finish_monitor.is_none() {
            return;
        }
        self.summary = None;
        self.pipeline = None;
        self.pending.clear();
        let records = std::mem::take(&mut self.records);
        for r in &records {
            self.feed_pipeline(r);
        }
        self.records = records;
        if let (Some(mon), Some(snap)) = (&mut self.monitor, self.pre_finish_monitor.take()) {
            let parsed = JsonParser::parse_document(&snap)
                .expect("pre-finish snapshot is self-generated JSON");
            mon.restore_snapshot(&parsed)
                .expect("pre-finish snapshot matches the monitor's rules");
        }
    }

    /// Charges one malformed line to the tenant (and its monitor). The
    /// line still advances the stream sequence: the client sent it, so a
    /// resume must not replay it.
    pub fn note_parse_error(&mut self) {
        self.parse_errors += 1;
        self.seq += 1;
        if let Some(mon) = &mut self.monitor {
            mon.observe_parse_error();
        }
    }

    /// Records one wire poll's wall timing into the monitor, if any.
    pub fn observe_poll(&mut self, seconds: f64, lines: u64, records: u64) {
        if let Some(mon) = &mut self.monitor {
            mon.observe_poll(seconds, lines, records);
        }
    }

    /// Drains alert transitions pending since the last drain (empty
    /// without a monitor).
    pub fn take_transitions(&mut self) -> Vec<AlertEvent> {
        self.monitor
            .as_mut()
            .map(StreamMonitor::take_transitions)
            .unwrap_or_default()
    }

    /// This stream's `/alerts` JSON document, if self-observability is
    /// on — byte-identical to `padsim inspect --alerts` over the same
    /// records.
    pub fn alerts_json(&self) -> Option<String> {
        self.monitor.as_ref().map(StreamMonitor::alerts_json)
    }

    /// `true` once [`finalize`](Tenant::finalize) has run.
    pub fn finished(&self) -> bool {
        self.summary.is_some()
    }

    /// The current policy level: live from the pipeline while the
    /// stream is open, frozen from the summary after.
    pub fn level(&self) -> SecurityLevel {
        match (&self.summary, &self.pipeline) {
            (Some(summary), _) => summary.final_level,
            (None, Some(pipe)) => pipe.level(),
            (None, None) => SecurityLevel::Normal,
        }
    }

    /// Whether the fused detector verdict is currently firing (always
    /// `false` before the pipeline exists or after the stream ended).
    pub fn fused_fired(&self) -> bool {
        self.pipeline
            .as_ref()
            .is_some_and(|pipe| pipe.stack().fused().fired)
    }

    /// One-line status JSON for the HTTP API.
    pub fn status_json(&self) -> String {
        format!(
            "{{\"tenant\":\"{}\",\"format\":\"{}\",\"records\":{},\"spans\":{},\
             \"parse_errors\":{},\"sessions\":{},\"seq\":{},\"shed\":{},\
             \"finished\":{},\"level\":{},\
             \"level_label\":\"{}\",\"fused_fired\":{}}}\n",
            self.name,
            self.format.extension(),
            self.records.len(),
            self.spans.len(),
            self.parse_errors,
            self.sessions,
            self.seq,
            self.shed,
            self.finished(),
            self.level().number(),
            self.level().label(),
            self.fused_fired()
        )
    }

    /// The tenant's incident report, reconstructed from its spans
    /// joined with its telemetry — the same JSON document
    /// `padsim incident --json` emits for the recorded files.
    pub fn incidents_json(&self) -> String {
        pipeline::reconstruct_json(&self.spans, &self.records)
    }

    /// Serializes the tenant's full stream state as one versioned
    /// checkpoint document (see [`checkpoint_schema`]).
    ///
    /// The document is line-oriented: a JSON meta line, then the
    /// retained records and spans in canonical JSONL (the exact-inverse
    /// codecs, so they round-trip bit-exactly regardless of the wire
    /// format), then the pipeline and monitor snapshots. Checkpoints
    /// carry only *value* state — configuration is structural and is
    /// rebuilt by the restoring daemon, then validated against the
    /// snapshot.
    ///
    /// Takes `&mut self` to top up the incremental render caches: the
    /// records and spans sections only ever grow while a stream is
    /// open, so each line is rendered once per stream and repeated
    /// checkpoints pay only the delta plus a buffer copy.
    pub fn checkpoint_document(&mut self) -> String {
        use std::fmt::Write as _;
        self.refresh_ckpt_caches();
        let mut out =
            String::with_capacity(self.ckpt_records.0.len() + self.ckpt_spans.0.len() + 1024);
        let _ = write!(
            out,
            "{{\"version\":{CHECKPOINT_VERSION},\"tenant\":\"{}\",\"format\":\"{}\",\
             \"seq\":{},\"records\":{},\"spans\":{},\"parse_errors\":{},\"sessions\":{},\
             \"shed\":{},\"finished\":{}",
            self.name,
            self.format.extension(),
            self.seq,
            self.records.len(),
            self.spans.len(),
            self.parse_errors,
            self.sessions,
            self.shed,
            u8::from(self.summary.is_some()),
        );
        if let Some(pipe) = &self.pipeline {
            let _ = write!(out, ",\"racks\":{}", pipe.rack_count());
        }
        let _ = writeln!(
            out,
            ",\"has_monitor\":{}}}",
            u8::from(self.monitor.is_some())
        );
        out.push_str(&self.ckpt_records.0);
        out.push_str(&self.ckpt_spans.0);
        if let Some(pipe) = &self.pipeline {
            out.push_str(&pipe.snapshot_json());
            out.push('\n');
        }
        if let Some(mon) = &self.monitor {
            // A finished stream checkpoints the monitor's PRE-finish
            // state: the restore re-runs the end-of-stream evaluation
            // (a pure function of it) to reproduce the finished state,
            // which keeps the rewind point a post-crash resume needs —
            // an EOF-finalized stream is not necessarily a complete
            // one.
            match (&self.summary, &self.pre_finish_monitor) {
                (Some(_), Some(snap)) => out.push_str(snap),
                _ => out.push_str(&mon.snapshot_json()),
            }
            out.push('\n');
        }
        out
    }

    /// Tops up the incremental render caches with any records and
    /// spans accepted since the last call. Each line is rendered to
    /// canonical JSONL exactly once per stream — base checkpoints copy
    /// the caches whole, journal frames append only the suffix past
    /// the durable marks.
    fn refresh_ckpt_caches(&mut self) {
        let delta = render_parsed(&self.records[self.ckpt_records.1..], Format::Jsonl);
        self.ckpt_records.0.push_str(&delta);
        self.ckpt_records.1 = self.records.len();
        let delta = render_parsed_spans(&self.spans[self.ckpt_spans.1..], Format::Jsonl);
        self.ckpt_spans.0.push_str(&delta);
        self.ckpt_spans.1 = self.spans.len();
    }

    /// Whether the next durable write must be a full base checkpoint
    /// (no base exists for this stream yet) rather than an appended
    /// journal frame.
    ///
    /// Rewriting the document at every tick makes checkpoint cost
    /// quadratic in the stream length, and on the filesystems that
    /// back a state directory a create-and-rename is two orders of
    /// magnitude more expensive than an append. So a stream writes its
    /// base exactly once — at the first tick after it opens (or
    /// resets), and again at boot when
    /// [`DaemonState::load_checkpoints`] compacts base plus journal
    /// into a fresh base — and every later tick appends a delta frame.
    /// The journal is bounded by the stream itself, which the
    /// backpressure watermark already caps.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpointed_lines.is_none()
    }

    /// Restores the stream state serialized by
    /// [`checkpoint_document`](Tenant::checkpoint_document) into this
    /// freshly constructed tenant (same name, config, and alert rules).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch: wrong
    /// tenant name, version drift, truncated sections, malformed lines,
    /// or snapshot state that does not fit the rebuilt configuration.
    pub fn restore_from_document(&mut self, text: &str) -> Result<(), String> {
        let mut lines = text.lines();
        let meta_line = lines.next().ok_or("empty checkpoint")?;
        let meta = JsonParser::parse_document(meta_line).map_err(|e| format!("meta: {e}"))?;
        let meta = meta.as_object("checkpoint meta")?;
        let version = meta.u64_field("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} (this daemon reads {CHECKPOINT_VERSION})"
            ));
        }
        let tenant = meta.str_field("tenant")?;
        if tenant != self.name {
            return Err(format!(
                "checkpoint is for tenant {tenant:?}, not {:?}",
                self.name
            ));
        }
        let format_name = meta.str_field("format")?;
        self.format = Format::from_name(format_name)
            .ok_or_else(|| format!("unknown checkpoint format {format_name:?}"))?;
        let record_count = meta.u64_field("records")?;
        let span_count = meta.u64_field("spans")?;
        self.seq = meta.u64_field("seq")?;
        self.parse_errors = meta.u64_field("parse_errors")?;
        self.sessions = meta.u64_field("sessions")?;
        self.shed = meta.u64_field("shed")?;
        let finished = meta.u64_field("finished")? == 1;
        let racks = meta.opt_u64_field("racks")?;
        let has_monitor = meta.u64_field("has_monitor")? == 1;

        // Data lines are verbatim wire lines in the tenant's own
        // format; they double as the rebuilt checkpoint cache, so a
        // later base write copies instead of re-rendering.
        self.ckpt_records = (String::new(), 0);
        self.ckpt_spans = (String::new(), 0);
        self.records = Vec::with_capacity(record_count as usize);
        for i in 0..record_count {
            let line = lines
                .next()
                .ok_or_else(|| format!("truncated after {i} of {record_count} records"))?;
            self.records
                .push(parse_line(line, i as usize + 2, self.format).map_err(|e| e.to_string())?);
            self.ckpt_records.0.push_str(line);
            self.ckpt_records.0.push('\n');
        }
        self.ckpt_records.1 = record_count as usize;
        self.spans = Vec::with_capacity(span_count as usize);
        for i in 0..span_count {
            let line = lines
                .next()
                .ok_or_else(|| format!("truncated after {i} of {span_count} spans"))?;
            self.spans.push(
                parse_span_line(line, i as usize + 2 + record_count as usize, self.format)
                    .map_err(|e| e.to_string())?,
            );
            self.ckpt_spans.0.push_str(line);
            self.ckpt_spans.0.push('\n');
        }
        self.ckpt_spans.1 = span_count as usize;

        self.pending.clear();
        self.pipeline = None;
        self.summary = None;
        if !finished {
            if let Some(racks) = racks {
                let mut pipe = ReplayPipeline::new(racks as usize, self.config);
                let snapshot_line = lines.next().ok_or("missing pipeline snapshot line")?;
                let snapshot = JsonParser::parse_document(snapshot_line)
                    .map_err(|e| format!("pipeline snapshot: {e}"))?;
                pipe.restore_snapshot(&snapshot)
                    .map_err(|e| format!("pipeline snapshot: {e}"))?;
                self.pipeline = Some(pipe);
            } else {
                // The first tick never closed: every record is still
                // pending.
                self.pending = self.records.clone();
            }
        }
        if has_monitor {
            let snapshot_line = lines.next().ok_or("missing monitor snapshot line")?;
            let mon = self
                .monitor
                .as_mut()
                .ok_or("checkpoint has monitor state but self-observability is off")?;
            let snapshot = JsonParser::parse_document(snapshot_line)
                .map_err(|e| format!("monitor snapshot: {e}"))?;
            mon.restore_snapshot(&snapshot)
                .map_err(|e| format!("monitor snapshot: {e}"))?;
        } else if self.monitor.is_some() {
            return Err("checkpoint has no monitor state but self-observability is on".to_string());
        }
        if lines.next().is_some() {
            return Err("trailing content after checkpoint".to_string());
        }
        if finished {
            // The checkpoint holds the OPEN-stream state (the monitor
            // snapshot above is the pre-finish one). Rebuild the
            // pipeline by replaying the record log, then re-run the
            // end-of-stream evaluation: summary and post-finish
            // monitor state are pure functions of the open state, and
            // `finalize` re-captures the pre-finish snapshot — so a
            // resume after restart can still rewind a stream that an
            // EOF finalized mid-send.
            let records = std::mem::take(&mut self.records);
            for r in &records {
                self.feed_pipeline(r);
            }
            self.records = records;
            self.finalize();
        }
        // The document just restored IS the durable base: later ticks
        // append journal frames instead of rewriting it.
        self.checkpointed_lines = Some(self.buffered_lines());
        self.journal_base_seq = self.seq;
        Ok(())
    }

    /// Renders one journal delta frame: a meta line carrying the
    /// absolute stream tallies, the cached canonical-JSONL data lines
    /// past the durable marks, and a commit marker that makes a torn
    /// append detectable. The marks advance only after the frame
    /// reaches the file (see
    /// [`DaemonState::append_checkpoint_frame`]).
    fn journal_frame_document(&mut self) -> String {
        use std::fmt::Write as _;
        self.refresh_ckpt_caches();
        let frame_no = self.journal_frame;
        let mut out = String::with_capacity(
            96 + (self.ckpt_records.0.len() - self.journal_records.0)
                + (self.ckpt_spans.0.len() - self.journal_spans.0),
        );
        let _ = writeln!(
            out,
            "{{\"frame\":{frame_no},\"base\":{},\"records\":{},\"spans\":{},\"seq\":{},\
             \"parse_errors\":{},\"shed\":{},\"finished\":{}}}",
            self.journal_base_seq,
            self.ckpt_records.1 - self.journal_records.1,
            self.ckpt_spans.1 - self.journal_spans.1,
            self.seq,
            self.parse_errors,
            self.shed,
            u8::from(self.summary.is_some()),
        );
        out.push_str(&self.ckpt_records.0[self.journal_records.0..]);
        out.push_str(&self.ckpt_spans.0[self.journal_spans.0..]);
        let _ = writeln!(out, "ok frame {frame_no}");
        out
    }

    /// Replays a checkpoint journal — the delta frames appended after
    /// the base document — on top of the freshly restored base state.
    /// Frames feed the normal ingest path, so the result is
    /// byte-identical to having processed the same lines live.
    ///
    /// Stale frames (sequence at or below the current one — left
    /// behind when a crash interrupted base compaction) are skipped. A
    /// torn or corrupt tail ends the replay: every frame before the
    /// last valid commit marker is applied, the rest is dropped — on a
    /// stream socket that tail is indistinguishable from a cut
    /// mid-write, and the resume protocol re-delivers it. Returns the
    /// applied frame count and the reason the replay stopped early, if
    /// it did.
    pub fn apply_journal(&mut self, text: &str) -> (u64, Option<String>) {
        let mut lines = text.lines();
        let mut applied = 0u64;
        loop {
            let Some(meta_line) = lines.next() else {
                return (applied, None);
            };
            let doc = match JsonParser::parse_document(meta_line) {
                Ok(doc) => doc,
                Err(e) => return (applied, Some(format!("frame meta: {e}"))),
            };
            let frame = (|| -> Result<_, String> {
                let meta = doc.as_object("frame meta")?;
                Ok((
                    meta.u64_field("frame")?,
                    meta.u64_field("base")?,
                    meta.u64_field("records")?,
                    meta.u64_field("spans")?,
                    meta.u64_field("seq")?,
                    meta.u64_field("parse_errors")?,
                    meta.u64_field("shed")?,
                    meta.u64_field("finished")? == 1,
                ))
            })();
            let (frame_no, base, nr, ns, seq, parse_errors, shed, finished) = match frame {
                Ok(frame) => frame,
                Err(e) => return (applied, Some(format!("frame meta: {e}"))),
            };
            let mut records = Vec::with_capacity(nr as usize);
            for _ in 0..nr {
                let Some(line) = lines.next() else {
                    return (applied, Some(format!("frame {frame_no} torn mid-records")));
                };
                match parse_line(line, 1, self.format) {
                    Ok(r) => records.push((line, r)),
                    Err(e) => return (applied, Some(format!("frame {frame_no}: {e}"))),
                }
            }
            let mut spans = Vec::with_capacity(ns as usize);
            for _ in 0..ns {
                let Some(line) = lines.next() else {
                    return (applied, Some(format!("frame {frame_no} torn mid-spans")));
                };
                match parse_span_line(line, 1, self.format) {
                    Ok(s) => spans.push((line, s)),
                    Err(e) => return (applied, Some(format!("frame {frame_no}: {e}"))),
                }
            }
            let commit = format!("ok frame {frame_no}");
            if lines.next() != Some(commit.as_str()) {
                return (
                    applied,
                    Some(format!("frame {frame_no} missing its commit marker")),
                );
            }
            if base != self.journal_base_seq {
                continue; // stale: a frame from an earlier base's lineage
            }
            if seq < self.seq || (seq == self.seq && !finished) {
                continue; // the restored state already covers it
            }
            let Some(error_delta) = parse_errors.checked_sub(self.parse_errors) else {
                return (
                    applied,
                    Some(format!("frame {frame_no} rewinds parse_errors")),
                );
            };
            if self.seq + error_delta + nr + ns != seq {
                return (
                    applied,
                    Some(format!(
                        "frame {frame_no} does not extend the restored stream"
                    )),
                );
            }
            // A dropped connection may have EOF-finalized the stream
            // before the session that wrote this frame resumed it.
            self.reopen();
            for _ in 0..error_delta {
                self.note_parse_error();
            }
            for (line, r) in records {
                self.ingest_record_wire(line, r);
            }
            for (line, s) in spans {
                self.ingest_span_wire(line, s);
            }
            self.shed = shed;
            if finished {
                self.finalize();
            }
            applied += 1;
        }
    }
}

/// Checkpoint document version this daemon writes and reads.
pub const CHECKPOINT_VERSION: u64 = 1;

/// The pinned checkpoint schema: document layout, meta fields, and the
/// snapshot field tree. CI diffs this against
/// `tests/data/checkpoint_schema.txt` so drift is a reviewed change.
pub fn checkpoint_schema() -> String {
    format!(
        "padsimd tenant checkpoint schema v{CHECKPOINT_VERSION}\n\
         \n\
         layout (line-oriented):\n  \
         1: meta JSON\n  \
         next <records>: telemetry records, verbatim wire lines in the \
         tenant's format\n  \
         next <spans>: trace spans, verbatim wire lines in the tenant's \
         format\n  \
         next 1 iff meta has racks: pipeline snapshot JSON\n  \
         next 1 iff has_monitor=1: monitor snapshot JSON (the PRE-finish \
         state when finished=1; restore re-runs the end-of-stream evaluation)\n\
         \n\
         meta fields:\n  \
         version tenant format seq records spans parse_errors sessions shed \
         finished [racks] has_monitor\n\
         \n\
         pipeline snapshot fields:\n  \
         stack[bank[min_votes subs[label last_score last_fired fires [first_fire] \
         detector[family state]] firings[t label score]] fused_was_fired \
         [last_suspected] [last_confirmed]]\n  \
         policy[level transitions residency] [open_tick] records samples_fed \
         events ticks fired_ticks escalations[t from to]\n\
         \n\
         monitor snapshot fields:\n  \
         registry[metrics[name kind value|stats|histogram]]\n  \
         engine[rules runtimes[state [since] [value] [last_sample] [last_beat] gaps] \
         events[t rule fired value] events_dropped fresh] [open_tick] last_firings\n\
         \n\
         journal (<tenant>.ckpt.log, append-only deltas over the base):\n  \
         frame = meta line, then <records> record lines and <spans> span \
         lines (verbatim wire lines), then commit marker `ok frame <n>`\n  \
         frame meta fields: frame base records spans seq parse_errors shed \
         finished\n  \
         base repeats the seq the base document covers; frames from another \
         lineage (an interrupted compaction's leftovers) are skipped\n  \
         seq is absolute after the frame; replay stops at the last intact \
         commit marker, a torn tail is discarded (resume re-delivers)\n  \
         boot compaction: restore folds base+journal into a fresh base and \
         removes the journal before serving\n"
    )
}

/// Everything the listener, session, and HTTP threads share.
#[derive(Debug)]
pub struct DaemonState {
    /// Self-metrics.
    pub counters: Counters,
    /// Set by a `shutdown` control line; every loop polls it.
    pub shutdown: AtomicBool,
    /// Set once the listeners are bound and serving; cleared on drain.
    /// `/readyz` is this AND not shutting down — `/healthz` stays pure
    /// liveness.
    ready: AtomicBool,
    /// Whether self-observability (monitors, ops histograms) is on.
    /// Off only for the bench's bare-ingest baseline.
    pub self_obs: bool,
    /// Pipeline knobs applied to every tenant.
    pub config: PipelineConfig,
    /// Wall-clock ops histograms (`/metrics` only).
    pub ops: Mutex<OpsMetrics>,
    /// Directory for per-tenant crash-recovery checkpoints; `None`
    /// disables checkpointing.
    pub state_dir: Option<PathBuf>,
    /// Per-tenant backpressure high watermark: once a tenant holds this
    /// many buffered data lines, further lines are shed (accounted,
    /// never ingested) and new `hello`s are answered `busy`.
    pub max_buffered_lines: usize,
    /// Close a session that has read nothing (no data, no `ping`) for
    /// this long; `None` lets idle sessions linger forever.
    pub idle_timeout: Option<Duration>,
    alert_rules: Vec<AlertRule>,
    ops_log: Mutex<OpsLog>,
    tenants: Mutex<BTreeMap<String, Arc<Mutex<Tenant>>>>,
}

/// Default per-tenant buffered-line high watermark.
pub const MAX_BUFFERED_LINES_DEFAULT: usize = 1 << 20;

impl DaemonState {
    /// Creates the shared state with self-observability on and the
    /// default alert rules.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_rules(config, default_alert_rules(), true)
    }

    /// Creates state with no monitors and no ops instrumentation — the
    /// bench baseline that measures what self-observability costs.
    pub fn bare(config: PipelineConfig) -> Self {
        Self::with_rules(config, Vec::new(), false)
    }

    /// Creates the shared state with explicit alert rules.
    pub fn with_rules(config: PipelineConfig, alert_rules: Vec<AlertRule>, self_obs: bool) -> Self {
        DaemonState {
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            self_obs,
            config,
            ops: Mutex::new(OpsMetrics::new()),
            state_dir: None,
            max_buffered_lines: MAX_BUFFERED_LINES_DEFAULT,
            idle_timeout: None,
            alert_rules,
            ops_log: Mutex::new(OpsLog::new(OPS_LOG_CAP)),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// `true` once a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Marks the daemon ready (listeners bound) or draining.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::SeqCst);
    }

    /// Ready to accept work: listeners bound and not draining.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst) && !self.shutting_down()
    }

    /// The alert rules every tenant monitor runs.
    pub fn alert_rules(&self) -> &[AlertRule] {
        &self.alert_rules
    }

    /// Appends one entry to the bounded ops log.
    pub fn log_event(&self, kind: &'static str, tenant: &str, detail: &str) {
        self.ops_log
            .lock()
            .expect("ops log lock")
            .push(kind, tenant, detail);
    }

    /// Runs `f` over the ops log under its lock.
    pub fn with_ops_log<T>(&self, f: impl FnOnce(&OpsLog) -> T) -> T {
        f(&self.ops_log.lock().expect("ops log lock"))
    }

    /// Opens (or resets) a tenant stream and returns its handle.
    pub fn open_tenant(&self, name: &str, format: Format) -> (Arc<Mutex<Tenant>>, u64) {
        let mut tenants = self.lock_tenants();
        let tenant = tenants
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut tenant = Tenant::new(name, format, self.config);
                if self.self_obs {
                    tenant.attach_monitor(self.alert_rules.clone());
                }
                Arc::new(Mutex::new(tenant))
            })
            .clone();
        drop(tenants);
        let mut guard = tenant.lock().expect("tenant lock");
        guard.reset(format);
        guard.sessions += 1;
        guard.generation += 1;
        let generation = guard.generation;
        if guard.overloaded {
            // A fresh stream empties the buffers, so the watermark
            // crossing ends here.
            guard.overloaded = false;
            Counters::drop_one(&self.counters.overloaded_tenants);
        }
        drop(guard);
        Counters::bump(&self.counters.sessions_opened);
        self.log_event("session_open", name, "");
        (tenant, generation)
    }

    /// Opens a tenant stream for a resuming client *without* resetting
    /// it, returning the handle, the stream sequence number already
    /// consumed — the `ok hello <tenant> seq <n>` ack — and the new
    /// fencing generation. A tenant the daemon has never seen resumes
    /// from zero.
    ///
    /// # Errors
    ///
    /// Returns a message when the announced wire format contradicts a
    /// non-empty existing stream.
    pub fn resume_tenant(
        &self,
        name: &str,
        format: Format,
    ) -> Result<(Arc<Mutex<Tenant>>, u64, u64), String> {
        let mut tenants = self.lock_tenants();
        let tenant = tenants
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut tenant = Tenant::new(name, format, self.config);
                if self.self_obs {
                    tenant.attach_monitor(self.alert_rules.clone());
                }
                Arc::new(Mutex::new(tenant))
            })
            .clone();
        drop(tenants);
        let mut guard = tenant.lock().expect("tenant lock");
        if guard.buffered_lines() == 0 && guard.seq == 0 {
            guard.format = format;
        } else if guard.format != format {
            return Err(format!(
                "resume format {} does not match the open stream's {}",
                format.extension(),
                guard.format.extension()
            ));
        }
        // A connection drop may have EOF-drained (finalized) the stream
        // mid-send; rewind it so the resuming client can keep going.
        guard.reopen();
        guard.sessions += 1;
        guard.generation += 1;
        let generation = guard.generation;
        let seq = guard.seq;
        drop(guard);
        Counters::bump(&self.counters.sessions_opened);
        self.log_event("session_resume", name, &format!("seq={seq}"));
        Ok((tenant, seq, generation))
    }

    /// The base checkpoint file path for `tenant`, if checkpointing is
    /// on.
    pub fn checkpoint_path(&self, tenant: &str) -> Option<PathBuf> {
        self.state_dir
            .as_ref()
            .map(|dir| dir.join(format!("{tenant}.ckpt")))
    }

    /// The checkpoint journal path for `tenant`, if checkpointing is
    /// on. The journal holds the delta frames appended since the base
    /// document was written (see
    /// [`append_checkpoint_frame`](DaemonState::append_checkpoint_frame)).
    pub fn journal_path(&self, tenant: &str) -> Option<PathBuf> {
        self.state_dir
            .as_ref()
            .map(|dir| dir.join(format!("{tenant}.ckpt.log")))
    }

    /// Writes `tenant`'s base checkpoint durably (write-to-temp then
    /// rename, so a crash mid-write leaves the previous base intact)
    /// and drops the journal, whose frames the new base now covers — a
    /// stale frame would only be skipped at restore anyway. A no-op
    /// without a state directory.
    ///
    /// # Errors
    ///
    /// Returns the first filesystem error. The durable marks only
    /// advance on success, so a failed write is simply retried at the
    /// next tick boundary.
    pub fn write_checkpoint(&self, tenant: &mut Tenant) -> std::io::Result<()> {
        let Some(path) = self.checkpoint_path(&tenant.name) else {
            return Ok(());
        };
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, tenant.checkpoint_document())?;
        std::fs::rename(&tmp, &path)?;
        tenant.checkpointed_lines = Some(tenant.buffered_lines());
        tenant.journal_records = (tenant.ckpt_records.0.len(), tenant.ckpt_records.1);
        tenant.journal_spans = (tenant.ckpt_spans.0.len(), tenant.ckpt_spans.1);
        tenant.journal_frame = 0;
        tenant.journal_base_seq = tenant.seq;
        // Drop the open handle before unlinking: a later frame must
        // land in a fresh file, not the unlinked inode.
        tenant.journal_file = None;
        match std::fs::remove_file(self.journal_path(&tenant.name).expect("state dir is set")) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e),
            _ => {}
        }
        Counters::bump(&self.counters.checkpoints_written);
        Ok(())
    }

    /// Appends one delta frame — the data lines accepted since the
    /// last durable point plus the updated stream tallies — to
    /// `tenant`'s checkpoint journal. This is the per-tick durability
    /// path: an append costs microseconds where the base's
    /// create-and-rename costs hundreds, so every tick boundary (and
    /// the stream close) can afford one, keeping the crash rewind to
    /// at most a tick. A no-op without a state directory.
    ///
    /// # Errors
    ///
    /// Returns the first filesystem error. The durable marks only
    /// advance on success, so a failed append folds its delta into the
    /// next frame.
    pub fn append_checkpoint_frame(&self, tenant: &mut Tenant) -> std::io::Result<()> {
        use std::io::Write as _;
        let Some(path) = self.journal_path(&tenant.name) else {
            return Ok(());
        };
        let frame = tenant.journal_frame_document();
        if tenant.journal_file.is_none() {
            tenant.journal_file = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?,
            );
        }
        let file = tenant.journal_file.as_mut().expect("just opened");
        file.write_all(frame.as_bytes())?;
        tenant.journal_records = (tenant.ckpt_records.0.len(), tenant.ckpt_records.1);
        tenant.journal_spans = (tenant.ckpt_spans.0.len(), tenant.ckpt_spans.1);
        tenant.journal_frame += 1;
        Counters::bump(&self.counters.checkpoint_frames);
        Ok(())
    }

    /// Restores every `*.ckpt` in the state directory into the tenant
    /// registry (startup recovery). A corrupt or mismatched checkpoint
    /// is skipped with a `checkpoint_error` ops-log entry rather than
    /// failing the boot; each restored tenant logs `checkpoint_restore`
    /// with its resume sequence. Returns the restored-tenant count.
    ///
    /// # Errors
    ///
    /// Returns the directory-scan error, if any (a missing directory is
    /// treated as empty).
    pub fn load_checkpoints(&self) -> std::io::Result<usize> {
        let Some(dir) = &self.state_dir else {
            return Ok(0);
        };
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "ckpt"))
            .collect();
        paths.sort();
        let mut restored = 0;
        for path in paths {
            let name = match path.file_stem().and_then(|s| s.to_str()) {
                Some(name) if crate::proto::valid_tenant(name) => name.to_string(),
                _ => continue,
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    self.log_event("checkpoint_error", &name, &format!("read: {e}"));
                    continue;
                }
            };
            let mut tenant = Tenant::new(&name, Format::Jsonl, self.config);
            if self.self_obs {
                tenant.attach_monitor(self.alert_rules.clone());
            }
            match tenant.restore_from_document(&text) {
                Ok(()) => {
                    let journal = self.journal_path(&name).expect("state dir is set");
                    let mut frames = 0;
                    if let Ok(journal_text) = std::fs::read_to_string(&journal) {
                        let (applied, stopped) = tenant.apply_journal(&journal_text);
                        frames = applied;
                        if let Some(reason) = stopped {
                            self.log_event(
                                "checkpoint_error",
                                &name,
                                &format!("journal: {reason}"),
                            );
                        }
                    }
                    // Compact base plus journal into one fresh base: a
                    // torn journal tail must not sit under the frames a
                    // restarted daemon appends after it.
                    if let Err(e) = self.write_checkpoint(&mut tenant) {
                        self.log_event("checkpoint_error", &name, &format!("compact: {e}"));
                    }
                    let seq = tenant.seq;
                    self.lock_tenants()
                        .insert(name.clone(), Arc::new(Mutex::new(tenant)));
                    self.log_event(
                        "checkpoint_restore",
                        &name,
                        &format!("seq={seq} frames={frames}"),
                    );
                    restored += 1;
                }
                Err(e) => self.log_event("checkpoint_error", &name, &e),
            }
        }
        Ok(restored)
    }

    /// Looks up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.lock_tenants().get(name).cloned()
    }

    /// Snapshot of every tenant handle, in name order.
    pub fn tenants(&self) -> Vec<(String, Arc<Mutex<Tenant>>)> {
        self.lock_tenants()
            .iter()
            .map(|(name, tenant)| (name.clone(), tenant.clone()))
            .collect()
    }

    fn lock_tenants(&self) -> MutexGuard<'_, BTreeMap<String, Arc<Mutex<Tenant>>>> {
        self.tenants.lock().expect("tenant registry lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::telemetry::parse;

    fn records(text: &str) -> Vec<ParsedRecord> {
        parse(text, Format::Jsonl).unwrap()
    }

    #[test]
    fn tenant_summary_matches_offline_batch_replay() {
        let trace = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":0,\"m\":\"rack-01.draw_w\",\"v\":90}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
                     {\"t\":100,\"m\":\"rack-01.draw_w\",\"v\":91}\n\
                     {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
                     {\"t\":200,\"m\":\"rack-01.draw_w\",\"v\":92}\n";
        let parsed = records(trace);
        let offline = pipeline::replay_records(2, PipelineConfig::default(), &parsed);

        let mut tenant = Tenant::new("acme", Format::Jsonl, PipelineConfig::default());
        for r in &parsed {
            tenant.ingest_record(r.clone());
        }
        assert_eq!(tenant.finalize(), &offline);
        assert_eq!(tenant.finalize().to_json(), offline.to_json(), "idempotent");
    }

    #[test]
    fn single_tick_stream_still_finalizes() {
        let mut tenant = Tenant::new("t", Format::Jsonl, PipelineConfig::default());
        for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
            tenant.ingest_record(r);
        }
        let summary = tenant.finalize().clone();
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.racks, 1);
    }

    #[test]
    fn empty_stream_finalizes_to_zero_ticks() {
        let mut tenant = Tenant::new("t", Format::Jsonl, PipelineConfig::default());
        let summary = tenant.finalize().clone();
        assert_eq!(summary.ticks, 0);
        assert_eq!(summary.records, 0);
        assert_eq!(summary.final_level, SecurityLevel::Normal);
    }

    #[test]
    fn open_tenant_resets_but_keeps_tallies() {
        let state = DaemonState::new(PipelineConfig::default());
        let (tenant, _) = state.open_tenant("a", Format::Jsonl);
        {
            let mut guard = tenant.lock().unwrap();
            for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
                guard.ingest_record(r);
            }
            guard.parse_errors += 1;
            guard.finalize();
        }
        let (again, _) = state.open_tenant("a", Format::Csv);
        let guard = again.lock().unwrap();
        assert_eq!(guard.sessions, 2);
        assert_eq!(guard.parse_errors, 1, "tallies survive the reset");
        assert!(guard.records.is_empty());
        assert!(!guard.finished());
        assert_eq!(guard.format, Format::Csv);
        assert_eq!(state.tenants().len(), 1);
    }

    #[test]
    fn ops_log_ring_evicts_oldest_and_counts() {
        let mut log = OpsLog::new(3);
        for i in 0..5 {
            log.push("session_open", "t", &format!("n{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let jsonl = log.render_jsonl();
        assert!(!jsonl.contains("\"seq\":1"), "oldest evicted");
        assert!(jsonl.starts_with("{\"seq\":2,\"kind\":\"session_open\""));
        assert!(jsonl.ends_with("\"detail\":\"n4\"}\n"));
        assert!(log.render_json_array().starts_with("[{\"seq\":2"));
    }

    #[test]
    fn tenant_alerts_match_the_offline_monitor_byte_for_byte() {
        let trace = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
                     {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
                     {\"t\":300,\"m\":\"rack-00.draw_w\",\"v\":103}\n";
        let parsed = records(trace);
        let state = DaemonState::new(PipelineConfig::default());
        let (tenant, _) = state.open_tenant("acme", Format::Jsonl);
        let mut guard = tenant.lock().unwrap();
        for r in &parsed {
            guard.ingest_record(r.clone());
        }
        guard.finalize();
        let live = guard.alerts_json().expect("monitor attached");
        let (_, offline) = pipeline::monitor_records(
            1,
            PipelineConfig::default(),
            pipeline::default_alert_rules(),
            &parsed,
        );
        assert_eq!(live, offline.alerts_json());
    }

    #[test]
    fn bare_state_runs_without_monitors_or_log_noise() {
        let state = DaemonState::bare(PipelineConfig::default());
        let (tenant, _) = state.open_tenant("t", Format::Jsonl);
        let mut guard = tenant.lock().unwrap();
        for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
            guard.ingest_record(r);
        }
        assert!(guard.monitor().is_none());
        assert!(guard.alerts_json().is_none());
        assert!(guard.take_transitions().is_empty());
    }

    /// A deterministic multi-tick, multi-rack trace with enough
    /// movement to exercise detector state.
    fn spiky_trace(ticks: u64) -> Vec<ParsedRecord> {
        let mut text = String::new();
        for t in 0..ticks {
            for rack in 0..2 {
                let spike = if t % 17 == 0 { 40.0 } else { 0.0 };
                let v = 100.0 + rack as f64 * 5.0 + (t % 7) as f64 + spike;
                text.push_str(&format!(
                    "{{\"t\":{},\"m\":\"rack-0{rack}.draw_w\",\"v\":{v}}}\n",
                    t * 100
                ));
            }
        }
        records(&text)
    }

    fn fresh_monitored(name: &str) -> Tenant {
        let mut tenant = Tenant::new(name, Format::Jsonl, PipelineConfig::default());
        tenant.attach_monitor(default_alert_rules());
        tenant
    }

    #[test]
    fn checkpoint_round_trips_an_open_stream_bit_exactly() {
        let trace = spiky_trace(60);
        for cut in [1usize, 7, 35, 59] {
            let mut live = fresh_monitored("acme");
            for r in &trace[..cut] {
                live.ingest_record(r.clone());
            }
            live.ingest_span(ParsedSpan {
                id: 0,
                name: "attack.drain".to_string(),
                parent: None,
                start_ms: 0,
                end_ms: 100,
                attrs: vec![("rack".to_string(), 1.0)],
            });
            live.note_parse_error();
            let doc = live.checkpoint_document();

            let mut restored = fresh_monitored("acme");
            restored.restore_from_document(&doc).unwrap();
            assert_eq!(restored.seq, live.seq, "cut {cut}");
            assert_eq!(restored.checkpoint_document(), doc, "cut {cut}");

            // Both halves converge on byte-identical final documents.
            for r in &trace[cut..] {
                live.ingest_record(r.clone());
                restored.ingest_record(r.clone());
            }
            assert_eq!(
                restored.finalize().to_json(),
                live.finalize().to_json(),
                "cut {cut}"
            );
            assert_eq!(restored.alerts_json(), live.alerts_json(), "cut {cut}");
            assert_eq!(
                restored.incidents_json(),
                live.incidents_json(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn reopen_rewinds_a_mid_stream_finalize_bit_exactly() {
        let trace = spiky_trace(60);
        for cut in [1usize, 23, 59] {
            let mut clean = fresh_monitored("t");
            let mut dropped = fresh_monitored("t");
            for (i, r) in trace.iter().enumerate() {
                clean.ingest_record(r.clone());
                dropped.ingest_record(r.clone());
                if i + 1 == cut {
                    // Connection drop: EOF drains and finalizes…
                    dropped.finalize();
                    // …and the resume rewinds it.
                    dropped.reopen();
                    assert!(!dropped.finished());
                }
            }
            assert_eq!(
                dropped.finalize().to_json(),
                clean.finalize().to_json(),
                "cut {cut}"
            );
            assert_eq!(dropped.alerts_json(), clean.alerts_json(), "cut {cut}");
        }
    }

    #[test]
    fn checkpoint_restores_a_finished_stream() {
        let trace = spiky_trace(40);
        let mut live = fresh_monitored("done");
        for r in &trace {
            live.ingest_record(r.clone());
        }
        live.finalize();
        let doc = live.checkpoint_document();
        let mut restored = fresh_monitored("done");
        restored.restore_from_document(&doc).unwrap();
        assert!(restored.finished());
        assert_eq!(restored.finalize().to_json(), live.finalize().to_json());
        assert_eq!(restored.alerts_json(), live.alerts_json());
    }

    #[test]
    fn checkpoint_rejects_structural_mismatches() {
        let mut live = fresh_monitored("a");
        for r in spiky_trace(10) {
            live.ingest_record(r);
        }
        let doc = live.checkpoint_document();

        let e = fresh_monitored("b")
            .restore_from_document(&doc)
            .unwrap_err();
        assert!(e.contains("tenant"), "{e}");

        let bumped = doc.replacen("{\"version\":1", "{\"version\":9", 1);
        let e = fresh_monitored("a")
            .restore_from_document(&bumped)
            .unwrap_err();
        assert!(e.contains("version"), "{e}");

        let truncated: String = doc.lines().take(3).map(|l| format!("{l}\n")).collect();
        let e = fresh_monitored("a")
            .restore_from_document(&truncated)
            .unwrap_err();
        assert!(e.contains("truncated"), "{e}");

        let mut bare = Tenant::new("a", Format::Jsonl, PipelineConfig::default());
        let e = bare.restore_from_document(&doc).unwrap_err();
        assert!(e.contains("self-observability"), "{e}");
    }

    #[test]
    fn resume_tenant_keeps_state_and_reports_seq() {
        let state = DaemonState::new(PipelineConfig::default());
        let (tenant, _) = state.open_tenant("r", Format::Jsonl);
        {
            let mut guard = tenant.lock().unwrap();
            for r in spiky_trace(5) {
                guard.ingest_record(r);
            }
        }
        let (again, seq, _) = state.resume_tenant("r", Format::Jsonl).unwrap();
        assert_eq!(seq, 10, "5 ticks x 2 racks consumed");
        let guard = again.lock().unwrap();
        assert_eq!(guard.records.len(), 10, "resume does not reset");
        assert_eq!(guard.sessions, 2);
        drop(guard);
        let e = state.resume_tenant("r", Format::Csv).unwrap_err();
        assert!(e.contains("format"), "{e}");
        // A never-seen tenant resumes from zero.
        let (_, seq, _) = state.resume_tenant("fresh", Format::Csv).unwrap();
        assert_eq!(seq, 0);
    }

    #[test]
    fn load_checkpoints_restores_tenants_from_disk() {
        let dir =
            std::env::temp_dir().join(format!("padsimd-state-test-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut state = DaemonState::new(PipelineConfig::default());
        state.state_dir = Some(dir.clone());
        let (tenant, _) = state.open_tenant("persisted", Format::Jsonl);
        {
            let mut guard = tenant.lock().unwrap();
            for r in spiky_trace(20) {
                guard.ingest_record(r);
            }
            state.write_checkpoint(&mut guard).unwrap();
        }
        assert_eq!(Counters::get(&state.counters.checkpoints_written), 1);
        std::fs::write(dir.join("broken.ckpt"), "not a checkpoint\n").unwrap();

        let mut reborn = DaemonState::new(PipelineConfig::default());
        reborn.state_dir = Some(dir.clone());
        assert_eq!(reborn.load_checkpoints().unwrap(), 1, "corrupt one skipped");
        let restored = reborn.tenant("persisted").expect("restored from disk");
        let mut guard = restored.lock().unwrap();
        assert_eq!(guard.records.len(), 40);
        assert_eq!(guard.seq, 40);
        let mut live = tenant.lock().unwrap();
        assert_eq!(guard.checkpoint_document(), live.checkpoint_document());
        drop((guard, live));
        let log = reborn.with_ops_log(OpsLog::render_jsonl);
        assert!(log.contains("\"kind\":\"checkpoint_restore\""), "{log}");
        assert!(log.contains("\"kind\":\"checkpoint_error\""), "{log}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readiness_is_bound_and_not_draining() {
        let state = DaemonState::new(PipelineConfig::default());
        assert!(!state.is_ready(), "not ready before listeners bind");
        state.set_ready(true);
        assert!(state.is_ready());
        state.request_shutdown();
        assert!(!state.is_ready(), "draining is not ready");
    }
}
