//! Shared daemon state: the tenant registry and self-metrics counters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use pad::pipeline::{self, PipelineConfig, ReplayPipeline, ReplaySummary};
use pad::policy::SecurityLevel;
use simkit::telemetry::{Format, ParsedRecord};
use simkit::trace::ParsedSpan;

/// Monotonic daemon self-metrics, exported on `/metrics` as
/// `padsimd_*` counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Sessions opened (`hello` accepted).
    pub sessions_opened: AtomicU64,
    /// Sessions closed (`end`, EOF, or drain).
    pub sessions_closed: AtomicU64,
    /// Telemetry records accepted across all tenants.
    pub records: AtomicU64,
    /// Span lines accepted across all tenants.
    pub spans: AtomicU64,
    /// Malformed wire lines (codec or protocol) that were skipped.
    pub parse_errors: AtomicU64,
    /// HTTP requests served.
    pub http_requests: AtomicU64,
}

impl Counters {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// One tenant's accumulated stream state.
///
/// The detector/policy pipeline is created lazily at the first tick
/// boundary, once the first tick's records have named every rack —
/// mirroring the offline CLI's whole-file rack inference (every rack
/// emits its draw gauge every tick, so the first tick already names
/// them all).
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// Wire format of the tenant's data lines.
    pub format: Format,
    /// Every accepted telemetry record, in arrival order.
    pub records: Vec<ParsedRecord>,
    /// Every accepted span line, in arrival order.
    pub spans: Vec<ParsedSpan>,
    /// Records of the still-open first tick, before racks are known.
    pending: Vec<ParsedRecord>,
    /// The live pipeline, once racks are known.
    pipeline: Option<ReplayPipeline>,
    /// The finished summary, once the stream has ended.
    pub summary: Option<ReplaySummary>,
    /// Malformed lines charged to this tenant.
    pub parse_errors: u64,
    /// Sessions this tenant has opened.
    pub sessions: u64,
    config: PipelineConfig,
}

impl Tenant {
    /// Creates an empty tenant stream.
    pub fn new(name: &str, format: Format, config: PipelineConfig) -> Self {
        Tenant {
            name: name.to_string(),
            format,
            records: Vec::new(),
            spans: Vec::new(),
            pending: Vec::new(),
            pipeline: None,
            summary: None,
            parse_errors: 0,
            sessions: 0,
            config,
        }
    }

    /// Resets the stream for a fresh session (`hello` on an existing
    /// tenant), keeping the session and error tallies.
    pub fn reset(&mut self, format: Format) {
        self.format = format;
        self.records.clear();
        self.spans.clear();
        self.pending.clear();
        self.pipeline = None;
        self.summary = None;
    }

    /// Feeds one record in arrival order, creating the pipeline at the
    /// first tick boundary.
    pub fn ingest_record(&mut self, r: ParsedRecord) {
        match &mut self.pipeline {
            Some(pipe) => pipe.ingest(&r),
            None => {
                let first_tick_closed = self
                    .pending
                    .first()
                    .is_some_and(|first| first.time_ms != r.time_ms);
                if first_tick_closed {
                    let mut pipe = self.make_pipeline();
                    pipe.ingest(&r);
                    self.pipeline = Some(pipe);
                } else {
                    self.pending.push(r.clone());
                }
            }
        }
        self.records.push(r);
    }

    /// Builds the pipeline from the buffered first tick and drains the
    /// buffer into it.
    fn make_pipeline(&mut self) -> ReplayPipeline {
        let racks = pipeline::try_infer_racks(&self.pending).unwrap_or(1);
        let mut pipe = ReplayPipeline::new(racks, self.config);
        for r in self.pending.drain(..) {
            pipe.ingest(&r);
        }
        pipe
    }

    /// Feeds one span in arrival order.
    pub fn ingest_span(&mut self, s: ParsedSpan) {
        self.spans.push(s);
    }

    /// Ends the stream: closes the final tick and caches the summary.
    /// Idempotent — a second `end` returns the same summary.
    pub fn finalize(&mut self) -> &ReplaySummary {
        if self.summary.is_none() {
            let pipe = match self.pipeline.take() {
                Some(pipe) => pipe,
                // The whole stream fit in one tick (or was empty).
                None => self.make_pipeline(),
            };
            self.summary = Some(pipe.finalize());
        }
        self.summary.as_ref().expect("summary just cached")
    }

    /// `true` once [`finalize`](Tenant::finalize) has run.
    pub fn finished(&self) -> bool {
        self.summary.is_some()
    }

    /// The current policy level: live from the pipeline while the
    /// stream is open, frozen from the summary after.
    pub fn level(&self) -> SecurityLevel {
        match (&self.summary, &self.pipeline) {
            (Some(summary), _) => summary.final_level,
            (None, Some(pipe)) => pipe.level(),
            (None, None) => SecurityLevel::Normal,
        }
    }

    /// Whether the fused detector verdict is currently firing (always
    /// `false` before the pipeline exists or after the stream ended).
    pub fn fused_fired(&self) -> bool {
        self.pipeline
            .as_ref()
            .is_some_and(|pipe| pipe.stack().fused().fired)
    }

    /// One-line status JSON for the HTTP API.
    pub fn status_json(&self) -> String {
        format!(
            "{{\"tenant\":\"{}\",\"format\":\"{}\",\"records\":{},\"spans\":{},\
             \"parse_errors\":{},\"sessions\":{},\"finished\":{},\"level\":{},\
             \"level_label\":\"{}\",\"fused_fired\":{}}}\n",
            self.name,
            self.format.extension(),
            self.records.len(),
            self.spans.len(),
            self.parse_errors,
            self.sessions,
            self.finished(),
            self.level().number(),
            self.level().label(),
            self.fused_fired()
        )
    }

    /// The tenant's incident report, reconstructed from its spans
    /// joined with its telemetry — the same JSON document
    /// `padsim incident --json` emits for the recorded files.
    pub fn incidents_json(&self) -> String {
        pipeline::reconstruct_json(&self.spans, &self.records)
    }
}

/// Everything the listener, session, and HTTP threads share.
#[derive(Debug)]
pub struct DaemonState {
    /// Self-metrics.
    pub counters: Counters,
    /// Set by a `shutdown` control line; every loop polls it.
    pub shutdown: AtomicBool,
    /// Pipeline knobs applied to every tenant.
    pub config: PipelineConfig,
    tenants: Mutex<BTreeMap<String, Arc<Mutex<Tenant>>>>,
}

impl DaemonState {
    /// Creates the shared state.
    pub fn new(config: PipelineConfig) -> Self {
        DaemonState {
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            config,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// `true` once a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Opens (or resets) a tenant stream and returns its handle.
    pub fn open_tenant(&self, name: &str, format: Format) -> Arc<Mutex<Tenant>> {
        let mut tenants = self.lock_tenants();
        let tenant = tenants
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Tenant::new(name, format, self.config))))
            .clone();
        drop(tenants);
        let mut guard = tenant.lock().expect("tenant lock");
        guard.reset(format);
        guard.sessions += 1;
        drop(guard);
        Counters::bump(&self.counters.sessions_opened);
        tenant
    }

    /// Looks up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.lock_tenants().get(name).cloned()
    }

    /// Snapshot of every tenant handle, in name order.
    pub fn tenants(&self) -> Vec<(String, Arc<Mutex<Tenant>>)> {
        self.lock_tenants()
            .iter()
            .map(|(name, tenant)| (name.clone(), tenant.clone()))
            .collect()
    }

    fn lock_tenants(&self) -> MutexGuard<'_, BTreeMap<String, Arc<Mutex<Tenant>>>> {
        self.tenants.lock().expect("tenant registry lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::telemetry::parse;

    fn records(text: &str) -> Vec<ParsedRecord> {
        parse(text, Format::Jsonl).unwrap()
    }

    #[test]
    fn tenant_summary_matches_offline_batch_replay() {
        let trace = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":0,\"m\":\"rack-01.draw_w\",\"v\":90}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
                     {\"t\":100,\"m\":\"rack-01.draw_w\",\"v\":91}\n\
                     {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
                     {\"t\":200,\"m\":\"rack-01.draw_w\",\"v\":92}\n";
        let parsed = records(trace);
        let offline = pipeline::replay_records(2, PipelineConfig::default(), &parsed);

        let mut tenant = Tenant::new("acme", Format::Jsonl, PipelineConfig::default());
        for r in &parsed {
            tenant.ingest_record(r.clone());
        }
        assert_eq!(tenant.finalize(), &offline);
        assert_eq!(tenant.finalize().to_json(), offline.to_json(), "idempotent");
    }

    #[test]
    fn single_tick_stream_still_finalizes() {
        let mut tenant = Tenant::new("t", Format::Jsonl, PipelineConfig::default());
        for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
            tenant.ingest_record(r);
        }
        let summary = tenant.finalize().clone();
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.racks, 1);
    }

    #[test]
    fn empty_stream_finalizes_to_zero_ticks() {
        let mut tenant = Tenant::new("t", Format::Jsonl, PipelineConfig::default());
        let summary = tenant.finalize().clone();
        assert_eq!(summary.ticks, 0);
        assert_eq!(summary.records, 0);
        assert_eq!(summary.final_level, SecurityLevel::Normal);
    }

    #[test]
    fn open_tenant_resets_but_keeps_tallies() {
        let state = DaemonState::new(PipelineConfig::default());
        let tenant = state.open_tenant("a", Format::Jsonl);
        {
            let mut guard = tenant.lock().unwrap();
            for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
                guard.ingest_record(r);
            }
            guard.parse_errors += 1;
            guard.finalize();
        }
        let again = state.open_tenant("a", Format::Csv);
        let guard = again.lock().unwrap();
        assert_eq!(guard.sessions, 2);
        assert_eq!(guard.parse_errors, 1, "tallies survive the reset");
        assert!(guard.records.is_empty());
        assert!(!guard.finished());
        assert_eq!(guard.format, Format::Csv);
        assert_eq!(state.tenants().len(), 1);
    }
}
