//! Shared daemon state: the tenant registry, self-metrics counters,
//! wall-clock ops histograms, the bounded ops log, and per-tenant
//! alert monitors.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use pad::pipeline::{
    self, default_alert_rules, PipelineConfig, ReplayPipeline, ReplaySummary, StreamMonitor,
};
use pad::policy::SecurityLevel;
use simkit::alert::{AlertEvent, AlertRule};
use simkit::telemetry::{Format, MetricId, MetricRegistry, ParsedRecord};
use simkit::trace::ParsedSpan;

/// Monotonic daemon self-metrics, exported on `/metrics` as
/// `padsimd_*` counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Sessions opened (`hello` accepted).
    pub sessions_opened: AtomicU64,
    /// Sessions closed (`end`, EOF, or drain).
    pub sessions_closed: AtomicU64,
    /// Stream connections currently inside their read loop (a gauge:
    /// bumped on connect, dropped on return).
    pub active_sessions: AtomicU64,
    /// Telemetry records accepted across all tenants.
    pub records: AtomicU64,
    /// Span lines accepted across all tenants.
    pub spans: AtomicU64,
    /// Malformed wire lines (codec or protocol) that were skipped.
    pub parse_errors: AtomicU64,
    /// HTTP requests served.
    pub http_requests: AtomicU64,
    /// HTTP responses with a 2xx status.
    pub http_2xx: AtomicU64,
    /// HTTP responses with a 4xx status.
    pub http_4xx: AtomicU64,
    /// HTTP responses with a 5xx status.
    pub http_5xx: AtomicU64,
}

impl Counters {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one from a gauge-style counter.
    pub fn drop_one(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Daemon-wide wall-clock histograms: ingest poll latency/batch sizes
/// and HTTP request latency. These are `/metrics`-only observability —
/// wall times never feed the alert engine, whose documents must stay a
/// pure function of the recorded stream.
#[derive(Debug)]
pub struct OpsMetrics {
    reg: MetricRegistry,
    ingest_latency: MetricId,
    poll_lines: MetricId,
    poll_records: MetricId,
    http_seconds: MetricId,
}

impl OpsMetrics {
    fn new() -> Self {
        let mut reg = MetricRegistry::new();
        let ingest_latency = reg.register_histogram("ingest.latency_seconds", 0.0, 0.25, 50);
        let poll_lines = reg.register_histogram("ingest.poll_lines", 0.0, 50_000.0, 50);
        let poll_records = reg.register_histogram("ingest.poll_records", 0.0, 50_000.0, 50);
        let http_seconds = reg.register_histogram("http.request_seconds", 0.0, 0.25, 50);
        OpsMetrics {
            reg,
            ingest_latency,
            poll_lines,
            poll_records,
            http_seconds,
        }
    }

    /// Records one wire poll: wall seconds spent inside the read loop
    /// between blocking waits, lines handled, records accepted.
    pub fn observe_poll(&mut self, seconds: f64, lines: u64, records: u64) {
        self.reg.observe(self.ingest_latency, seconds);
        self.reg.observe(self.poll_lines, lines as f64);
        self.reg.observe(self.poll_records, records as f64);
    }

    /// Records one HTTP exchange's wall seconds.
    pub fn observe_http(&mut self, seconds: f64) {
        self.reg.observe(self.http_seconds, seconds);
    }

    /// The registry, for `/metrics` rendering under `padsimd_`.
    pub fn registry(&self) -> &MetricRegistry {
        &self.reg
    }
}

/// One structured ops-log entry. No wall-clock timestamp on purpose:
/// the `seq` orders entries, and keeping timestamps out keeps replayed
/// logs diffable.
#[derive(Debug, Clone)]
pub struct OpsEntry {
    /// Monotonic sequence number (survives ring eviction).
    pub seq: u64,
    /// Event kind (`session_open`, `alert_fired`, `ready`, ...).
    pub kind: &'static str,
    /// Tenant the event concerns, empty for daemon-wide events.
    pub tenant: String,
    /// Free-form detail over the wire-safe charset (no escaping).
    pub detail: String,
}

/// Bounded ring of [`OpsEntry`]s: keeps the newest `cap` entries and
/// counts evictions, so `/logs` is always a cheap, bounded read.
#[derive(Debug)]
pub struct OpsLog {
    entries: VecDeque<OpsEntry>,
    next_seq: u64,
    dropped: u64,
    cap: usize,
}

/// Entries the ops-log ring retains before evicting the oldest.
pub const OPS_LOG_CAP: usize = 1024;

impl OpsLog {
    fn new(cap: usize) -> Self {
        OpsLog {
            entries: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            cap,
        }
    }

    fn push(&mut self, kind: &'static str, tenant: &str, detail: &str) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(OpsEntry {
            seq: self.next_seq,
            kind,
            tenant: tenant.to_string(),
            detail: detail.to_string(),
        });
        self.next_seq += 1;
    }

    /// Oldest-retained-first JSONL, one entry per line (`/logs`).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"seq\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"detail\":\"{}\"}}\n",
                e.seq, e.kind, e.tenant, e.detail
            ));
        }
        out
    }

    /// The same entries as one JSON array (for `daemon_report.json`).
    pub fn render_json_array(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"detail\":\"{}\"}}",
                e.seq, e.kind, e.tenant, e.detail
            ));
        }
        out.push(']');
        out
    }

    /// Entries evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been logged (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One tenant's accumulated stream state.
///
/// The detector/policy pipeline is created lazily at the first tick
/// boundary, once the first tick's records have named every rack —
/// mirroring the offline CLI's whole-file rack inference (every rack
/// emits its draw gauge every tick, so the first tick already names
/// them all).
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// Wire format of the tenant's data lines.
    pub format: Format,
    /// Every accepted telemetry record, in arrival order.
    pub records: Vec<ParsedRecord>,
    /// Every accepted span line, in arrival order.
    pub spans: Vec<ParsedSpan>,
    /// Records of the still-open first tick, before racks are known.
    pending: Vec<ParsedRecord>,
    /// The live pipeline, once racks are known.
    pipeline: Option<ReplayPipeline>,
    /// The finished summary, once the stream has ended.
    pub summary: Option<ReplaySummary>,
    /// Malformed lines charged to this tenant.
    pub parse_errors: u64,
    /// Sessions this tenant has opened.
    pub sessions: u64,
    config: PipelineConfig,
    /// Self-observability sidecar (absent in `bare` mode): alert
    /// engine plus ingest-health metrics, driven on sim time so its
    /// documents match the offline replay byte-for-byte.
    monitor: Option<StreamMonitor>,
}

impl Tenant {
    /// Creates an empty tenant stream.
    pub fn new(name: &str, format: Format, config: PipelineConfig) -> Self {
        Tenant {
            name: name.to_string(),
            format,
            records: Vec::new(),
            spans: Vec::new(),
            pending: Vec::new(),
            pipeline: None,
            summary: None,
            parse_errors: 0,
            sessions: 0,
            config,
            monitor: None,
        }
    }

    /// Attaches a self-observability monitor running `rules`.
    pub fn attach_monitor(&mut self, rules: Vec<AlertRule>) {
        self.monitor = Some(StreamMonitor::new(rules));
    }

    /// The attached monitor, if self-observability is on.
    pub fn monitor(&self) -> Option<&StreamMonitor> {
        self.monitor.as_ref()
    }

    /// Resets the stream for a fresh session (`hello` on an existing
    /// tenant), keeping the session and error tallies.
    pub fn reset(&mut self, format: Format) {
        self.format = format;
        self.records.clear();
        self.spans.clear();
        self.pending.clear();
        self.pipeline = None;
        self.summary = None;
        if let Some(mon) = &mut self.monitor {
            mon.reset();
        }
    }

    /// Feeds one record in arrival order, creating the pipeline at the
    /// first tick boundary.
    pub fn ingest_record(&mut self, r: ParsedRecord) {
        match &mut self.pipeline {
            Some(pipe) => pipe.ingest(&r),
            None => {
                let first_tick_closed = self
                    .pending
                    .first()
                    .is_some_and(|first| first.time_ms != r.time_ms);
                if first_tick_closed {
                    let mut pipe = self.make_pipeline();
                    pipe.ingest(&r);
                    self.pipeline = Some(pipe);
                } else {
                    self.pending.push(r.clone());
                }
            }
        }
        if self.monitor.is_some() {
            let (level, fused, firings) = (self.level(), self.fused_fired(), self.firing_count());
            if let Some(mon) = &mut self.monitor {
                mon.observe_record(&r, level, fused, firings);
            }
        }
        self.records.push(r);
    }

    /// Cumulative detector rising edges: live from the pipeline, frozen
    /// from the summary after the stream ends, zero before either.
    pub fn firing_count(&self) -> usize {
        match (&self.summary, &self.pipeline) {
            (Some(summary), _) => summary.firing_count,
            (None, Some(pipe)) => pipe.stack().bank().firings().len(),
            (None, None) => 0,
        }
    }

    /// Builds the pipeline from the buffered first tick and drains the
    /// buffer into it.
    fn make_pipeline(&mut self) -> ReplayPipeline {
        let racks = pipeline::try_infer_racks(&self.pending).unwrap_or(1);
        let mut pipe = ReplayPipeline::new(racks, self.config);
        for r in self.pending.drain(..) {
            pipe.ingest(&r);
        }
        pipe
    }

    /// Feeds one span in arrival order.
    pub fn ingest_span(&mut self, s: ParsedSpan) {
        self.spans.push(s);
    }

    /// Ends the stream: closes the final tick and caches the summary.
    /// Idempotent — a second `end` returns the same summary.
    pub fn finalize(&mut self) -> &ReplaySummary {
        if self.summary.is_none() {
            let pipe = match self.pipeline.take() {
                Some(pipe) => pipe,
                // The whole stream fit in one tick (or was empty).
                None => self.make_pipeline(),
            };
            let summary = pipe.finalize();
            if let Some(mon) = &mut self.monitor {
                mon.finish(summary.final_level, false, summary.firing_count);
            }
            self.summary = Some(summary);
        }
        self.summary.as_ref().expect("summary just cached")
    }

    /// Charges one malformed line to the tenant (and its monitor).
    pub fn note_parse_error(&mut self) {
        self.parse_errors += 1;
        if let Some(mon) = &mut self.monitor {
            mon.observe_parse_error();
        }
    }

    /// Records one wire poll's wall timing into the monitor, if any.
    pub fn observe_poll(&mut self, seconds: f64, lines: u64, records: u64) {
        if let Some(mon) = &mut self.monitor {
            mon.observe_poll(seconds, lines, records);
        }
    }

    /// Drains alert transitions pending since the last drain (empty
    /// without a monitor).
    pub fn take_transitions(&mut self) -> Vec<AlertEvent> {
        self.monitor
            .as_mut()
            .map(StreamMonitor::take_transitions)
            .unwrap_or_default()
    }

    /// This stream's `/alerts` JSON document, if self-observability is
    /// on — byte-identical to `padsim inspect --alerts` over the same
    /// records.
    pub fn alerts_json(&self) -> Option<String> {
        self.monitor.as_ref().map(StreamMonitor::alerts_json)
    }

    /// `true` once [`finalize`](Tenant::finalize) has run.
    pub fn finished(&self) -> bool {
        self.summary.is_some()
    }

    /// The current policy level: live from the pipeline while the
    /// stream is open, frozen from the summary after.
    pub fn level(&self) -> SecurityLevel {
        match (&self.summary, &self.pipeline) {
            (Some(summary), _) => summary.final_level,
            (None, Some(pipe)) => pipe.level(),
            (None, None) => SecurityLevel::Normal,
        }
    }

    /// Whether the fused detector verdict is currently firing (always
    /// `false` before the pipeline exists or after the stream ended).
    pub fn fused_fired(&self) -> bool {
        self.pipeline
            .as_ref()
            .is_some_and(|pipe| pipe.stack().fused().fired)
    }

    /// One-line status JSON for the HTTP API.
    pub fn status_json(&self) -> String {
        format!(
            "{{\"tenant\":\"{}\",\"format\":\"{}\",\"records\":{},\"spans\":{},\
             \"parse_errors\":{},\"sessions\":{},\"finished\":{},\"level\":{},\
             \"level_label\":\"{}\",\"fused_fired\":{}}}\n",
            self.name,
            self.format.extension(),
            self.records.len(),
            self.spans.len(),
            self.parse_errors,
            self.sessions,
            self.finished(),
            self.level().number(),
            self.level().label(),
            self.fused_fired()
        )
    }

    /// The tenant's incident report, reconstructed from its spans
    /// joined with its telemetry — the same JSON document
    /// `padsim incident --json` emits for the recorded files.
    pub fn incidents_json(&self) -> String {
        pipeline::reconstruct_json(&self.spans, &self.records)
    }
}

/// Everything the listener, session, and HTTP threads share.
#[derive(Debug)]
pub struct DaemonState {
    /// Self-metrics.
    pub counters: Counters,
    /// Set by a `shutdown` control line; every loop polls it.
    pub shutdown: AtomicBool,
    /// Set once the listeners are bound and serving; cleared on drain.
    /// `/readyz` is this AND not shutting down — `/healthz` stays pure
    /// liveness.
    ready: AtomicBool,
    /// Whether self-observability (monitors, ops histograms) is on.
    /// Off only for the bench's bare-ingest baseline.
    pub self_obs: bool,
    /// Pipeline knobs applied to every tenant.
    pub config: PipelineConfig,
    /// Wall-clock ops histograms (`/metrics` only).
    pub ops: Mutex<OpsMetrics>,
    alert_rules: Vec<AlertRule>,
    ops_log: Mutex<OpsLog>,
    tenants: Mutex<BTreeMap<String, Arc<Mutex<Tenant>>>>,
}

impl DaemonState {
    /// Creates the shared state with self-observability on and the
    /// default alert rules.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_rules(config, default_alert_rules(), true)
    }

    /// Creates state with no monitors and no ops instrumentation — the
    /// bench baseline that measures what self-observability costs.
    pub fn bare(config: PipelineConfig) -> Self {
        Self::with_rules(config, Vec::new(), false)
    }

    /// Creates the shared state with explicit alert rules.
    pub fn with_rules(config: PipelineConfig, alert_rules: Vec<AlertRule>, self_obs: bool) -> Self {
        DaemonState {
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            self_obs,
            config,
            ops: Mutex::new(OpsMetrics::new()),
            alert_rules,
            ops_log: Mutex::new(OpsLog::new(OPS_LOG_CAP)),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// `true` once a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Marks the daemon ready (listeners bound) or draining.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::SeqCst);
    }

    /// Ready to accept work: listeners bound and not draining.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst) && !self.shutting_down()
    }

    /// The alert rules every tenant monitor runs.
    pub fn alert_rules(&self) -> &[AlertRule] {
        &self.alert_rules
    }

    /// Appends one entry to the bounded ops log.
    pub fn log_event(&self, kind: &'static str, tenant: &str, detail: &str) {
        self.ops_log
            .lock()
            .expect("ops log lock")
            .push(kind, tenant, detail);
    }

    /// Runs `f` over the ops log under its lock.
    pub fn with_ops_log<T>(&self, f: impl FnOnce(&OpsLog) -> T) -> T {
        f(&self.ops_log.lock().expect("ops log lock"))
    }

    /// Opens (or resets) a tenant stream and returns its handle.
    pub fn open_tenant(&self, name: &str, format: Format) -> Arc<Mutex<Tenant>> {
        let mut tenants = self.lock_tenants();
        let tenant = tenants
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut tenant = Tenant::new(name, format, self.config);
                if self.self_obs {
                    tenant.attach_monitor(self.alert_rules.clone());
                }
                Arc::new(Mutex::new(tenant))
            })
            .clone();
        drop(tenants);
        let mut guard = tenant.lock().expect("tenant lock");
        guard.reset(format);
        guard.sessions += 1;
        drop(guard);
        Counters::bump(&self.counters.sessions_opened);
        self.log_event("session_open", name, "");
        tenant
    }

    /// Looks up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.lock_tenants().get(name).cloned()
    }

    /// Snapshot of every tenant handle, in name order.
    pub fn tenants(&self) -> Vec<(String, Arc<Mutex<Tenant>>)> {
        self.lock_tenants()
            .iter()
            .map(|(name, tenant)| (name.clone(), tenant.clone()))
            .collect()
    }

    fn lock_tenants(&self) -> MutexGuard<'_, BTreeMap<String, Arc<Mutex<Tenant>>>> {
        self.tenants.lock().expect("tenant registry lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::telemetry::parse;

    fn records(text: &str) -> Vec<ParsedRecord> {
        parse(text, Format::Jsonl).unwrap()
    }

    #[test]
    fn tenant_summary_matches_offline_batch_replay() {
        let trace = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":0,\"m\":\"rack-01.draw_w\",\"v\":90}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
                     {\"t\":100,\"m\":\"rack-01.draw_w\",\"v\":91}\n\
                     {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
                     {\"t\":200,\"m\":\"rack-01.draw_w\",\"v\":92}\n";
        let parsed = records(trace);
        let offline = pipeline::replay_records(2, PipelineConfig::default(), &parsed);

        let mut tenant = Tenant::new("acme", Format::Jsonl, PipelineConfig::default());
        for r in &parsed {
            tenant.ingest_record(r.clone());
        }
        assert_eq!(tenant.finalize(), &offline);
        assert_eq!(tenant.finalize().to_json(), offline.to_json(), "idempotent");
    }

    #[test]
    fn single_tick_stream_still_finalizes() {
        let mut tenant = Tenant::new("t", Format::Jsonl, PipelineConfig::default());
        for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
            tenant.ingest_record(r);
        }
        let summary = tenant.finalize().clone();
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.racks, 1);
    }

    #[test]
    fn empty_stream_finalizes_to_zero_ticks() {
        let mut tenant = Tenant::new("t", Format::Jsonl, PipelineConfig::default());
        let summary = tenant.finalize().clone();
        assert_eq!(summary.ticks, 0);
        assert_eq!(summary.records, 0);
        assert_eq!(summary.final_level, SecurityLevel::Normal);
    }

    #[test]
    fn open_tenant_resets_but_keeps_tallies() {
        let state = DaemonState::new(PipelineConfig::default());
        let tenant = state.open_tenant("a", Format::Jsonl);
        {
            let mut guard = tenant.lock().unwrap();
            for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
                guard.ingest_record(r);
            }
            guard.parse_errors += 1;
            guard.finalize();
        }
        let again = state.open_tenant("a", Format::Csv);
        let guard = again.lock().unwrap();
        assert_eq!(guard.sessions, 2);
        assert_eq!(guard.parse_errors, 1, "tallies survive the reset");
        assert!(guard.records.is_empty());
        assert!(!guard.finished());
        assert_eq!(guard.format, Format::Csv);
        assert_eq!(state.tenants().len(), 1);
    }

    #[test]
    fn ops_log_ring_evicts_oldest_and_counts() {
        let mut log = OpsLog::new(3);
        for i in 0..5 {
            log.push("session_open", "t", &format!("n{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let jsonl = log.render_jsonl();
        assert!(!jsonl.contains("\"seq\":1"), "oldest evicted");
        assert!(jsonl.starts_with("{\"seq\":2,\"kind\":\"session_open\""));
        assert!(jsonl.ends_with("\"detail\":\"n4\"}\n"));
        assert!(log.render_json_array().starts_with("[{\"seq\":2"));
    }

    #[test]
    fn tenant_alerts_match_the_offline_monitor_byte_for_byte() {
        let trace = "{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":100}\n\
                     {\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":101}\n\
                     {\"t\":200,\"m\":\"rack-00.draw_w\",\"v\":102}\n\
                     {\"t\":300,\"m\":\"rack-00.draw_w\",\"v\":103}\n";
        let parsed = records(trace);
        let state = DaemonState::new(PipelineConfig::default());
        let tenant = state.open_tenant("acme", Format::Jsonl);
        let mut guard = tenant.lock().unwrap();
        for r in &parsed {
            guard.ingest_record(r.clone());
        }
        guard.finalize();
        let live = guard.alerts_json().expect("monitor attached");
        let (_, offline) = pipeline::monitor_records(
            1,
            PipelineConfig::default(),
            pipeline::default_alert_rules(),
            &parsed,
        );
        assert_eq!(live, offline.alerts_json());
    }

    #[test]
    fn bare_state_runs_without_monitors_or_log_noise() {
        let state = DaemonState::bare(PipelineConfig::default());
        let tenant = state.open_tenant("t", Format::Jsonl);
        let mut guard = tenant.lock().unwrap();
        for r in records("{\"t\":0,\"m\":\"rack-00.draw_w\",\"v\":1}\n") {
            guard.ingest_record(r);
        }
        assert!(guard.monitor().is_none());
        assert!(guard.alerts_json().is_none());
        assert!(guard.take_transitions().is_empty());
    }

    #[test]
    fn readiness_is_bound_and_not_draining() {
        let state = DaemonState::new(PipelineConfig::default());
        assert!(!state.is_ready(), "not ready before listeners bind");
        state.set_ready(true);
        assert!(state.is_ready());
        state.request_shutdown();
        assert!(!state.is_ready(), "draining is not ready");
    }
}
