//! The padsimd wire protocol: line framing and control grammar.
//!
//! A session is one connection carrying newline-delimited UTF-8 lines.
//! Lines are either **control** (a lowercase keyword in column 0:
//! `hello`, `end`, `ping`, `shutdown`) or **data** — telemetry records
//! and trace spans in the exact serialization the offline tools read
//! and write ([`simkit::telemetry::codec`] / [`simkit::trace::codec`]).
//! There is no new encoding: a recorded `pad.jsonl` file can be piped
//! down the socket verbatim.
//!
//! Channel framing rides on the formats' own disambiguators:
//!
//! * JSONL — telemetry lines start `{"t":`, span lines start `{"id":`;
//! * CSV — the telemetry header opens a telemetry block, the span
//!   header opens a span block, and rows bind to the open block.
//!
//! Control replies are single lines: `ok hello <tenant>` (or
//! `ok hello <tenant> seq <S>` for a resume, or `busy retry-after <ms>`
//! when the tenant is shedding load) / `pong` / the replay-summary
//! JSON (for `end`) / `ok shutdown`. Data lines are never
//! acknowledged, so a sender can stream at full throughput.

use simkit::telemetry::Format;

/// Maximum accepted tenant-name length.
pub const MAX_TENANT_LEN: usize = 64;

/// A parsed control line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Control {
    /// `hello <tenant> [jsonl|csv] [resume <seq>]` — open (or reset) a
    /// tenant stream. With `resume`, the stream is re-attached instead
    /// of reset: the daemon replies `ok hello <tenant> seq <S>` where
    /// `S` is its durable sequence number, and the client rewinds its
    /// send buffer to line `S`.
    Hello {
        /// The tenant the rest of the session's data lines belong to.
        tenant: String,
        /// Wire format of the session's data lines.
        format: Format,
        /// The client's last-sent sequence number, when reconnecting.
        resume: Option<u64>,
    },
    /// `end` — close the tenant stream; the daemon replies with the
    /// replay-summary JSON.
    End,
    /// `ping` — liveness probe; the daemon replies `pong`.
    Ping,
    /// `shutdown` — drain every session, flush outputs, exit 0.
    Shutdown,
}

/// One classified wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// A recognized control line.
    Control(Control),
    /// A malformed control line (`hello` with a bad tenant, say) —
    /// counted as a protocol error, never fed to the codecs.
    BadControl(String),
    /// Anything else: a candidate telemetry/span line for the codecs.
    Data,
    /// Empty (keep-alive) line; ignored.
    Blank,
}

/// `true` for names safe to appear in file names and Prometheus labels:
/// 1–64 chars drawn from `[A-Za-z0-9._-]`, not starting with a dot or
/// dash.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && !name.starts_with(['.', '-'])
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Classifies one line (without its trailing newline).
///
/// Control keywords claim the line only when they are the whole first
/// token, so telemetry data — which always starts `{` or a digit (CSV)
/// or is a known header — can never be shadowed.
pub fn classify(line: &str) -> Line {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    if trimmed.is_empty() {
        return Line::Blank;
    }
    let mut words = trimmed.split_ascii_whitespace();
    match words.next() {
        Some("hello") => {
            let Some(tenant) = words.next() else {
                return Line::BadControl("hello requires a tenant name".to_string());
            };
            if !valid_tenant(tenant) {
                return Line::BadControl(format!("invalid tenant name {tenant:?}"));
            }
            let mut format = Format::Jsonl;
            let mut next = words.next();
            if let Some(name) = next {
                if name != "resume" {
                    match Format::from_name(name) {
                        Some(f) => format = f,
                        None => return Line::BadControl(format!("unknown format {name:?}")),
                    }
                    next = words.next();
                }
            }
            let resume = match next {
                None => None,
                Some("resume") => {
                    let Some(seq) = words.next().and_then(|s| s.parse::<u64>().ok()) else {
                        return Line::BadControl("resume requires a sequence number".to_string());
                    };
                    Some(seq)
                }
                Some(extra) => {
                    return Line::BadControl(format!("unexpected hello argument {extra:?}"))
                }
            };
            if words.next().is_some() {
                return Line::BadControl("hello takes at most four arguments".to_string());
            }
            Line::Control(Control::Hello {
                tenant: tenant.to_string(),
                format,
                resume,
            })
        }
        Some("end") if words.next().is_none() => Line::Control(Control::End),
        Some("ping") if words.next().is_none() => Line::Control(Control::Ping),
        Some("shutdown") if words.next().is_none() => Line::Control(Control::Shutdown),
        Some("end" | "ping" | "shutdown") => {
            Line::BadControl(format!("control line takes no arguments: {trimmed:?}"))
        }
        _ => Line::Data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_lines_parse() {
        assert_eq!(
            classify("hello acme\n"),
            Line::Control(Control::Hello {
                tenant: "acme".to_string(),
                format: Format::Jsonl,
                resume: None,
            })
        );
        assert_eq!(
            classify("hello rack-farm.eu csv"),
            Line::Control(Control::Hello {
                tenant: "rack-farm.eu".to_string(),
                format: Format::Csv,
                resume: None,
            })
        );
        assert_eq!(classify("end"), Line::Control(Control::End));
        assert_eq!(classify("ping\r\n"), Line::Control(Control::Ping));
        assert_eq!(classify("shutdown"), Line::Control(Control::Shutdown));
        assert_eq!(classify(""), Line::Blank);
    }

    #[test]
    fn hello_resume_parses_with_and_without_format() {
        assert_eq!(
            classify("hello acme resume 42"),
            Line::Control(Control::Hello {
                tenant: "acme".to_string(),
                format: Format::Jsonl,
                resume: Some(42),
            })
        );
        assert_eq!(
            classify("hello acme csv resume 0"),
            Line::Control(Control::Hello {
                tenant: "acme".to_string(),
                format: Format::Csv,
                resume: Some(0),
            })
        );
        assert!(matches!(classify("hello acme resume"), Line::BadControl(_)));
        assert!(matches!(
            classify("hello acme resume -3"),
            Line::BadControl(_)
        ));
        assert!(matches!(
            classify("hello acme csv resume 1 extra"),
            Line::BadControl(_)
        ));
    }

    #[test]
    fn bad_control_lines_are_flagged_not_fed_to_codecs() {
        assert!(matches!(classify("hello"), Line::BadControl(_)));
        assert!(matches!(classify("hello ../evil"), Line::BadControl(_)));
        assert!(matches!(classify("hello a b c"), Line::BadControl(_)));
        assert!(matches!(classify("hello acme xml"), Line::BadControl(_)));
        assert!(matches!(classify("end now"), Line::BadControl(_)));
    }

    #[test]
    fn telemetry_and_span_lines_are_data() {
        assert_eq!(classify("{\"t\":0,\"m\":\"a.x\",\"v\":1}"), Line::Data);
        assert_eq!(classify("{\"id\":0,\"n\":\"attack.drain\"}"), Line::Data);
        assert_eq!(classify("time_ms,record,name,source,value"), Line::Data);
        assert_eq!(classify("100,sample,rack-00.draw_w,,123.4"), Line::Data);
        // A malformed data line is still Data: the codec reports it.
        assert_eq!(classify("garbage but not a keyword"), Line::Data);
    }

    #[test]
    fn tenant_charset_is_path_and_label_safe() {
        assert!(valid_tenant("acme"));
        assert!(valid_tenant("t_0.east-1"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant(".hidden"));
        assert!(!valid_tenant("-flag"));
        assert!(!valid_tenant("a/b"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }
}
