//! The daemon's accept loop, graceful drain, and output flush.
//!
//! Std-only concurrency: listeners run non-blocking and are polled at
//! a few-millisecond cadence; every accepted connection gets its own
//! thread with a short read timeout so it can observe the shutdown
//! flag between reads. A `shutdown` control line (no signal handling —
//! the control path works identically over TCP and Unix sockets) stops
//! the accept loop, drains every open session, flushes per-tenant
//! outputs plus `daemon_report.json` to `--out`, and returns cleanly.

use std::io::{self, Write as _};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use pad::pipeline::PipelineConfig;
use simkit::alert::AlertRule;
use simkit::telemetry::render_parsed;

use crate::http::{handle_http, render_alerts_doc};
use crate::session::run_session;
use crate::state::{Counters, DaemonState};

/// How long a session read blocks before re-checking the shutdown
/// flag. Short enough that a drain completes promptly, long enough to
/// keep the idle poll cost negligible.
pub const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Accept-loop poll cadence while both listeners are idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// What to bind and where to flush.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// TCP address for the telemetry stream listener (`host:port`;
    /// port 0 picks a free one). Defaults to `127.0.0.1:0` when no
    /// Unix socket is requested either.
    pub listen: Option<String>,
    /// Unix socket path for the telemetry stream listener.
    pub uds: Option<PathBuf>,
    /// TCP address for the HTTP endpoint (`/metrics`, incident API).
    pub http: Option<String>,
    /// Directory for the shutdown flush (per-tenant outputs plus
    /// `daemon_report.json`).
    pub out: Option<PathBuf>,
    /// File to write the bound addresses to, one `name addr` pair per
    /// line — how scripts discover port-0 allocations.
    pub ports_file: Option<PathBuf>,
    /// Pipeline knobs applied to every tenant.
    pub config: PipelineConfig,
    /// Alert rules for every tenant monitor; `None` runs
    /// [`pad::pipeline::default_alert_rules`].
    pub alert_rules: Option<Vec<AlertRule>>,
    /// Directory for per-tenant crash-recovery checkpoints. When set,
    /// the daemon restores every `<tenant>.ckpt` found at startup and
    /// rewrites checkpoints at detector-tick boundaries.
    pub state_dir: Option<PathBuf>,
    /// Per-tenant buffered-line watermark before overload shedding;
    /// `None` uses [`crate::state::MAX_BUFFERED_LINES_DEFAULT`].
    pub max_buffered_lines: Option<usize>,
    /// Close sessions that stay silent this long; `None` never reaps.
    pub idle_timeout: Option<Duration>,
}

/// Runs the daemon until a `shutdown` control line arrives; returns
/// after the drain and flush complete.
pub fn serve(opts: ServeOptions) -> io::Result<()> {
    let mut state = match opts.alert_rules.clone() {
        Some(rules) => DaemonState::with_rules(opts.config, rules, true),
        None => DaemonState::new(opts.config),
    };
    state.state_dir = opts.state_dir.clone();
    if let Some(max) = opts.max_buffered_lines {
        state.max_buffered_lines = max;
    }
    state.idle_timeout = opts.idle_timeout;
    if let Some(dir) = &state.state_dir {
        std::fs::create_dir_all(dir)?;
        let restored = state.load_checkpoints()?;
        if restored > 0 {
            println!("padsimd: restored {restored} tenant checkpoint(s)");
        }
    }
    let state = Arc::new(state);
    let data_listener = match (&opts.listen, &opts.uds) {
        (Some(addr), _) => Some(bind_tcp(addr)?),
        (None, None) => Some(bind_tcp("127.0.0.1:0")?),
        (None, Some(_)) => None,
    };
    let uds_listener = match &opts.uds {
        Some(path) => Some(bind_uds(path)?),
        None => None,
    };
    let http_listener = match &opts.http {
        Some(addr) => Some(bind_tcp(addr)?),
        None => None,
    };

    let mut ports = String::new();
    if let Some(listener) = &data_listener {
        ports.push_str(&format!("data {}\n", listener.local_addr()?));
    }
    if let Some(path) = &opts.uds {
        ports.push_str(&format!("uds {}\n", path.display()));
    }
    if let Some(listener) = &http_listener {
        ports.push_str(&format!("http {}\n", listener.local_addr()?));
    }
    if let Some(path) = &opts.ports_file {
        std::fs::write(path, &ports)?;
    }
    print!("padsimd: serving\n{ports}");
    io::stdout().flush()?;
    state.set_ready(true);
    state.log_event("ready", "", "listeners bound");

    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        let mut accepted = false;
        if let Some(listener) = &data_listener {
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_TIMEOUT))?;
                    let state = state.clone();
                    workers.push(thread::spawn(move || {
                        if let Err(e) = run_session(stream, &state) {
                            eprintln!("padsimd: session error: {e}");
                        }
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => eprintln!("padsimd: accept error: {e}"),
            }
        }
        #[cfg(unix)]
        if let Some(listener) = &uds_listener {
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_TIMEOUT))?;
                    let state = state.clone();
                    workers.push(thread::spawn(move || {
                        if let Err(e) = run_session(stream, &state) {
                            eprintln!("padsimd: session error: {e}");
                        }
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => eprintln!("padsimd: accept error: {e}"),
            }
        }
        if let Some(listener) = &http_listener {
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_TIMEOUT))?;
                    let state = state.clone();
                    workers.push(thread::spawn(move || {
                        if let Err(e) = handle_http(stream, &state) {
                            eprintln!("padsimd: http error: {e}");
                        }
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => eprintln!("padsimd: accept error: {e}"),
            }
        }
        if !accepted {
            thread::sleep(ACCEPT_POLL);
            // Reap finished workers so a long-lived daemon's handle
            // list stays bounded by its *concurrent* session count.
            workers.retain(|handle| !handle.is_finished());
        }
    }

    // Drain: listeners drop (no new connections), every session thread
    // observes the flag within one read timeout and finalizes its
    // tenant stream.
    state.set_ready(false);
    state.log_event("drain", "", "shutdown requested");
    drop(data_listener);
    drop(http_listener);
    #[cfg(unix)]
    drop(uds_listener);
    #[cfg(not(unix))]
    let _ = uds_listener;
    for handle in workers {
        let _ = handle.join();
    }
    if let Some(path) = &opts.uds {
        let _ = std::fs::remove_file(path);
    }
    if let Some(dir) = &opts.out {
        flush_outputs(&state, dir)?;
    }
    println!("padsimd: drained and flushed, exiting");
    Ok(())
}

fn bind_tcp(addr: &str) -> io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

#[cfg(unix)]
type UdsListener = std::os::unix::net::UnixListener;
#[cfg(not(unix))]
type UdsListener = std::convert::Infallible;

#[cfg(unix)]
fn bind_uds(path: &PathBuf) -> io::Result<UdsListener> {
    // A stale socket file from a crashed run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

#[cfg(not(unix))]
fn bind_uds(_path: &PathBuf) -> io::Result<UdsListener> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "unix sockets are not available on this platform",
    ))
}

/// Writes the shutdown flush: per tenant, the replay summary, firing
/// log, incident report, alert document, and re-serialized telemetry
/// (each byte-identical to the offline pipeline's output for the same
/// records), plus the aggregate `alerts.json` and a
/// `daemon_report.json` of the self-metrics, alert state, and ops log.
pub fn flush_outputs(state: &DaemonState, dir: &PathBuf) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    // Close every stream first so alert state is final (the monitor's
    // last tick evaluated) before anything renders, and forward any
    // transitions that fire at finalization into the ops log.
    for (name, tenant) in state.tenants() {
        let mut guard = tenant.lock().expect("tenant lock");
        guard.finalize();
        let transitions = guard.take_transitions();
        drop(guard);
        for ev in transitions {
            state.log_event(
                if ev.fired {
                    "alert_fired"
                } else {
                    "alert_resolved"
                },
                &name,
                &format!("{} t={} value={}", ev.rule, ev.time_ms, ev.value),
            );
        }
    }
    let alerts_doc = render_alerts_doc(state);
    std::fs::write(dir.join("alerts.json"), &alerts_doc)?;

    let mut report = String::from("{");
    let c = &state.counters;
    report.push_str(&format!(
        "\"sessions_opened\":{},\"sessions_closed\":{},\"records\":{},\
         \"spans\":{},\"parse_errors\":{},\"http_requests\":{}",
        Counters::get(&c.sessions_opened),
        Counters::get(&c.sessions_closed),
        Counters::get(&c.records),
        Counters::get(&c.spans),
        Counters::get(&c.parse_errors),
        Counters::get(&c.http_requests),
    ));
    report.push_str(",\"tenants\":[");
    let mut alerts_firing = 0;
    for (i, (name, tenant)) in state.tenants().into_iter().enumerate() {
        let mut guard = tenant.lock().expect("tenant lock");
        let summary = guard.finalize().clone();
        std::fs::write(dir.join(format!("{name}.detect.json")), summary.to_json())?;
        std::fs::write(
            dir.join(format!("{name}.firings.txt")),
            summary.render_firings(),
        )?;
        std::fs::write(
            dir.join(format!("{name}.incidents.json")),
            guard.incidents_json(),
        )?;
        let ext = guard.format.extension();
        std::fs::write(
            dir.join(format!("{name}.telemetry.{ext}")),
            render_parsed(&guard.records, guard.format),
        )?;
        let mut alert_events = 0;
        if let Some(doc) = guard.alerts_json() {
            std::fs::write(dir.join(format!("{name}.alerts.json")), doc)?;
        }
        if let Some(mon) = guard.monitor() {
            alert_events = mon.engine().events().len();
            alerts_firing += mon.engine().firing_count();
        }
        if i > 0 {
            report.push(',');
        }
        report.push_str(&format!(
            "\n{{\"tenant\":\"{name}\",\"records\":{},\"spans\":{},\"parse_errors\":{},\
             \"sessions\":{},\"level\":{},\"alert_events\":{alert_events}}}",
            guard.records.len(),
            guard.spans.len(),
            guard.parse_errors,
            guard.sessions,
            guard.level().number(),
        ));
    }
    report.push_str(&format!(
        "],\"alerts_firing\":{alerts_firing},\"ops_log_dropped\":{},\"ops_log\":{}}}\n",
        state.with_ops_log(|log| log.dropped()),
        state.with_ops_log(|log| log.render_json_array()),
    ));
    std::fs::write(dir.join("daemon_report.json"), report)
}
