//! Client helpers for the `padsimd send` / `padsimd get` subcommands
//! (and the test suites): stream a recorded trace into a daemon and
//! fetch HTTP API documents, with no external tooling.
//!
//! Two send paths: [`send`] is the classic one-shot streamer (write
//! everything, half-close, read every reply), and [`send_resumable`]
//! is the crash-tolerant path — it opens with
//! `hello <tenant> <format> resume <seq>`, rewinds its send buffer to
//! the daemon's acked durable sequence number, and reconnects with
//! bounded deterministic exponential backoff on any wire failure, so a
//! daemon kill-and-restart mid-stream costs neither a replayed nor a
//! dropped line.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use simkit::telemetry::{is_csv_header, CSV_HEADER};
use simkit::trace::{is_span_csv_header, SPAN_CSV_HEADER};

/// A connected stream socket — TCP, or a Unix socket when the target
/// is `unix:<path>`.
#[derive(Debug)]
pub enum Conn {
    /// TCP connection (`host:port` target).
    Tcp(TcpStream),
    /// Unix-socket connection (`unix:<path>` target).
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    /// Connects to `host:port`, or `unix:<path>` for a Unix socket.
    pub fn connect(target: &str) -> io::Result<Conn> {
        if let Some(path) = target.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                return Ok(Conn::Unix(std::os::unix::net::UnixStream::connect(path)?));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        Ok(Conn::Tcp(TcpStream::connect(target)?))
    }

    /// Half-closes the write side so the daemon sees EOF and drains the
    /// session, while replies stay readable.
    pub fn finish_writes(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.shutdown(Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.shutdown(Shutdown::Write),
        }
    }

    /// Sets the read timeout, so reply reads cannot hang forever on a
    /// wedged daemon.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
        }
    }
}

/// One trace to stream as a session.
#[derive(Debug, Clone, Default)]
pub struct SendJob {
    /// Tenant name for the `hello` line.
    pub tenant: String,
    /// Format token for the `hello` line (`jsonl`/`csv`).
    pub format: &'static str,
    /// Telemetry trace text (full file, trailing newline included).
    pub telemetry: String,
    /// Optional span trace text, streamed after the telemetry.
    pub spans: Option<String>,
    /// Send `end` (expect the summary reply) after the data.
    pub end: bool,
    /// Send `shutdown` as the final line.
    pub shutdown: bool,
}

/// Streams `job` over `target` and returns every reply line the daemon
/// sent (hello ack, summary JSON, error lines, shutdown ack).
pub fn send(target: &str, job: &SendJob) -> io::Result<Vec<String>> {
    let mut conn = Conn::connect(target)?;
    if !job.tenant.is_empty() {
        writeln!(conn, "hello {} {}", job.tenant, job.format)?;
        conn.write_all(job.telemetry.as_bytes())?;
        if let Some(spans) = &job.spans {
            conn.write_all(spans.as_bytes())?;
        }
        if job.end {
            writeln!(conn, "end")?;
        }
    }
    if job.shutdown {
        writeln!(conn, "shutdown")?;
    }
    conn.flush()?;
    conn.finish_writes()?;
    let mut replies = String::new();
    conn.read_to_string(&mut replies)?;
    Ok(replies.lines().map(str::to_string).collect())
}

/// Reconnect policy for [`send_resumable`]: attempt `k` (0-based)
/// sleeps `min(base_delay_ms << k, 2000)` milliseconds first — bounded
/// and deterministic, no jitter, so test runs and chaos reports are
/// reproducible.
#[derive(Debug, Clone)]
pub struct RetryOpts {
    /// Total connection attempts before giving up.
    pub max_attempts: u32,
    /// Backoff base, in milliseconds.
    pub base_delay_ms: u64,
}

impl Default for RetryOpts {
    fn default() -> Self {
        RetryOpts {
            max_attempts: 8,
            base_delay_ms: 50,
        }
    }
}

impl RetryOpts {
    /// The deterministic backoff before attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let ms = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(2000);
        Duration::from_millis(ms)
    }
}

/// How long a reply read may block before the attempt counts as failed.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// Reads one newline-terminated reply line (without the newline).
fn read_reply_line(conn: &mut Conn) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match conn.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a reply line",
                    ));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > 64 * 1024 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "reply line exceeds 64 KiB",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&line)
        .trim_end_matches('\r')
        .to_string())
}

/// Connects and re-attaches to `tenant`'s stream via
/// `hello <tenant> <format> resume <client_seq>`, returning the
/// connection and the daemon's acked durable sequence number.
///
/// Error kinds are meaningful to the retry loop: `InvalidData` carries
/// a daemon `err …` rejection (fatal — retrying cannot help), and
/// `WouldBlock` carries a `busy retry-after` refusal (retryable).
pub fn open_resume(
    target: &str,
    tenant: &str,
    format: &str,
    client_seq: u64,
) -> io::Result<(Conn, u64)> {
    let mut conn = Conn::connect(target)?;
    conn.set_read_timeout(Some(REPLY_TIMEOUT))?;
    writeln!(conn, "hello {tenant} {format} resume {client_seq}")?;
    conn.flush()?;
    let reply = read_reply_line(&mut conn)?;
    if let Some(rest) = reply.strip_prefix(&format!("ok hello {tenant} seq ")) {
        let seq = rest.trim().parse::<u64>().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed resume ack {reply:?}"),
            )
        })?;
        return Ok((conn, seq));
    }
    if reply.starts_with("busy retry-after ") {
        return Err(io::Error::new(io::ErrorKind::WouldBlock, reply));
    }
    let message = reply.strip_prefix("err ").unwrap_or(&reply).to_string();
    Err(io::Error::new(io::ErrorKind::InvalidData, message))
}

/// A [`SendJob`]'s payload normalized into resumable units: the data
/// lines the daemon's sequence number counts, with CSV headers (which
/// buffer nothing and advance nothing) held separately for re-emission
/// after a rewind.
struct WireData {
    csv: bool,
    telemetry: Vec<String>,
    spans: Vec<String>,
}

impl WireData {
    fn from_job(job: &SendJob) -> WireData {
        let csv = job.format == "csv";
        let data_lines = |text: &str, header: fn(&str) -> bool| {
            text.lines()
                .filter(|l| !(l.trim().is_empty() || csv && header(l)))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        let header_pair = |l: &str| is_csv_header(l) || is_span_csv_header(l);
        WireData {
            csv,
            telemetry: data_lines(&job.telemetry, header_pair),
            spans: job
                .spans
                .as_deref()
                .map(|text| data_lines(text, header_pair))
                .unwrap_or_default(),
        }
    }

    fn total(&self) -> u64 {
        (self.telemetry.len() + self.spans.len()) as u64
    }

    /// Streams every data line from sequence `seq` on, re-emitting the
    /// CSV block headers the rewound tail needs.
    fn write_from<W: Write>(&self, w: &mut W, seq: u64) -> io::Result<()> {
        let seq = seq as usize;
        if seq < self.telemetry.len() {
            if self.csv {
                w.write_all(CSV_HEADER.as_bytes())?;
            }
            for line in &self.telemetry[seq..] {
                writeln!(w, "{line}")?;
            }
        }
        let span_start = seq.saturating_sub(self.telemetry.len());
        if span_start < self.spans.len() {
            if self.csv {
                w.write_all(SPAN_CSV_HEADER.as_bytes())?;
            }
            for line in &self.spans[span_start..] {
                writeln!(w, "{line}")?;
            }
        }
        w.flush()
    }
}

/// Streams `job` with crash tolerance: every wire failure (connect,
/// write, or reply read) reconnects with `hello … resume`, rewinds to
/// the daemon's acked sequence number, and re-sends only what the
/// daemon has not durably consumed. A daemon `err` rejection of the
/// hello is fatal and returned as `InvalidData` carrying the daemon's
/// message.
pub fn send_resumable(target: &str, job: &SendJob, opts: &RetryOpts) -> io::Result<Vec<String>> {
    let data = WireData::from_job(job);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..opts.max_attempts {
        if attempt > 0 {
            std::thread::sleep(opts.delay(attempt - 1));
        }
        let mut replies = Vec::new();
        let (mut conn, seq) = match open_resume(target, &job.tenant, job.format, data.total()) {
            Ok(ok) => ok,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        replies.push(format!("ok hello {} seq {seq}", job.tenant));
        if let Err(e) = data.write_from(&mut conn, seq) {
            last_err = Some(e);
            continue;
        }
        if job.end {
            let summary = writeln!(conn, "end")
                .and_then(|()| conn.flush())
                .and_then(|()| read_reply_line(&mut conn));
            match summary {
                Ok(reply) if reply.starts_with("err ") => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, reply))
                }
                Ok(reply) => replies.push(reply),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            }
        }
        if job.shutdown {
            writeln!(conn, "shutdown")?;
            conn.flush()?;
            if let Ok(ack) = read_reply_line(&mut conn) {
                replies.push(ack);
            }
        }
        return Ok(replies);
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("send failed before the first attempt")))
}

/// Fetches `path` from the daemon's HTTP endpoint at `addr` and
/// returns `(status_line, body)`.
pub fn http_get(addr: &str, path: &str) -> io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    let body = match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}
