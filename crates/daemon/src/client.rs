//! Client helpers for the `padsimd send` / `padsimd get` subcommands
//! (and the test suites): stream a recorded trace into a daemon and
//! fetch HTTP API documents, with no external tooling.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};

/// A connected stream socket — TCP, or a Unix socket when the target
/// is `unix:<path>`.
#[derive(Debug)]
pub enum Conn {
    /// TCP connection (`host:port` target).
    Tcp(TcpStream),
    /// Unix-socket connection (`unix:<path>` target).
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    /// Connects to `host:port`, or `unix:<path>` for a Unix socket.
    pub fn connect(target: &str) -> io::Result<Conn> {
        if let Some(path) = target.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                return Ok(Conn::Unix(std::os::unix::net::UnixStream::connect(path)?));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        Ok(Conn::Tcp(TcpStream::connect(target)?))
    }

    /// Half-closes the write side so the daemon sees EOF and drains the
    /// session, while replies stay readable.
    pub fn finish_writes(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.shutdown(Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.shutdown(Shutdown::Write),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
        }
    }
}

/// One trace to stream as a session.
#[derive(Debug, Clone, Default)]
pub struct SendJob {
    /// Tenant name for the `hello` line.
    pub tenant: String,
    /// Format token for the `hello` line (`jsonl`/`csv`).
    pub format: &'static str,
    /// Telemetry trace text (full file, trailing newline included).
    pub telemetry: String,
    /// Optional span trace text, streamed after the telemetry.
    pub spans: Option<String>,
    /// Send `end` (expect the summary reply) after the data.
    pub end: bool,
    /// Send `shutdown` as the final line.
    pub shutdown: bool,
}

/// Streams `job` over `target` and returns every reply line the daemon
/// sent (hello ack, summary JSON, error lines, shutdown ack).
pub fn send(target: &str, job: &SendJob) -> io::Result<Vec<String>> {
    let mut conn = Conn::connect(target)?;
    if !job.tenant.is_empty() {
        writeln!(conn, "hello {} {}", job.tenant, job.format)?;
        conn.write_all(job.telemetry.as_bytes())?;
        if let Some(spans) = &job.spans {
            conn.write_all(spans.as_bytes())?;
        }
        if job.end {
            writeln!(conn, "end")?;
        }
    }
    if job.shutdown {
        writeln!(conn, "shutdown")?;
    }
    conn.flush()?;
    conn.finish_writes()?;
    let mut replies = String::new();
    conn.read_to_string(&mut replies)?;
    Ok(replies.lines().map(str::to_string).collect())
}

/// Fetches `path` from the daemon's HTTP endpoint at `addr` and
/// returns `(status_line, body)`.
pub fn http_get(addr: &str, path: &str) -> io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    let body = match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}
