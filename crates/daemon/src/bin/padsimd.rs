//! `padsimd` — the PAD defense daemon: stream telemetry in, get
//! verdicts, metrics, and incident reports out.
//!
//! ```text
//! padsimd serve --listen 127.0.0.1:0 --http 127.0.0.1:0 --out out/ --ports-file ports.txt
//! padsimd send 127.0.0.1:4800 out/pad.jsonl --tenant acme
//! padsimd get 127.0.0.1:4801 /metrics
//! padsimd send 127.0.0.1:4800 --shutdown
//! ```

use std::path::PathBuf;
use std::time::Duration;

use pad::pipeline::PipelineConfig;
use pad::policy::Strictness;
use paddaemon::chaos::{run_chaos, ChaosOptions};
use paddaemon::client::{http_get, send, send_resumable, RetryOpts, SendJob};
use paddaemon::server::{serve, ServeOptions};
use simkit::telemetry::Format;

const USAGE: &str = "\
padsimd — PAD defense-as-a-service daemon over telemetry streams

USAGE:
    padsimd serve [SERVE OPTIONS]
    padsimd send <target> [<telemetry-file>] [SEND OPTIONS]
    padsimd get <http-addr> <path>
    padsimd chaos [CHAOS OPTIONS]

SUBCOMMANDS:
    serve                        run the daemon until a shutdown control
                                 line arrives, then drain sessions, flush
                                 per-tenant outputs, and exit 0.
                                 --listen <host:port>   telemetry stream
                                                        listener (default
                                                        127.0.0.1:0)
                                 --uds <path>           also listen on a
                                                        Unix socket
                                 --http <host:port>     HTTP endpoint
                                                        (/metrics, tenant
                                                        and incident API)
                                 --out <dir>            shutdown flush dir
                                 --ports-file <file>    write bound
                                                        addresses (name
                                                        addr per line)
                                 --hold-down <ticks>    policy hold-down
                                 --strictness <strict|lenient>
                                 --alerts <rules.json>  alert rules for
                                                        every tenant
                                                        monitor (default:
                                                        built-in rules;
                                                        see `padsim
                                                        inspect
                                                        --alert-schema`)
                                 --state-dir <dir>      write per-tenant
                                                        crash-recovery
                                                        checkpoints here
                                                        and restore them
                                                        at startup
                                 --max-buffered <n>     per-tenant line
                                                        watermark before
                                                        overload shedding
                                 --idle-timeout <ms>    reap sessions
                                                        silent this long
    send                         stream a recorded trace as one tenant
                                 session and print the daemon's replies.
                                 <target> is host:port or unix:<path>.
                                 Exits 1 printing the daemon's error
                                 when the hello is rejected.
                                 --tenant <name>        tenant (default
                                                        tenant-0)
                                 --format <jsonl|csv>   wire format
                                                        (default: from
                                                        file extension)
                                 --spans <file>         span trace to
                                                        stream after the
                                                        telemetry
                                 --no-end               leave the stream
                                                        open (no summary)
                                 --shutdown             finish with a
                                                        shutdown control
                                                        line
                                 --resume               crash-tolerant
                                                        path: reconnect
                                                        with `hello …
                                                        resume <seq>` and
                                                        rewind to the
                                                        daemon's acked
                                                        sequence number
                                 --retries <n>          reconnect budget
                                                        for --resume
                                                        (default 8)
    get                          HTTP GET against a running daemon and
                                 print the body (exit 1 on non-200).
    chaos                        wire-level fault injection: run daemon
                                 kill/restart and proxy-fault scenarios,
                                 diff recovered outputs against an
                                 uninterrupted baseline, and write
                                 chaos_report.json. Exits nonzero when a
                                 lossless scenario's outputs differ.
                                 --ci-smoke             run the built-in
                                                        scenario set
                                 --out <dir>            scratch/report
                                                        dir (default
                                                        chaos-out/)
                                 --seed <n>             trace seed

The wire protocol is line-oriented: `hello <tenant> [jsonl|csv]`
(append `resume <seq>` to re-attach after a disconnect; the ack
`ok hello <tenant> seq <S>` names the daemon's durable sequence
number), then telemetry/span lines exactly as recorded by padsim
(`--telemetry` / `--trace` output streams verbatim), then `end`. The
`end` reply is the replay-summary JSON, byte-identical to `padsim
detect --replay --json` on the same records.
";

fn fail(message: &str) -> ! {
    eprintln!("padsimd: {message}");
    eprintln!("run `padsimd --help` for usage");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => run_serve(args),
        Some("send") => run_send(args),
        Some("get") => run_get(args),
        Some("chaos") => run_chaos_cmd(args),
        Some("-h" | "--help") => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown subcommand {other:?}")),
        None => fail("a subcommand is required (serve, send, get, chaos)"),
    }
}

fn run_chaos_cmd(mut it: impl Iterator<Item = String>) {
    let mut opts = ChaosOptions::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--ci-smoke" => opts.ci_smoke = true,
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"))
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown chaos argument {other:?}")),
        }
    }
    let daemon = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("cannot locate the padsimd binary: {e}")));
    opts.daemon_bin = daemon;
    match run_chaos(&opts) {
        Ok(report) => {
            print!("{}", report.render_text());
            if !report.all_lossless_identical() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("padsimd: chaos harness error: {e}");
            std::process::exit(1);
        }
    }
}

fn run_serve(mut it: impl Iterator<Item = String>) {
    let mut opts = ServeOptions::default();
    let mut config = PipelineConfig::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--listen" => opts.listen = Some(value("--listen")),
            "--uds" => opts.uds = Some(PathBuf::from(value("--uds"))),
            "--http" => opts.http = Some(value("--http")),
            "--out" => opts.out = Some(PathBuf::from(value("--out"))),
            "--ports-file" => opts.ports_file = Some(PathBuf::from(value("--ports-file"))),
            "--hold-down" => {
                config.hold_down = value("--hold-down")
                    .parse()
                    .unwrap_or_else(|_| fail("--hold-down expects a tick count"))
            }
            "--strictness" => {
                config.strictness = match value("--strictness").as_str() {
                    "strict" => Strictness::Strict,
                    "lenient" => Strictness::Lenient,
                    other => fail(&format!("unknown strictness {other:?}")),
                }
            }
            "--alerts" => {
                let path = value("--alerts");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                let rules = simkit::alert::parse_rules(&text)
                    .unwrap_or_else(|e| fail(&format!("bad alert rules in {path}: {e}")));
                opts.alert_rules = Some(rules);
            }
            "--state-dir" => opts.state_dir = Some(PathBuf::from(value("--state-dir"))),
            "--max-buffered" => {
                opts.max_buffered_lines = Some(
                    value("--max-buffered")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-buffered expects a line count")),
                )
            }
            "--idle-timeout" => {
                opts.idle_timeout = Some(Duration::from_millis(
                    value("--idle-timeout")
                        .parse()
                        .unwrap_or_else(|_| fail("--idle-timeout expects milliseconds")),
                ))
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown serve argument {other:?}")),
        }
    }
    opts.config = config;
    if let Err(e) = serve(opts) {
        eprintln!("padsimd: {e}");
        std::process::exit(1);
    }
}

fn run_send(mut it: impl Iterator<Item = String>) {
    let mut target: Option<String> = None;
    let mut file: Option<PathBuf> = None;
    let mut job = SendJob {
        tenant: "tenant-0".to_string(),
        format: "jsonl",
        end: true,
        ..SendJob::default()
    };
    let mut format_given = false;
    let mut spans_file: Option<PathBuf> = None;
    let mut resume = false;
    let mut retries = RetryOpts::default();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--tenant" => job.tenant = value("--tenant"),
            "--format" => {
                let name = value("--format");
                job.format = match Format::from_name(&name) {
                    Some(Format::Jsonl) => "jsonl",
                    Some(Format::Csv) => "csv",
                    None => fail(&format!("unknown format {name:?}")),
                };
                format_given = true;
            }
            "--spans" => spans_file = Some(PathBuf::from(value("--spans"))),
            "--no-end" => job.end = false,
            "--shutdown" => job.shutdown = true,
            "--resume" => resume = true,
            "--retries" => {
                retries.max_attempts = value("--retries")
                    .parse()
                    .unwrap_or_else(|_| fail("--retries expects an attempt count"))
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other if !other.starts_with('-') && target.is_none() => target = Some(arg),
            other if !other.starts_with('-') && file.is_none() => file = Some(PathBuf::from(other)),
            other => fail(&format!("unknown send argument {other:?}")),
        }
    }
    let target =
        target.unwrap_or_else(|| fail("send requires a <target> (host:port or unix:<path>)"));
    match &file {
        Some(path) => {
            job.telemetry = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
            if !format_given && Format::from_path(&path.to_string_lossy()) == Format::Csv {
                job.format = "csv";
            }
        }
        None => {
            if !job.shutdown {
                fail("send requires a <telemetry-file> (or --shutdown)");
            }
            job.tenant = String::new();
        }
    }
    if let Some(path) = &spans_file {
        job.spans = Some(
            std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display()))),
        );
    }
    let result = if resume {
        send_resumable(&target, &job, &retries)
    } else {
        send(&target, &job)
    };
    match result {
        Ok(replies) => {
            // A rejected hello surfaces as an `err …` reply line on the
            // one-shot path: print it to stderr and exit nonzero so
            // scripts see the failure.
            let rejected = replies.iter().any(|line| line.starts_with("err "));
            for line in &replies {
                if line.starts_with("err ") {
                    eprintln!("padsimd: {line}");
                } else {
                    println!("{line}");
                }
            }
            if rejected {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("padsimd: {e}");
            std::process::exit(1);
        }
    }
}

fn run_get(mut it: impl Iterator<Item = String>) {
    let addr = it
        .next()
        .unwrap_or_else(|| fail("get requires an <http-addr>"));
    if addr == "-h" || addr == "--help" {
        println!("{USAGE}");
        return;
    }
    let path = it.next().unwrap_or_else(|| fail("get requires a <path>"));
    match http_get(&addr, &path) {
        Ok((status, body)) => {
            print!("{body}");
            if !status.contains("200") {
                eprintln!("padsimd: {status}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("padsimd: {e}");
            std::process::exit(1);
        }
    }
}
