//! Deterministic, seed-reproducible fault-injection plans.
//!
//! A [`FaultPlan`] is a named schedule of [`FaultSpec`]s — each one a
//! fault kind, a target unit, and a half-open sim-time window. Plans are
//! pure data: *what* goes wrong and *when*, with no opinion about the
//! system under test. The host simulator queries [`FaultPlan::active_at`]
//! every tick and interprets each kind against its own subsystems
//! (sensors, control links, storage, breakers…).
//!
//! # Determinism contract
//!
//! Stochastic kinds (noise, dropout, message loss…) never carry their own
//! randomness. Instead the host derives one [`RngStream`] per spec (and
//! per unit) from the scenario seed via [`spec_stream`] / [`unit_stream`],
//! exactly like every other consumer of the `(seed, scenario_index)`
//! contract. Forks are stable, so sweeps remain byte-identical across
//! worker counts and a plan replayed from JSON reproduces the same draws.
//!
//! # Wire format
//!
//! Plans round-trip through a compact, versionless JSON document
//! ([`FaultPlan::to_json`] / [`FaultPlan::from_json`]):
//!
//! ```text
//! {"name":"ci-smoke","specs":[
//!   {"kind":"sensor_noise","target":"all","start_ms":0,"end_ms":60000,"std":0.05}
//! ]}
//! ```
//!
//! Numbers use Rust's shortest-round-trip `f64` formatting (the same
//! convention as the telemetry codecs), so serialization is deterministic
//! across platforms.

use crate::jsonio::{Json, JsonParser, ObjFields};
use crate::rng::RngStream;
use crate::time::SimTime;
use std::fmt;

/// What a fault does while its window is active.
///
/// The taxonomy covers three layers: *sensor* faults corrupt readings the
/// control plane sees (never ground truth), *message* faults perturb
/// control-plane delivery, and *component* faults degrade the physical
/// layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Additive Gaussian noise (standard deviation `std`) on a sensor
    /// reading.
    SensorNoise {
        /// Standard deviation of the additive noise.
        std: f64,
    },
    /// Constant additive bias on a sensor reading.
    SensorBias {
        /// Signed offset added to every reading.
        delta: f64,
    },
    /// Sensor reports a frozen constant instead of the true value.
    SensorStuckAt {
        /// The stuck reading.
        value: f64,
    },
    /// Each reading is dropped with probability `p`; the last delivered
    /// value persists at the consumer.
    SensorDropout {
        /// Per-reading drop probability in `[0, 1]`.
        p: f64,
    },
    /// Control messages arrive `rounds` coordinator rounds late.
    MsgDelay {
        /// Delivery delay in whole coordinator rounds (≥ 1).
        rounds: u32,
    },
    /// Each control message is lost with probability `p` per delivery
    /// attempt (the host may retry with backoff).
    MsgLoss {
        /// Per-attempt loss probability in `[0, 1]`.
        p: f64,
    },
    /// Adjacent in-flight control messages swap delivery order with
    /// probability `p`.
    MsgReorder {
        /// Per-pair swap probability in `[0, 1]`.
        p: f64,
    },
    /// The targeted component is offline for the whole window.
    ComponentOutage,
    /// The targeted component's rating is scaled by `factor` in `(0, 1]`.
    ComponentDerate {
        /// Effective-rating multiplier.
        factor: f64,
    },
    /// The targeted store's usable capacity fades to `factor` in `(0, 1]`.
    CapacityFade {
        /// Usable-capacity multiplier.
        factor: f64,
    },
}

impl FaultKind {
    /// Stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SensorNoise { .. } => "sensor_noise",
            FaultKind::SensorBias { .. } => "sensor_bias",
            FaultKind::SensorStuckAt { .. } => "sensor_stuck_at",
            FaultKind::SensorDropout { .. } => "sensor_dropout",
            FaultKind::MsgDelay { .. } => "msg_delay",
            FaultKind::MsgLoss { .. } => "msg_loss",
            FaultKind::MsgReorder { .. } => "msg_reorder",
            FaultKind::ComponentOutage => "outage",
            FaultKind::ComponentDerate { .. } => "derate",
            FaultKind::CapacityFade { .. } => "capacity_fade",
        }
    }

    /// Dense index of the kind (stable; used as a span attribute).
    pub fn index(self) -> usize {
        match self {
            FaultKind::SensorNoise { .. } => 0,
            FaultKind::SensorBias { .. } => 1,
            FaultKind::SensorStuckAt { .. } => 2,
            FaultKind::SensorDropout { .. } => 3,
            FaultKind::MsgDelay { .. } => 4,
            FaultKind::MsgLoss { .. } => 5,
            FaultKind::MsgReorder { .. } => 6,
            FaultKind::ComponentOutage => 7,
            FaultKind::ComponentDerate { .. } => 8,
            FaultKind::CapacityFade { .. } => 9,
        }
    }

    /// `true` for kinds that draw random numbers while active.
    pub fn is_stochastic(self) -> bool {
        matches!(
            self,
            FaultKind::SensorNoise { .. }
                | FaultKind::SensorDropout { .. }
                | FaultKind::MsgLoss { .. }
                | FaultKind::MsgReorder { .. }
        )
    }

    /// Checks the kind's parameters for validity.
    pub fn validate(self) -> Result<(), String> {
        match self {
            FaultKind::SensorNoise { std } => {
                if !std.is_finite() || std < 0.0 {
                    return Err(format!(
                        "sensor_noise std must be finite and >= 0, got {std}"
                    ));
                }
            }
            FaultKind::SensorBias { delta } => {
                if !delta.is_finite() {
                    return Err(format!("sensor_bias delta must be finite, got {delta}"));
                }
            }
            FaultKind::SensorStuckAt { value } => {
                if !value.is_finite() {
                    return Err(format!("sensor_stuck_at value must be finite, got {value}"));
                }
            }
            FaultKind::SensorDropout { p }
            | FaultKind::MsgLoss { p }
            | FaultKind::MsgReorder { p } => {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "{} probability must be in [0,1], got {p}",
                        self.name()
                    ));
                }
            }
            FaultKind::MsgDelay { rounds } => {
                if rounds == 0 {
                    return Err("msg_delay rounds must be >= 1".to_string());
                }
            }
            FaultKind::ComponentOutage => {}
            FaultKind::ComponentDerate { factor } | FaultKind::CapacityFade { factor } => {
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(format!(
                        "{} factor must be in (0,1], got {factor}",
                        self.name()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which unit a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every unit of the relevant subsystem.
    All,
    /// A single unit (e.g. one rack) by index.
    Unit(usize),
}

impl FaultTarget {
    /// `true` if the target covers `unit`.
    pub fn covers(self, unit: usize) -> bool {
        match self {
            FaultTarget::All => true,
            FaultTarget::Unit(u) => u == unit,
        }
    }

    /// Stable wire name (`all` or the decimal unit index).
    pub fn wire(self) -> String {
        match self {
            FaultTarget::All => "all".to_string(),
            FaultTarget::Unit(u) => u.to_string(),
        }
    }

    /// Parses the wire form produced by [`FaultTarget::wire`].
    pub fn from_wire(text: &str) -> Result<FaultTarget, String> {
        if text == "all" {
            return Ok(FaultTarget::All);
        }
        text.parse::<usize>()
            .map(FaultTarget::Unit)
            .map_err(|_| format!("invalid fault target {text:?} (want \"all\" or a unit index)"))
    }
}

/// One scheduled fault: a kind, a target, and a half-open sim-time window
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Which unit it happens to.
    pub target: FaultTarget,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl FaultSpec {
    /// Creates a spec; the window is `[start, end)`.
    pub fn new(kind: FaultKind, target: FaultTarget, start: SimTime, end: SimTime) -> Self {
        FaultSpec {
            kind,
            target,
            start,
            end,
        }
    }

    /// `true` while `now` is inside the window.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }

    /// Checks the spec's window and parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.end <= self.start {
            return Err(format!(
                "fault window must be non-empty: start {} ms >= end {} ms",
                self.start.as_millis(),
                self.end.as_millis()
            ));
        }
        self.kind.validate()
    }
}

/// A named, ordered schedule of fault specs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    name: String,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Creates an empty plan with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FaultPlan {
            name: name.into(),
            specs: Vec::new(),
        }
    }

    /// Builder-style: appends a spec and returns the plan.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Appends a spec.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// The plan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All scheduled specs, in schedule order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no specs are scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates `(index, spec)` pairs whose windows contain `now`.
    pub fn active_at(&self, now: SimTime) -> impl Iterator<Item = (usize, &FaultSpec)> {
        self.specs
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.active_at(now))
    }

    /// Validates every spec, reporting the first error with its index.
    pub fn validate(&self) -> Result<(), String> {
        for (i, spec) in self.specs.iter().enumerate() {
            spec.validate().map_err(|e| format!("spec {i}: {e}"))?;
        }
        Ok(())
    }

    /// Serializes the plan to its canonical single-line JSON form.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"name\":\"{}\",\"specs\":[", self.name);
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"target\":\"{}\",\"start_ms\":{},\"end_ms\":{}",
                spec.kind.name(),
                spec.target.wire(),
                spec.start.as_millis(),
                spec.end.as_millis()
            );
            match spec.kind {
                FaultKind::SensorNoise { std } => {
                    let _ = write!(out, ",\"std\":{std}");
                }
                FaultKind::SensorBias { delta } => {
                    let _ = write!(out, ",\"delta\":{delta}");
                }
                FaultKind::SensorStuckAt { value } => {
                    let _ = write!(out, ",\"value\":{value}");
                }
                FaultKind::SensorDropout { p }
                | FaultKind::MsgLoss { p }
                | FaultKind::MsgReorder { p } => {
                    let _ = write!(out, ",\"p\":{p}");
                }
                FaultKind::MsgDelay { rounds } => {
                    let _ = write!(out, ",\"rounds\":{rounds}");
                }
                FaultKind::ComponentOutage => {}
                FaultKind::ComponentDerate { factor } | FaultKind::CapacityFade { factor } => {
                    let _ = write!(out, ",\"factor\":{factor}");
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a plan from the JSON form produced by [`FaultPlan::to_json`]
    /// (whitespace-tolerant) and validates it.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value = JsonParser::parse_document(text)?;
        let obj = value.as_object("plan")?;
        let name = obj.str_field("name")?.to_string();
        let mut plan = FaultPlan::new(name);
        for (i, item) in obj.arr_field("specs")?.iter().enumerate() {
            let spec = parse_spec(item).map_err(|e| format!("spec {i}: {e}"))?;
            plan.push(spec);
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Canonical per-spec random stream: all randomness of a stochastic fault
/// spec is drawn from `root.fork_indexed("fault", index)`.
pub fn spec_stream(root: &RngStream, index: usize) -> RngStream {
    root.fork_indexed("fault", index)
}

/// Canonical per-spec, per-unit random stream — independent across units
/// so per-rack draws never perturb each other.
pub fn unit_stream(root: &RngStream, index: usize, unit: usize) -> RngStream {
    spec_stream(root, index).fork_indexed("unit", unit)
}

fn parse_spec(value: &Json) -> Result<FaultSpec, String> {
    let obj = value.as_object("spec")?;
    let kind_name = obj.str_field("kind")?;
    let target = FaultTarget::from_wire(obj.str_field("target")?)?;
    let start = SimTime::from_millis(obj.u64_field("start_ms")?);
    let end = SimTime::from_millis(obj.u64_field("end_ms")?);
    let kind = match kind_name {
        "sensor_noise" => FaultKind::SensorNoise {
            std: obj.f64_field("std")?,
        },
        "sensor_bias" => FaultKind::SensorBias {
            delta: obj.f64_field("delta")?,
        },
        "sensor_stuck_at" => FaultKind::SensorStuckAt {
            value: obj.f64_field("value")?,
        },
        "sensor_dropout" => FaultKind::SensorDropout {
            p: obj.f64_field("p")?,
        },
        "msg_delay" => FaultKind::MsgDelay {
            rounds: obj
                .u64_field("rounds")?
                .try_into()
                .map_err(|_| "msg_delay rounds out of range".to_string())?,
        },
        "msg_loss" => FaultKind::MsgLoss {
            p: obj.f64_field("p")?,
        },
        "msg_reorder" => FaultKind::MsgReorder {
            p: obj.f64_field("p")?,
        },
        "outage" => FaultKind::ComponentOutage,
        "derate" => FaultKind::ComponentDerate {
            factor: obj.f64_field("factor")?,
        },
        "capacity_fade" => FaultKind::CapacityFade {
            factor: obj.f64_field("factor")?,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultSpec::new(kind, target, start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new("sample")
            .with(FaultSpec::new(
                FaultKind::SensorNoise { std: 0.05 },
                FaultTarget::All,
                SimTime::from_secs(10),
                SimTime::from_secs(70),
            ))
            .with(FaultSpec::new(
                FaultKind::MsgLoss { p: 0.25 },
                FaultTarget::Unit(1),
                SimTime::from_secs(30),
                SimTime::from_secs(90),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentOutage,
                FaultTarget::Unit(0),
                SimTime::from_secs(40),
                SimTime::from_secs(50),
            ))
            .with(FaultSpec::new(
                FaultKind::MsgDelay { rounds: 2 },
                FaultTarget::All,
                SimTime::from_secs(5),
                SimTime::from_secs(15),
            ))
            .with(FaultSpec::new(
                FaultKind::CapacityFade { factor: 0.7 },
                FaultTarget::All,
                SimTime::ZERO,
                SimTime::from_hours(1),
            ))
    }

    #[test]
    fn windows_are_half_open() {
        let spec = FaultSpec::new(
            FaultKind::ComponentOutage,
            FaultTarget::All,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        assert!(!spec.active_at(SimTime::from_millis(9_999)));
        assert!(spec.active_at(SimTime::from_secs(10)));
        assert!(spec.active_at(SimTime::from_millis(19_999)));
        assert!(!spec.active_at(SimTime::from_secs(20)));
    }

    #[test]
    fn active_at_reports_indices() {
        let plan = sample_plan();
        let at_45: Vec<usize> = plan
            .active_at(SimTime::from_secs(45))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(at_45, vec![0, 1, 2, 4]);
        let at_100: Vec<usize> = plan
            .active_at(SimTime::from_secs(100))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(at_100, vec![4]);
    }

    #[test]
    fn json_round_trips_every_kind() {
        let plan = sample_plan()
            .with(FaultSpec::new(
                FaultKind::SensorBias { delta: -0.1 },
                FaultTarget::Unit(2),
                SimTime::ZERO,
                SimTime::from_secs(1),
            ))
            .with(FaultSpec::new(
                FaultKind::SensorStuckAt { value: 0.42 },
                FaultTarget::All,
                SimTime::ZERO,
                SimTime::from_secs(1),
            ))
            .with(FaultSpec::new(
                FaultKind::SensorDropout { p: 0.5 },
                FaultTarget::All,
                SimTime::ZERO,
                SimTime::from_secs(1),
            ))
            .with(FaultSpec::new(
                FaultKind::MsgReorder { p: 0.125 },
                FaultTarget::All,
                SimTime::ZERO,
                SimTime::from_secs(1),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentDerate { factor: 0.8 },
                FaultTarget::Unit(3),
                SimTime::ZERO,
                SimTime::from_secs(1),
            ));
        let json = plan.to_json();
        let parsed = FaultPlan::from_json(&json).expect("round trip");
        assert_eq!(parsed, plan);
        // Canonical form is a fixed point.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn from_json_tolerates_whitespace() {
        let text = "{\n  \"name\": \"ws\",\n  \"specs\": [\n    {\"kind\": \"outage\", \"target\": \"all\", \"start_ms\": 0, \"end_ms\": 1000}\n  ]\n}";
        let plan = FaultPlan::from_json(text).expect("parse");
        assert_eq!(plan.name(), "ws");
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.specs()[0].kind, FaultKind::ComponentOutage);
    }

    #[test]
    fn from_json_rejects_bad_input() {
        assert!(FaultPlan::from_json("").is_err());
        assert!(FaultPlan::from_json("{\"name\":\"x\"}").is_err());
        assert!(FaultPlan::from_json(
            "{\"name\":\"x\",\"specs\":[{\"kind\":\"nope\",\"target\":\"all\",\"start_ms\":0,\"end_ms\":1}]}"
        )
        .is_err());
        // Empty window fails validation.
        assert!(FaultPlan::from_json(
            "{\"name\":\"x\",\"specs\":[{\"kind\":\"outage\",\"target\":\"all\",\"start_ms\":5,\"end_ms\":5}]}"
        )
        .is_err());
        // Out-of-range probability fails validation.
        assert!(FaultPlan::from_json(
            "{\"name\":\"x\",\"specs\":[{\"kind\":\"msg_loss\",\"p\":1.5,\"target\":\"all\",\"start_ms\":0,\"end_ms\":1}]}"
        )
        .is_err());
        assert!(FaultPlan::from_json("{\"name\":\"x\",\"specs\":[]} trailing").is_err());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(FaultKind::SensorNoise { std: -1.0 }.validate().is_err());
        assert!(FaultKind::SensorNoise { std: f64::NAN }.validate().is_err());
        assert!(FaultKind::SensorDropout { p: 1.1 }.validate().is_err());
        assert!(FaultKind::MsgDelay { rounds: 0 }.validate().is_err());
        assert!(FaultKind::ComponentDerate { factor: 0.0 }
            .validate()
            .is_err());
        assert!(FaultKind::CapacityFade { factor: 1.2 }.validate().is_err());
        assert!(FaultKind::ComponentOutage.validate().is_ok());
    }

    #[test]
    fn target_covers_and_round_trips() {
        assert!(FaultTarget::All.covers(7));
        assert!(FaultTarget::Unit(3).covers(3));
        assert!(!FaultTarget::Unit(3).covers(4));
        assert_eq!(FaultTarget::from_wire("all"), Ok(FaultTarget::All));
        assert_eq!(FaultTarget::from_wire("12"), Ok(FaultTarget::Unit(12)));
        assert!(FaultTarget::from_wire("rack-1").is_err());
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let root = RngStream::new(1234);
        let mut a = spec_stream(&root, 0);
        let mut a2 = spec_stream(&root, 0);
        let mut b = spec_stream(&root, 1);
        assert_eq!(a.next_u64(), a2.next_u64());
        let mut u0 = unit_stream(&root, 0, 0);
        let mut u1 = unit_stream(&root, 0, 1);
        assert_ne!(u0.next_u64(), u1.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn kind_indices_are_dense_and_stable() {
        let kinds = [
            FaultKind::SensorNoise { std: 0.0 },
            FaultKind::SensorBias { delta: 0.0 },
            FaultKind::SensorStuckAt { value: 0.0 },
            FaultKind::SensorDropout { p: 0.0 },
            FaultKind::MsgDelay { rounds: 1 },
            FaultKind::MsgLoss { p: 0.0 },
            FaultKind::MsgReorder { p: 0.0 },
            FaultKind::ComponentOutage,
            FaultKind::ComponentDerate { factor: 1.0 },
            FaultKind::CapacityFade { factor: 1.0 },
        ];
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i, "{}", k.name());
        }
    }
}
