//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap keyed on ([`SimTime`], sequence
//! number). The sequence number guarantees that events scheduled for the
//! same instant are delivered in FIFO order, which keeps month-long
//! simulations bit-for-bit reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: reverse-ordered so the `BinaryHeap` (a max-heap)
/// pops the *earliest* event first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earlier time (then lower seq) is "greater" for the
        // max-heap, so it pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute simulation times and popped
/// in time order; ties are broken by insertion order (FIFO).
///
/// # Example
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early-second"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all queued events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &secs in &[7u64, 3, 9, 1, 5] {
            q.push(SimTime::from_secs(secs), secs);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "c");
        q.push(SimTime::from_secs(2), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(4), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::SECOND;
            q.push(t, ());
        }
        assert_eq!(q.len(), 10);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
