//! Discrete-event simulation substrate for the PAD reproduction.
//!
//! `simkit` is the dependency-free foundation that every other crate in this
//! workspace builds on. It provides:
//!
//! * [`time`] — millisecond-resolution simulation time ([`SimTime`]) and
//!   duration ([`SimDuration`]) newtypes with saturating arithmetic;
//! * [`event`] — a deterministic event queue with stable FIFO ordering for
//!   simultaneous events;
//! * [`engine`] — a minimal simulation driver that dispatches queued events
//!   to a user handler until a stop condition is met;
//! * [`rng`] — a seedable, *splittable* random number generator
//!   (xoshiro256** seeded via SplitMix64) so every simulation component can
//!   own an independent, reproducible random stream;
//! * [`stats`] — online (Welford) statistics, percentiles, histograms and
//!   empirical CDFs used by the experiment harness;
//! * [`series`] — fixed-step time-series containers with resampling;
//! * [`table`] and [`heatmap`] — plain-text renderers used to print the
//!   paper's tables and figure series;
//! * [`telemetry`] — a deterministic metrics registry, per-tick trace
//!   recording (`Recorder` sinks, JSONL/CSV codecs) and offline trace
//!   inspection;
//! * [`trace`] — sim-time **spans** with causal parent links (`SpanSink`
//!   recording, JSONL/CSV codecs) and forensic incident reconstruction
//!   over a recorded span trace;
//! * [`alert`] — a deterministic alerting rule engine (threshold,
//!   rate-of-change, deadman/staleness rules with for-duration hold and
//!   hysteresis) evaluated over any metric registry at caller-chosen
//!   instants, with a JSON rules codec and Prometheus `ALERTS` rendering;
//! * [`detect`] — allocation-light streaming anomaly detectors (EWMA
//!   z-score, CUSUM, spike-train, drain-rate) and a `DetectorBank` that
//!   consumes telemetry streams live or replayed;
//! * [`fault`] — deterministic fault-injection plans (`FaultPlan`
//!   schedules of sensor/message/component faults over sim-time windows,
//!   JSON round-trip, seed-stable per-spec random streams);
//! * [`jsonio`] — the shared minimal JSON value model, no-escape parser
//!   and deterministic `f64` rendering used by every wire codec;
//! * [`chaos`] — wire-level chaos plans (`ChaosPlan` byte/line faults on
//!   a TCP stream) and an in-process fault-injecting TCP proxy;
//! * [`mc`] — a bounded exhaustive model checker (DFS/BFS over action
//!   interleavings, FNV-1a state fingerprints for visited-set pruning,
//!   pluggable safety/liveness properties, counterexample traces);
//! * [`prof`] — Null-gated self-profiling (interned phase IDs, lap
//!   timers with per-phase call/total/max aggregates, and throughput
//!   accounting for the simulated-work-per-wall-second CI number).
//!
//! # Example
//!
//! ```
//! use simkit::prelude::*;
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(2), "breaker check");
//! queue.push(SimTime::from_secs(1), "battery step");
//!
//! let mut engine = Engine::new(queue);
//! let mut log = Vec::new();
//! engine.run(|_queue, time, event| {
//!     log.push((time, event));
//!     ControlFlow::Continue
//! });
//! assert_eq!(log[0].1, "battery step");
//! assert_eq!(log[1].1, "breaker check");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod alert;
pub mod chaos;
pub mod detect;
pub mod engine;
pub mod event;
pub mod fault;
pub mod heatmap;
pub mod jsonio;
pub mod log;
pub mod mc;
pub mod prof;
pub mod rng;
pub mod series;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod telemetry;
pub mod time;
pub mod trace;

/// Convenient re-exports of the most common `simkit` items.
pub mod prelude {
    pub use crate::detect::{Detector, DetectorBank, FusedVerdict, StreamDetector, Verdict};
    pub use crate::engine::{ControlFlow, Engine};
    pub use crate::event::EventQueue;
    pub use crate::fault::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
    pub use crate::log::{EventLog, Severity};
    pub use crate::mc::{Checker, McModel, McReport, Property, Strategy};
    pub use crate::prof::{LapTimer, PhaseId, PhaseStats, ProfDump, Profiler, Throughput};
    pub use crate::rng::RngStream;
    pub use crate::series::TimeSeries;
    pub use crate::stats::{OnlineStats, ScenarioCost, Summary};
    pub use crate::sweep::{
        scenario_seed, scenario_stream, Metered, SweepProfile, SweepRunner, WorkerProfile,
    };
    pub use crate::telemetry::{
        EventKind, MetricId, MetricRegistry, Recorder, RingRecorder, TelemetryDump, TelemetrySink,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{
        RingSpanRecorder, Span, SpanId, SpanRecorder, SpanSink, TraceDump, Tracer,
    };
}

pub use detect::{Detector, DetectorBank, FusedVerdict, StreamDetector, Verdict};
pub use engine::{ControlFlow, Engine};
pub use event::EventQueue;
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
pub use log::{EventLog, Severity};
pub use mc::{Checker, McModel, McReport, Property, Strategy};
pub use prof::{ProfDump, Profiler};
pub use rng::RngStream;
pub use series::TimeSeries;
pub use stats::{OnlineStats, ScenarioCost};
pub use sweep::{Metered, SweepRunner};
pub use telemetry::{MetricId, MetricRegistry, Recorder, TelemetryDump, TelemetrySink};
pub use time::{SimDuration, SimTime};
pub use trace::{SpanId, SpanSink, TraceDump, Tracer};
