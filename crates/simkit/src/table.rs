//! Plain-text table rendering for experiment output.
//!
//! The benchmark binaries print the paper's tables (e.g. Table I detection
//! rates) as aligned ASCII so paper-vs-measured comparison is a diff away.

use std::fmt::Write as _;

/// An ASCII table builder.
///
/// # Example
///
/// ```
/// use simkit::table::Table;
///
/// let mut t = Table::new(vec!["scheme", "survival (s)"]);
/// t.row(vec!["Conv".to_string(), "112".to_string()]);
/// t.row(vec!["PAD".to_string(), "1201".to_string()]);
/// let text = t.render();
/// assert!(text.contains("Conv"));
/// assert!(text.contains("survival"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .chain(std::iter::once("+".to_string()))
            .collect();
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "| {cell:<w$} ", w = w);
            }
            line.push('|');
            line
        };
        let _ = writeln!(out, "{sep}");
        let _ = writeln!(out, "{}", render_row(&self.headers));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        let _ = writeln!(out, "{sep}");
        out
    }
}

/// Formats a float with `digits` decimal places — shared helper so all
/// experiment output uses consistent formatting.
pub fn fmt_f64(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a ratio as a percentage with one decimal place, e.g. `0.433` →
/// `"43.3%"`.
pub fn fmt_percent(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Separator, header, separator, 2 rows, separator.
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "ragged table:\n{s}");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn title_is_printed() {
        let mut t = Table::new(vec!["x"]);
        t.title("Table I");
        t.row(vec!["v".into()]);
        assert!(t.render().starts_with("== Table I =="));
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new(vec!["n"]);
        t.row_display(vec![42]);
        assert!(t.render().contains("42"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_percent(0.433), "43.3%");
        assert_eq!(fmt_percent(1.0), "100.0%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        t.row(vec!["r".into()]);
        assert_eq!(t.len(), 1);
    }
}
