//! Simulation time and duration newtypes.
//!
//! The whole workspace runs on an integer millisecond clock. Milliseconds
//! are fine-grained enough to model the paper's sub-second power spikes
//! (0.2–4 s wide) and the 100–300 ms power-capping actuation latency, while
//! keeping arithmetic exact — no floating-point clock drift across the
//! month-long Google-trace simulations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, measured in milliseconds since simulation
/// start.
///
/// `SimTime` is ordered, hashable and cheap to copy. Subtracting two times
/// yields a [`SimDuration`]; adding a duration yields a later time.
///
/// # Example
///
/// ```
/// use simkit::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(90);
/// assert_eq!(t1.as_millis(), 90_000);
/// assert_eq!(t1 - t0, SimDuration::from_secs(90));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time, measured in milliseconds.
///
/// # Example
///
/// ```
/// use simkit::time::SimDuration;
///
/// let five_min = SimDuration::from_mins(5);
/// assert_eq!(five_min.as_secs_f64(), 300.0);
/// assert_eq!(five_min * 2, SimDuration::from_mins(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Creates a time from whole minutes since simulation start.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Creates a time from whole hours since simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy for display/maths).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Rounds this time down to a multiple of `step`.
    ///
    /// Used by meters that aggregate power over fixed windows.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn align_down(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "alignment step must be non-zero");
        SimTime(self.0 - self.0 % step.0)
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One millisecond.
    pub const MILLISECOND: SimDuration = SimDuration(1);

    /// One second.
    pub const SECOND: SimDuration = SimDuration(1_000);

    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60_000);

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be a finite non-negative number of seconds, got {secs}"
        );
        SimDuration((secs * 1_000.0).round() as u64)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Whole milliseconds in this duration.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Hours as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Duration between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "time subtraction would underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "duration subtraction would underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;

    /// How many whole `rhs` intervals fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let (h, rem) = (ms / 3_600_000, ms % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1_000, rem % 1_000);
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(60_000) && self.0 > 0 {
            write!(f, "{}min", self.0 / 60_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn time_plus_duration_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn align_down_snaps_to_window_start() {
        let t = SimTime::from_millis(12_345);
        assert_eq!(
            t.align_down(SimDuration::from_secs(5)),
            SimTime::from_millis(10_000)
        );
        assert_eq!(t.align_down(SimDuration::MILLISECOND), t);
    }

    #[test]
    #[should_panic(expected = "alignment step")]
    fn align_down_rejects_zero_step() {
        SimTime::from_secs(1).align_down(SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_to_millis() {
        assert_eq!(
            SimDuration::from_secs_f64(0.2),
            SimDuration::from_millis(200)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.0004),
            SimDuration::from_millis(0)
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn from_secs_f64_rejects_negative() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_division_counts_intervals() {
        let window = SimDuration::from_mins(15);
        let spike_period = SimDuration::from_secs(30);
        assert_eq!(window / spike_period, 30);
        assert_eq!(window % spike_period, SimDuration::ZERO);
    }

    #[test]
    fn display_formats_are_human_readable() {
        assert_eq!(SimTime::from_millis(3_661_004).to_string(), "01:01:01.004");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5min");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::SECOND, SimTime::MAX);
        assert_eq!(
            SimTime::ZERO - SimDuration::SECOND,
            SimTime::ZERO,
            "time subtraction saturates at zero"
        );
    }
}
