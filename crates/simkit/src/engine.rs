//! Minimal deterministic simulation driver.
//!
//! The [`Engine`] owns an [`EventQueue`] and a monotonic clock. `run`
//! repeatedly pops the earliest event, advances the clock, and hands the
//! event to a user handler which may schedule further events. The handler
//! returns a [`ControlFlow`] so simulations can stop on a condition (e.g.
//! "first breaker trip" — the paper's *survival time* endpoint) without
//! draining the queue.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Handler verdict after processing one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Keep dispatching events.
    Continue,
    /// Stop immediately; [`Engine::run`] returns.
    Stop,
}

/// A deterministic event-dispatch loop.
///
/// # Example
///
/// ```
/// use simkit::prelude::*;
///
/// // A self-rescheduling tick that stops after 3 firings.
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::ZERO, ());
/// let mut engine = Engine::new(queue);
/// let mut ticks = 0;
/// engine.run(|queue, now, ()| {
///     ticks += 1;
///     if ticks < 3 {
///         queue.push(now + SimDuration::SECOND, ());
///         ControlFlow::Continue
///     } else {
///         ControlFlow::Stop
///     }
/// });
/// assert_eq!(ticks, 3);
/// assert_eq!(engine.now(), SimTime::from_secs(2));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    dispatched: u64,
}

impl<E> Engine<E> {
    /// Creates an engine over a pre-populated queue, clock at zero.
    pub fn new(queue: EventQueue<E>) -> Self {
        Engine {
            queue,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Creates an engine with an empty queue.
    pub fn empty() -> Self {
        Engine::new(EventQueue::new())
    }

    /// Current simulation time (time of the most recently dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules an event; equivalent to pushing on [`Engine::queue_mut`].
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.push(time, event);
    }

    /// Shared access to the queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Mutable access to the queue (for scheduling outside of `run`).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Dispatches events in time order until the queue empties or the
    /// handler returns [`ControlFlow::Stop`].
    ///
    /// The handler receives the queue (to schedule follow-up events), the
    /// event's time, and the event itself.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E) -> ControlFlow,
    {
        self.run_until(SimTime::MAX, &mut handler);
    }

    /// Like [`Engine::run`] but also stops (without dispatching) once the
    /// next event would be strictly after `deadline`. Events *at* the
    /// deadline are still dispatched.
    ///
    /// Returns `true` if the loop stopped because of the deadline (events
    /// may remain queued), `false` if the queue drained or the handler
    /// stopped it.
    pub fn run_until<F>(&mut self, deadline: SimTime, handler: &mut F) -> bool
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E) -> ControlFlow,
    {
        loop {
            match self.queue.peek_time() {
                None => return false,
                Some(t) if t > deadline => return true,
                Some(_) => {}
            }
            let (time, event) = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(time >= self.now, "event queue returned stale event");
            self.now = time;
            self.dispatched += 1;
            if handler(&mut self.queue, time, event) == ControlFlow::Stop {
                return false;
            }
        }
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn drains_queue_in_order() {
        let mut engine = Engine::empty();
        engine.schedule(SimTime::from_secs(2), "b");
        engine.schedule(SimTime::from_secs(1), "a");
        engine.schedule(SimTime::from_secs(3), "c");

        let mut seen = Vec::new();
        engine.run(|_, _, e| {
            seen.push(e);
            ControlFlow::Continue
        });
        assert_eq!(seen, vec!["a", "b", "c"]);
        assert_eq!(engine.dispatched(), 3);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn stop_leaves_remaining_events_queued() {
        let mut engine = Engine::empty();
        for s in 1..=5 {
            engine.schedule(SimTime::from_secs(s), s);
        }
        engine.run(|_, _, e| {
            if e == 3 {
                ControlFlow::Stop
            } else {
                ControlFlow::Continue
            }
        });
        assert_eq!(engine.now(), SimTime::from_secs(3));
        assert_eq!(engine.queue().len(), 2);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut engine = Engine::empty();
        for s in 1..=5 {
            engine.schedule(SimTime::from_secs(s), s);
        }
        let mut seen = Vec::new();
        let hit_deadline = engine.run_until(SimTime::from_secs(3), &mut |_, _, e| {
            seen.push(e);
            ControlFlow::Continue
        });
        assert!(hit_deadline);
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(engine.queue().len(), 2);
    }

    #[test]
    fn self_rescheduling_tick() {
        let mut engine = Engine::empty();
        engine.schedule(SimTime::ZERO, ());
        let mut count = 0u32;
        engine.run_until(SimTime::from_secs(10), &mut |q, now, ()| {
            count += 1;
            q.push(now + SimDuration::SECOND, ());
            ControlFlow::Continue
        });
        // Ticks at 0..=10 inclusive.
        assert_eq!(count, 11);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut engine = Engine::empty();
        engine.schedule(SimTime::from_secs(1), ());
        engine.schedule(SimTime::from_secs(1), ());
        engine.schedule(SimTime::from_secs(2), ());
        let mut last = SimTime::ZERO;
        engine.run(|_, t, ()| {
            assert!(t >= last);
            last = t;
            ControlFlow::Continue
        });
    }
}
