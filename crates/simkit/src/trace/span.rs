//! Span records, span-name interning, and the recording sinks.
//!
//! A [`Span`] is one sim-time interval with a causal parent link — the
//! trace analogue of the telemetry layer's point samples. Names are
//! interned through [`SpanNames`] (the registry-style dense-id table),
//! and finished spans flow into a [`SpanRecorder`] sink. [`SpanSink`] is
//! the clonable enum simulations embed, mirroring
//! [`TelemetrySink`](crate::telemetry::TelemetrySink): `Null` is the
//! do-nothing fast path, `Ring` retains a bounded in-memory trace.

use std::collections::{BTreeMap, VecDeque};

use crate::time::SimTime;

/// Identifies one span within a trace.
///
/// Ids are dense and assigned in span-open order, so sorting by
/// `(start, id)` is a total, deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: u32) -> SpanId {
        SpanId(index)
    }
}

/// Identifies one interned span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanNameId(u16);

impl SpanNameId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Interns span names to dense [`SpanNameId`]s.
///
/// Names are restricted to `[A-Za-z0-9._-]` (like metric names), so the
/// wire formats never need escaping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanNames {
    names: Vec<String>,
    by_name: BTreeMap<String, SpanNameId>,
}

impl SpanNames {
    /// Creates an empty name table.
    pub fn new() -> Self {
        SpanNames::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty, contains characters outside
    /// `[A-Za-z0-9._-]`, or the table is full (`u16::MAX` names).
    pub fn intern(&mut self, name: &str) -> SpanNameId {
        assert!(valid_name(name), "invalid span name {name:?}");
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let index = u16::try_from(self.names.len()).expect("span name table full");
        let id = SpanNameId(index);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// The name behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was minted by a different table.
    pub fn name(&self, id: SpanNameId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names, in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// One finished span: a named sim-time interval with a causal parent
/// link and key/value attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id (dense, in open order).
    pub id: SpanId,
    /// Interned name (resolve via [`SpanNames::name`]).
    pub name: SpanNameId,
    /// The span that causally produced this one, if any.
    pub parent: Option<SpanId>,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed (dump time for spans still open at the end
    /// of a run).
    pub end: SimTime,
    /// Key/value attributes, in insertion order. Keys share the span
    /// name charset (`[A-Za-z0-9._-]`).
    pub attrs: Vec<(String, f64)>,
}

impl Span {
    /// Looks up one attribute by key.
    pub fn attr(&self, key: &str) -> Option<f64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Sorts spans into canonical trace order: `(start, id)`.
///
/// Ids are assigned in open order, so this order is total and identical
/// for any run of the same scenario — the span half of the byte-identical
/// determinism contract.
pub fn sort_spans(spans: &mut [Span]) {
    spans.sort_by_key(|s| (s.start, s.id));
}

/// A sink for finished spans — the span analogue of
/// [`Recorder`](crate::telemetry::Recorder).
pub trait SpanRecorder {
    /// `false` when recording is a no-op and callers may skip span
    /// bookkeeping entirely (the Null-gated fast path).
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one finished span. `names` resolves its interned ids.
    fn record_span(&mut self, names: &SpanNames, span: Span);
}

/// A sink that drops every span (the fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NullSpanRecorder;

impl SpanRecorder for NullSpanRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&mut self, _names: &SpanNames, _span: Span) {}
}

/// A bounded in-memory span sink: keeps the most recent `capacity`
/// finished spans, counting evictions.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSpanRecorder {
    buf: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

impl RingSpanRecorder {
    /// Creates a ring holding at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        RingSpanRecorder {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Spans evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the ring, returning the retained spans in record order.
    pub fn into_spans(self) -> Vec<Span> {
        self.buf.into()
    }
}

impl SpanRecorder for RingSpanRecorder {
    fn record_span(&mut self, _names: &SpanNames, span: Span) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(span);
    }
}

/// The clonable span sink simulations embed, mirroring
/// [`TelemetrySink`](crate::telemetry::TelemetrySink).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SpanSink {
    /// Drop every span ([`NullSpanRecorder`] semantics).
    #[default]
    Null,
    /// Retain a bounded in-memory trace.
    Ring(RingSpanRecorder),
}

impl SpanRecorder for SpanSink {
    fn enabled(&self) -> bool {
        match self {
            SpanSink::Null => false,
            SpanSink::Ring(_) => true,
        }
    }

    fn record_span(&mut self, names: &SpanNames, span: Span) {
        match self {
            SpanSink::Null => {}
            SpanSink::Ring(ring) => ring.record_span(names, span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_and_resolves() {
        let mut names = SpanNames::new();
        let a = names.intern("attack.drain");
        let b = names.intern("batt.discharge");
        assert_eq!(names.intern("attack.drain"), a);
        assert_ne!(a, b);
        assert_eq!(names.name(a), "attack.drain");
        assert_eq!(names.len(), 2);
        assert_eq!(
            names.names().collect::<Vec<_>>(),
            vec!["attack.drain", "batt.discharge"]
        );
    }

    #[test]
    #[should_panic(expected = "invalid span name")]
    fn bad_name_rejected() {
        SpanNames::new().intern("has space");
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let names = SpanNames::new();
        let mut ring = RingSpanRecorder::new(2);
        for i in 0..3u32 {
            ring.record_span(
                &names,
                Span {
                    id: SpanId(i),
                    name: SpanNameId(0),
                    parent: None,
                    start: SimTime::from_millis(u64::from(i)),
                    end: SimTime::from_millis(u64::from(i)),
                    attrs: Vec::new(),
                },
            );
        }
        assert_eq!(ring.dropped(), 1);
        let kept = ring.into_spans();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].id, SpanId(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_ring_capacity_rejected() {
        RingSpanRecorder::new(0);
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!SpanSink::Null.enabled());
        assert!(SpanSink::Ring(RingSpanRecorder::new(1)).enabled());
        assert!(!NullSpanRecorder.enabled());
    }

    #[test]
    fn sort_is_by_start_then_id() {
        let mk = |id: u32, start: u64| Span {
            id: SpanId(id),
            name: SpanNameId(0),
            parent: None,
            start: SimTime::from_millis(start),
            end: SimTime::from_millis(start),
            attrs: Vec::new(),
        };
        let mut spans = vec![mk(2, 100), mk(0, 100), mk(1, 50)];
        sort_spans(&mut spans);
        let order: Vec<u32> = spans.iter().map(|s| s.id.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }
}
