//! Serialization of span traces to JSONL and CSV, and the strict parser
//! `padsim incident` uses to read them back.
//!
//! The formats follow the telemetry codec's rules: restricted-charset
//! names and attribute keys (`[A-Za-z0-9._-]`), values via Rust's default
//! `f64` `Display` (shortest round-trip form), one record per line, and
//! a parser that fails the whole parse on the first malformed line.
//!
//! # Wire formats
//!
//! JSONL — one object per line, keys always in this order:
//!
//! ```text
//! {"id":0,"name":"attack.drain","parent":null,"t0":30000,"t1":330000,"attrs":{"rack":1,"nodes":4}}
//! {"id":1,"name":"attack.spike","parent":0,"t0":330000,"t1":600000,"attrs":{"rack":1,"nodes":4}}
//! ```
//!
//! CSV — header `id,name,parent,start_ms,end_ms,attrs`, attributes as
//! `key=value` pairs joined with `;`:
//!
//! ```text
//! id,name,parent,start_ms,end_ms,attrs
//! 0,attack.drain,,30000,330000,rack=1;nodes=4
//! 1,attack.spike,0,330000,600000,rack=1;nodes=4
//! ```

use std::io::{self, Write};

use crate::telemetry::codec::{err, expect_key, next_field, unquote, Format, ParseError};
use crate::trace::span::{Span, SpanNames, SpanRecorder};

/// CSV header line for span traces (with trailing newline).
pub const SPAN_CSV_HEADER: &str = "id,name,parent,start_ms,end_ms,attrs\n";

fn write_span_jsonl(out: &mut String, names: &SpanNames, span: &Span) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"id\":{},\"name\":\"{}\",\"parent\":",
        span.id.index(),
        names.name(span.name)
    );
    match span.parent {
        Some(p) => {
            let _ = write!(out, "{}", p.index());
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"t0\":{},\"t1\":{},\"attrs\":{{",
        span.start.as_millis(),
        span.end.as_millis()
    );
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{key}\":{value}");
    }
    out.push_str("}}\n");
}

fn write_span_csv(out: &mut String, names: &SpanNames, span: &Span) {
    use std::fmt::Write as _;
    let _ = write!(out, "{},{},", span.id.index(), names.name(span.name));
    if let Some(p) = span.parent {
        let _ = write!(out, "{}", p.index());
    }
    let _ = write!(out, ",{},{},", span.start.as_millis(), span.end.as_millis());
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let _ = write!(out, "{key}={value}");
    }
    out.push('\n');
}

/// Serializes spans (already in canonical order — see
/// [`sort_spans`](crate::trace::sort_spans)) to a JSONL string.
pub fn spans_to_jsonl(names: &SpanNames, spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 96);
    for span in spans {
        write_span_jsonl(&mut out, names, span);
    }
    out
}

/// Serializes spans (already in canonical order) to a CSV string with
/// header.
pub fn spans_to_csv(names: &SpanNames, spans: &[Span]) -> String {
    let mut out = String::with_capacity(SPAN_CSV_HEADER.len() + spans.len() * 64);
    out.push_str(SPAN_CSV_HEADER);
    for span in spans {
        write_span_csv(&mut out, names, span);
    }
    out
}

/// A [`SpanRecorder`] that streams finished spans straight to a writer
/// as JSONL. I/O errors are sticky, matching the telemetry recorders:
/// the first error is stored and returned by
/// [`finish`](JsonlSpanRecorder::finish); later spans are dropped.
#[derive(Debug)]
pub struct JsonlSpanRecorder<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSpanRecorder<W> {
    /// Creates a streaming JSONL span recorder over `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSpanRecorder {
            writer,
            error: None,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> SpanRecorder for JsonlSpanRecorder<W> {
    fn record_span(&mut self, names: &SpanNames, span: Span) {
        let mut line = String::with_capacity(96);
        write_span_jsonl(&mut line, names, &span);
        self.write_line(&line);
    }
}

/// A [`SpanRecorder`] that streams finished spans straight to a writer
/// as CSV. The header row is written at construction; error handling
/// matches [`JsonlSpanRecorder`].
#[derive(Debug)]
pub struct CsvSpanRecorder<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write> CsvSpanRecorder<W> {
    /// Creates a streaming CSV span recorder over `writer`, writing the
    /// header row immediately.
    pub fn new(mut writer: W) -> Self {
        let error = writer.write_all(SPAN_CSV_HEADER.as_bytes()).err();
        CsvSpanRecorder { writer, error }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> SpanRecorder for CsvSpanRecorder<W> {
    fn record_span(&mut self, names: &SpanNames, span: Span) {
        let mut line = String::with_capacity(64);
        write_span_csv(&mut line, names, &span);
        self.write_line(&line);
    }
}

/// One span parsed back from a serialized trace.
///
/// Interned ids don't survive serialization, so the parsed form carries
/// the resolved name and plain integer ids.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// The span id (dense within its trace).
    pub id: u64,
    /// The span's name.
    pub name: String,
    /// The causal parent's id, if any.
    pub parent: Option<u64>,
    /// Open time in simulation milliseconds.
    pub start_ms: u64,
    /// Close time in simulation milliseconds.
    pub end_ms: u64,
    /// Key/value attributes, in serialized order.
    pub attrs: Vec<(String, f64)>,
}

impl ParsedSpan {
    /// Looks up one attribute by key.
    pub fn attr(&self, key: &str) -> Option<f64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

fn parse_parent(field: &str, line: usize) -> Result<Option<u64>, ParseError> {
    if field == "null" || field.is_empty() {
        return Ok(None);
    }
    field
        .parse()
        .map(Some)
        .map_err(|_| err(line, format!("bad parent {field:?}")))
}

fn parse_attr_pair(pair: &str, sep: char, line: usize) -> Result<(String, f64), ParseError> {
    let (key, value) = pair
        .split_once(sep)
        .ok_or_else(|| err(line, format!("bad attribute {pair:?}")))?;
    let value: f64 = value
        .parse()
        .map_err(|_| err(line, format!("bad attribute value {value:?}")))?;
    Ok((key.to_string(), value))
}

fn parse_span_jsonl_line(line_text: &str, line: usize) -> Result<ParsedSpan, ParseError> {
    let rest = line_text
        .strip_prefix('{')
        .ok_or_else(|| err(line, "expected '{'"))?;
    let rest = expect_key(rest, "id", line)?;
    let (id_field, rest) = next_field(rest, line)?;
    let id: u64 = id_field
        .parse()
        .map_err(|_| err(line, format!("bad id {id_field:?}")))?;
    let rest = expect_key(rest, "name", line)?;
    let (name_field, rest) = next_field(rest, line)?;
    let name = unquote(name_field, line)?.to_string();
    let rest = expect_key(rest, "parent", line)?;
    let (parent_field, rest) = next_field(rest, line)?;
    let parent = parse_parent(parent_field, line)?;
    let rest = expect_key(rest, "t0", line)?;
    let (t0_field, rest) = next_field(rest, line)?;
    let start_ms: u64 = t0_field
        .parse()
        .map_err(|_| err(line, format!("bad t0 {t0_field:?}")))?;
    let rest = expect_key(rest, "t1", line)?;
    let (t1_field, rest) = next_field(rest, line)?;
    let end_ms: u64 = t1_field
        .parse()
        .map_err(|_| err(line, format!("bad t1 {t1_field:?}")))?;
    let mut rest = rest
        .strip_prefix("\"attrs\":{")
        .ok_or_else(|| err(line, "expected key \"attrs\""))?;
    let mut attrs = Vec::new();
    if let Some(tail) = rest.strip_prefix('}') {
        rest = tail;
    } else {
        loop {
            let pos = rest
                .find([',', '}'])
                .ok_or_else(|| err(line, "unterminated attrs"))?;
            let done = rest.as_bytes()[pos] == b'}';
            let pair = &rest[..pos];
            rest = &rest[pos + 1..];
            let (quoted_key, value) = pair
                .split_once(':')
                .ok_or_else(|| err(line, format!("bad attribute {pair:?}")))?;
            let key = unquote(quoted_key, line)?.to_string();
            let value: f64 = value
                .parse()
                .map_err(|_| err(line, format!("bad attribute value {value:?}")))?;
            attrs.push((key, value));
            if done {
                break;
            }
        }
    }
    if rest != "}" {
        return Err(err(line, "trailing content after span"));
    }
    Ok(ParsedSpan {
        id,
        name,
        parent,
        start_ms,
        end_ms,
        attrs,
    })
}

fn parse_span_csv_line(line_text: &str, line: usize) -> Result<ParsedSpan, ParseError> {
    let mut fields = line_text.split(',');
    let mut take = |label: &str| {
        fields
            .next()
            .ok_or_else(|| err(line, format!("missing {label} field")))
    };
    let id: u64 = take("id")?.parse().map_err(|_| err(line, "bad id"))?;
    let name = take("name")?.to_string();
    let parent = parse_parent(take("parent")?, line)?;
    let start_ms: u64 = take("start_ms")?
        .parse()
        .map_err(|_| err(line, "bad start_ms"))?;
    let end_ms: u64 = take("end_ms")?
        .parse()
        .map_err(|_| err(line, "bad end_ms"))?;
    let attrs_field = take("attrs")?;
    if fields.next().is_some() {
        return Err(err(line, "too many fields"));
    }
    let mut attrs = Vec::new();
    if !attrs_field.is_empty() {
        for pair in attrs_field.split(';') {
            attrs.push(parse_attr_pair(pair, '=', line)?);
        }
    }
    Ok(ParsedSpan {
        id,
        name,
        parent,
        start_ms,
        end_ms,
        attrs,
    })
}

/// Parses a single span wire line (either format).
///
/// `line` is the 1-based line number used in error messages. The span
/// CSV header row is not accepted here — stream consumers skip it with
/// [`is_span_csv_header`] first. This is the per-line entry point for
/// wire use, mirroring
/// [`parse_line`](crate::telemetry::codec::parse_line) on the telemetry
/// side: a malformed line becomes a structured per-line error instead
/// of aborting the stream.
pub fn parse_span_line(
    line_text: &str,
    line: usize,
    format: Format,
) -> Result<ParsedSpan, ParseError> {
    match format {
        Format::Jsonl => parse_span_jsonl_line(line_text, line),
        Format::Csv => parse_span_csv_line(line_text, line),
    }
}

/// `true` when the line is the span CSV header row.
pub fn is_span_csv_header(line_text: &str) -> bool {
    line_text == SPAN_CSV_HEADER.trim_end()
}

/// Re-serializes parsed spans back to the wire format they came from.
///
/// The exact inverse of [`parse_spans`] for any well-formed trace —
/// names and attribute keys are restricted to an escape-free charset
/// and values use the shortest-round-trip `f64` form in both
/// directions, so `render_parsed_spans(&parse_spans(text)?) == text`
/// byte for byte. This is what a daemon uses to persist the spans it
/// retained for a session (checkpoints, flushes) without ever holding
/// the original byte stream.
pub fn render_parsed_spans(spans: &[ParsedSpan], format: Format) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(spans.len() * 96);
    if format == Format::Csv {
        out.push_str(SPAN_CSV_HEADER);
    }
    for s in spans {
        match format {
            Format::Jsonl => {
                let _ = write!(out, "{{\"id\":{},\"name\":\"{}\",\"parent\":", s.id, s.name);
                match s.parent {
                    Some(p) => {
                        let _ = write!(out, "{p}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(
                    out,
                    ",\"t0\":{},\"t1\":{},\"attrs\":{{",
                    s.start_ms, s.end_ms
                );
                for (i, (key, value)) in s.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{key}\":{value}");
                }
                out.push_str("}}\n");
            }
            Format::Csv => {
                let _ = write!(out, "{},{},", s.id, s.name);
                if let Some(p) = s.parent {
                    let _ = write!(out, "{p}");
                }
                let _ = write!(out, ",{},{},", s.start_ms, s.end_ms);
                for (i, (key, value)) in s.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(';');
                    }
                    let _ = write!(out, "{key}={value}");
                }
                out.push('\n');
            }
        }
    }
    out
}

/// Parses a serialized span trace (either format) back into spans.
///
/// The parser is strict: any malformed line fails the whole parse with
/// its 1-based line number, rather than silently skipping data.
///
/// # Errors
///
/// Returns the first malformed line's [`ParseError`].
pub fn parse_spans(text: &str, format: Format) -> Result<Vec<ParsedSpan>, ParseError> {
    let mut out = Vec::new();
    let mut lines = text.lines().enumerate();
    if format == Format::Csv {
        match lines.next() {
            Some((_, header)) if header == SPAN_CSV_HEADER.trim_end() => {}
            Some((_, header)) => return Err(err(1, format!("bad span CSV header {header:?}"))),
            None => return Ok(out),
        }
    }
    for (idx, line_text) in lines {
        if line_text.is_empty() {
            continue;
        }
        let line = idx + 1;
        out.push(match format {
            Format::Jsonl => parse_span_jsonl_line(line_text, line)?,
            Format::Csv => parse_span_csv_line(line_text, line)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::trace::span::{sort_spans, SpanId};

    fn sample_trace() -> (SpanNames, Vec<Span>) {
        let mut names = SpanNames::new();
        let drain = names.intern("attack.drain");
        let spike = names.intern("attack.spike");
        let spans = vec![
            Span {
                id: SpanId::from_index(0),
                name: drain,
                parent: None,
                start: SimTime::from_millis(30_000),
                end: SimTime::from_millis(330_000),
                attrs: vec![("rack".into(), 1.0), ("nodes".into(), 4.0)],
            },
            Span {
                id: SpanId::from_index(1),
                name: spike,
                parent: Some(SpanId::from_index(0)),
                start: SimTime::from_millis(330_000),
                end: SimTime::from_millis(600_000),
                attrs: Vec::new(),
            },
        ];
        (names, spans)
    }

    #[test]
    fn jsonl_round_trips() {
        let (names, spans) = sample_trace();
        let text = spans_to_jsonl(&names, &spans);
        assert_eq!(
            text,
            "{\"id\":0,\"name\":\"attack.drain\",\"parent\":null,\"t0\":30000,\"t1\":330000,\
             \"attrs\":{\"rack\":1,\"nodes\":4}}\n\
             {\"id\":1,\"name\":\"attack.spike\",\"parent\":0,\"t0\":330000,\"t1\":600000,\
             \"attrs\":{}}\n"
        );
        let parsed = parse_spans(&text, Format::Jsonl).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "attack.drain");
        assert_eq!(parsed[0].parent, None);
        assert_eq!(parsed[0].attr("rack"), Some(1.0));
        assert_eq!(parsed[0].attr("nodes"), Some(4.0));
        assert_eq!(parsed[1].parent, Some(0));
        assert_eq!(parsed[1].start_ms, 330_000);
        assert!(parsed[1].attrs.is_empty());
    }

    #[test]
    fn csv_round_trips() {
        let (names, spans) = sample_trace();
        let text = spans_to_csv(&names, &spans);
        assert!(text.starts_with(SPAN_CSV_HEADER));
        let parsed = parse_spans(&text, Format::Csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].attr("nodes"), Some(4.0));
        assert_eq!(parsed[1].parent, Some(0));
        assert_eq!(parsed[1].end_ms, 600_000);
    }

    #[test]
    fn render_parsed_spans_is_the_exact_inverse_of_parse() {
        let (names, spans) = sample_trace();
        for format in [Format::Jsonl, Format::Csv] {
            let text = match format {
                Format::Jsonl => spans_to_jsonl(&names, &spans),
                Format::Csv => spans_to_csv(&names, &spans),
            };
            let parsed = parse_spans(&text, format).unwrap();
            assert_eq!(render_parsed_spans(&parsed, format), text, "{format:?}");
            // And the rendered form parses back to the same spans.
            let reparsed = parse_spans(&render_parsed_spans(&parsed, format), format).unwrap();
            assert_eq!(reparsed, parsed, "{format:?}");
        }
    }

    #[test]
    fn streaming_recorders_match_batch_output() {
        let (names, spans) = sample_trace();
        let mut jsonl = JsonlSpanRecorder::new(Vec::new());
        let mut csv = CsvSpanRecorder::new(Vec::new());
        for span in &spans {
            jsonl.record_span(&names, span.clone());
            csv.record_span(&names, span.clone());
        }
        assert_eq!(
            String::from_utf8(jsonl.finish().unwrap()).unwrap(),
            spans_to_jsonl(&names, &spans)
        );
        assert_eq!(
            String::from_utf8(csv.finish().unwrap()).unwrap(),
            spans_to_csv(&names, &spans)
        );
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let good = "{\"id\":0,\"name\":\"a\",\"parent\":null,\"t0\":0,\"t1\":1,\"attrs\":{}}\n";
        let e = parse_spans(&format!("{good}not json\n"), Format::Jsonl).unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_spans("wrong,header\n", Format::Csv).unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_spans(
            "{\"id\":0,\"name\":\"a\",\"parent\":null,\"t0\":0,\"t1\":1,\"attrs\":{\"k\":x}}\n",
            Format::Jsonl,
        )
        .unwrap_err();
        assert!(e.message.contains("bad attribute value"));
    }

    #[test]
    fn non_finite_attrs_round_trip() {
        let mut names = SpanNames::new();
        let n = names.intern("x");
        let spans = vec![Span {
            id: SpanId::from_index(0),
            name: n,
            parent: None,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            attrs: vec![
                ("nan".into(), f64::NAN),
                ("pinf".into(), f64::INFINITY),
                ("ninf".into(), f64::NEG_INFINITY),
            ],
        }];
        for format in [Format::Jsonl, Format::Csv] {
            let text = match format {
                Format::Jsonl => spans_to_jsonl(&names, &spans),
                Format::Csv => spans_to_csv(&names, &spans),
            };
            let parsed = parse_spans(&text, format).unwrap();
            assert!(parsed[0].attr("nan").unwrap().is_nan());
            assert_eq!(parsed[0].attr("pinf"), Some(f64::INFINITY));
            assert_eq!(parsed[0].attr("ninf"), Some(f64::NEG_INFINITY));
        }
    }

    #[test]
    fn sorted_output_is_deterministic() {
        let (names, mut spans) = sample_trace();
        spans.swap(0, 1);
        sort_spans(&mut spans);
        assert_eq!(spans[0].id, SpanId::from_index(0));
        let a = spans_to_jsonl(&names, &spans);
        let b = spans_to_jsonl(&names, &spans);
        assert_eq!(a, b);
    }
}
