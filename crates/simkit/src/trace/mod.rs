//! Deterministic sim-time spans and forensic incident reconstruction.
//!
//! Where [`telemetry`](crate::telemetry) records *point* samples, this
//! module records *intervals with causality*: a [`Span`] has an interned
//! name, open/close sim-times, a parent span id, and key/value
//! attributes — enough to reconstruct "the Phase-I drain caused this
//! discharge episode, which triggered that cap episode" after a run.
//!
//! Three layers, mirroring the telemetry module:
//!
//! * [`Tracer`] — open/close span bookkeeping over a [`SpanSink`]
//!   (`Null` is the zero-cost fast path, `Ring` retains a bounded
//!   trace; [`JsonlSpanRecorder`]/[`CsvSpanRecorder`] stream to disk).
//! * [`codec`] — JSONL/CSV span serialization and the strict
//!   [`parse_spans`] reader.
//! * [`incident`] — [`IncidentReconstructor`] joins a parsed span trace
//!   with telemetry and ground truth into [`Incident`] objects, with
//!   JSON and ASCII-timeline renderers (`padsim incident`).
//!
//! # Determinism contract
//!
//! Span ids are dense and assigned in open order; recorded spans carry
//! **simulation** time only; and [`TraceDump`] sorts spans by
//! `(start, id)`. A span trace is therefore a pure function of
//! (scenario, seed) — byte-identical across worker counts, exactly like
//! the telemetry contract.

pub mod codec;
pub mod incident;
pub mod span;

pub use codec::{
    is_span_csv_header, parse_span_line, parse_spans, render_parsed_spans, spans_to_csv,
    spans_to_jsonl, CsvSpanRecorder, JsonlSpanRecorder, ParsedSpan, SPAN_CSV_HEADER,
};
pub use incident::{
    render_report_json, render_timeline, GroundTruth, Incident, IncidentReconstructor,
};
pub use span::{
    sort_spans, NullSpanRecorder, RingSpanRecorder, Span, SpanId, SpanNameId, SpanNames,
    SpanRecorder, SpanSink,
};

use crate::telemetry::codec::Format;
use crate::time::SimTime;

/// Open/close span bookkeeping over a [`SpanSink`].
///
/// Spans flow to the sink when they close; spans still open when the
/// trace is dumped are closed at the dump time. With a `Null` sink the
/// tracer is inert ([`Tracer::enabled`] is `false`) and callers should
/// skip their span bookkeeping entirely — that check is the fast path
/// that keeps tracing free when it is off.
///
/// # Example
///
/// ```
/// use simkit::time::SimTime;
/// use simkit::trace::{RingSpanRecorder, SpanSink, Tracer};
///
/// let mut tracer = Tracer::new(SpanSink::Ring(RingSpanRecorder::new(64)));
/// let drain = tracer.intern("attack.drain");
/// let id = tracer.start(SimTime::from_secs(30), drain, None);
/// tracer.set_attr(id, "rack", 1.0);
/// tracer.end(SimTime::from_secs(330), id);
/// let dump = tracer.into_dump(SimTime::from_secs(330));
/// assert_eq!(dump.spans.len(), 1);
/// assert_eq!(dump.spans[0].attr("rack"), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tracer {
    names: SpanNames,
    sink: SpanSink,
    next_id: u32,
    /// Spans currently open, in open order (few at any instant; linear
    /// scans are cheaper than a map).
    open: Vec<Span>,
}

impl Tracer {
    /// Creates a tracer over `sink`.
    pub fn new(sink: SpanSink) -> Self {
        Tracer {
            names: SpanNames::new(),
            sink,
            next_id: 0,
            open: Vec::new(),
        }
    }

    /// `false` when the sink drops everything and span bookkeeping can
    /// be skipped.
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Interns a span name (see [`SpanNames::intern`]).
    pub fn intern(&mut self, name: &str) -> SpanNameId {
        self.names.intern(name)
    }

    /// The name table.
    pub fn names(&self) -> &SpanNames {
        &self.names
    }

    /// Opens a span at `now`. Ids are assigned in open order.
    pub fn start(&mut self, now: SimTime, name: SpanNameId, parent: Option<SpanId>) -> SpanId {
        let id = SpanId::from_index(self.next_id);
        self.next_id += 1;
        if self.enabled() {
            self.open.push(Span {
                id,
                name,
                parent,
                start: now,
                end: now,
                attrs: Vec::new(),
            });
        }
        id
    }

    /// Sets (or overwrites) an attribute on an open span. No-op once the
    /// span has closed.
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or contains characters outside
    /// `[A-Za-z0-9._-]`.
    pub fn set_attr(&mut self, id: SpanId, key: &str, value: f64) {
        assert!(
            !key.is_empty()
                && key
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-'),
            "invalid attribute key {key:?}"
        );
        if let Some(span) = self.open.iter_mut().find(|s| s.id == id) {
            match span.attrs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => span.attrs.push((key.to_string(), value)),
            }
        }
    }

    /// Closes an open span at `now`, sending it to the sink. No-op for
    /// unknown (or already-closed) ids.
    pub fn end(&mut self, now: SimTime, id: SpanId) {
        if let Some(pos) = self.open.iter().position(|s| s.id == id) {
            let mut span = self.open.remove(pos);
            span.end = now;
            self.sink.record_span(&self.names, span);
        }
    }

    /// Number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Closes every still-open span at `now` and returns the finished
    /// trace in canonical order.
    pub fn into_dump(mut self, now: SimTime) -> TraceDump {
        for mut span in std::mem::take(&mut self.open) {
            span.end = now;
            self.sink.record_span(&self.names, span);
        }
        let (spans, dropped) = match self.sink {
            SpanSink::Null => (Vec::new(), 0),
            SpanSink::Ring(ring) => {
                let dropped = ring.dropped();
                (ring.into_spans(), dropped)
            }
        };
        TraceDump::new(self.names, spans, dropped)
    }
}

/// A finished span trace: the name table plus the retained spans in
/// canonical `(start, id)` order, ready to serialize or reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDump {
    /// The name table the spans' interned ids index into.
    pub names: SpanNames,
    /// The spans, in canonical order.
    pub spans: Vec<Span>,
    /// Spans evicted from the ring before the dump was taken.
    pub dropped: u64,
}

impl TraceDump {
    /// Builds a dump, sorting `spans` into canonical order.
    pub fn new(names: SpanNames, mut spans: Vec<Span>, dropped: u64) -> Self {
        sort_spans(&mut spans);
        TraceDump {
            names,
            spans,
            dropped,
        }
    }

    /// Serializes the trace to a JSONL string.
    pub fn to_jsonl(&self) -> String {
        spans_to_jsonl(&self.names, &self.spans)
    }

    /// Serializes the trace to a CSV string (with header).
    pub fn to_csv(&self) -> String {
        spans_to_csv(&self.names, &self.spans)
    }

    /// Serializes the trace in the given format.
    pub fn serialize(&self, format: Format) -> String {
        match format {
            Format::Jsonl => self.to_jsonl(),
            Format::Csv => self.to_csv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_links_parents_and_dumps_sorted() {
        let mut tracer = Tracer::new(SpanSink::Ring(RingSpanRecorder::new(16)));
        assert!(tracer.enabled());
        let drain = tracer.intern("attack.drain");
        let spike = tracer.intern("attack.spike");
        let d = tracer.start(SimTime::from_millis(100), drain, None);
        let s = tracer.start(SimTime::from_millis(500), spike, Some(d));
        tracer.set_attr(d, "rack", 2.0);
        tracer.set_attr(d, "rack", 3.0); // overwrite, not duplicate
        tracer.end(SimTime::from_millis(500), d);
        assert_eq!(tracer.open_count(), 1);
        let dump = tracer.into_dump(SimTime::from_millis(900));
        assert_eq!(dump.spans.len(), 2);
        assert_eq!(dump.spans[0].id, d);
        assert_eq!(dump.spans[0].attrs, vec![("rack".to_string(), 3.0)]);
        assert_eq!(dump.spans[1].parent, Some(d));
        assert_eq!(
            dump.spans[1].end,
            SimTime::from_millis(900),
            "closed at dump"
        );
        assert_eq!(dump.dropped, 0);
        let _ = s;
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut tracer = Tracer::new(SpanSink::Null);
        assert!(!tracer.enabled());
        let n = tracer.intern("x");
        let id = tracer.start(SimTime::ZERO, n, None);
        tracer.set_attr(id, "k", 1.0);
        tracer.end(SimTime::ZERO, id);
        assert_eq!(tracer.open_count(), 0);
        let dump = tracer.into_dump(SimTime::ZERO);
        assert!(dump.spans.is_empty());
    }

    #[test]
    fn set_attr_after_close_is_a_noop() {
        let mut tracer = Tracer::new(SpanSink::Ring(RingSpanRecorder::new(4)));
        let n = tracer.intern("x");
        let id = tracer.start(SimTime::ZERO, n, None);
        tracer.end(SimTime::from_millis(1), id);
        tracer.set_attr(id, "late", 1.0);
        let dump = tracer.into_dump(SimTime::from_millis(1));
        assert!(dump.spans[0].attrs.is_empty());
    }

    #[test]
    fn dump_round_trips_through_codec() {
        let mut tracer = Tracer::new(SpanSink::Ring(RingSpanRecorder::new(4)));
        let n = tracer.intern("batt.discharge");
        let id = tracer.start(SimTime::from_millis(10), n, None);
        tracer.set_attr(id, "rack", 1.0);
        tracer.end(SimTime::from_millis(20), id);
        let dump = tracer.into_dump(SimTime::from_millis(20));
        for format in [Format::Jsonl, Format::Csv] {
            let parsed = parse_spans(&dump.serialize(format), format).unwrap();
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0].name, "batt.discharge");
            assert_eq!(parsed[0].attr("rack"), Some(1.0));
        }
    }
}
