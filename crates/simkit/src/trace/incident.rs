//! Forensic incident reconstruction from a recorded span trace.
//!
//! [`IncidentReconstructor`] joins three recorded streams back into
//! causal [`Incident`] objects:
//!
//! * the **span trace** (attack phases, storage episodes, cap episodes,
//!   breaker excursions, policy residencies — with parent links),
//! * the **telemetry stream** (detector firings and policy level-change
//!   events), and
//! * optional **ground truth** (the scenario's nominal attack windows),
//!
//! answering the post-mortem questions directly: what was the root
//! cause, which racks were in the blast radius, how long until the
//! detectors fired, how long until the policy escalated, and how much
//! stored energy the defense spent.
//!
//! Reconstruction keys off span-name conventions rather than concrete
//! types so any simulator that follows them gets forensics for free:
//! incident roots are parentless spans named `attack.*`
//! ([`ATTACK_SPAN_PREFIX`]); spans named in [`STORAGE_SPANS`] carry an
//! [`ENERGY_ATTR`] attribute; per-rack spans carry a [`RACK_ATTR`]
//! attribute.

use std::collections::{BTreeMap, BTreeSet};

use crate::telemetry::codec::ParsedRecord;
use crate::time::SimTime;
use crate::trace::codec::ParsedSpan;

/// Span-name prefix marking incident root causes.
pub const ATTACK_SPAN_PREFIX: &str = "attack.";
/// Spans that spend stored energy; they carry an [`ENERGY_ATTR`].
pub const STORAGE_SPANS: [&str; 2] = ["batt.discharge", "udeb.shave"];
/// Per-rack defense/symptom episodes counted into the blast radius.
pub const DEFENSE_SPANS: [&str; 4] = [
    "batt.discharge",
    "udeb.shave",
    "cap.engage",
    "breaker.excursion",
];
/// Attribute key naming the rack a span describes.
pub const RACK_ATTR: &str = "rack";
/// Attribute key carrying an episode's shed energy in joules.
pub const ENERGY_ATTR: &str = "energy_j";
/// Telemetry event kind for fused detector firings.
pub const DETECTOR_FIRED_EVENT: &str = "detector_fired";
/// Telemetry event kind for policy level changes (value = new level).
pub const LEVEL_CHANGE_EVENT: &str = "level_change";

/// Ground-truth attack windows in wire units (milliseconds), decoupled
/// from any attack-model crate. Producers convert their scenario types
/// into this (e.g. `AttackWindows::to_ground_truth` in the attack
/// crate).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroundTruth {
    /// The Phase-I drain window `[start, end)`, if any.
    pub drain: Option<(u64, u64)>,
    /// Phase-II spike windows `[start, end)`, in time order.
    pub spikes: Vec<(u64, u64)>,
}

impl GroundTruth {
    /// When the attack nominally began: the drain start, or the first
    /// spike start for drain-less scenarios.
    pub fn attack_start_ms(&self) -> Option<u64> {
        self.drain
            .map(|(s, _)| s)
            .or_else(|| self.spikes.first().map(|&(s, _)| s))
    }
}

/// One reconstructed incident: a causal span tree rooted at an attack
/// span, joined with the detection/policy record.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Root-cause span id.
    pub root_id: u64,
    /// Root-cause span name (e.g. `attack.drain`).
    pub root_name: String,
    /// Incident window start (earliest member span open), ms.
    pub start_ms: u64,
    /// Incident window end (latest member span close), ms.
    pub end_ms: u64,
    /// Ids of every span in the causal tree, ascending.
    pub span_ids: Vec<u64>,
    /// Racks touched: member spans' racks plus defense episodes
    /// overlapping the window, ascending.
    pub blast_racks: Vec<u64>,
    /// Fused detector firings inside the incident window.
    pub detector_firings: u64,
    /// First detector firing after the incident opened, relative to the
    /// incident start. `None` when nothing fired.
    pub time_to_detect_ms: Option<u64>,
    /// First detector firing after the *ground-truth* attack start,
    /// relative to that start. `None` without ground truth or firings.
    pub detect_lag_vs_truth_ms: Option<u64>,
    /// First policy escalation to L2+ after the incident opened,
    /// relative to the incident start. `None` when the policy never
    /// escalated.
    pub time_to_escalate_ms: Option<u64>,
    /// Stored energy (battery + µDEB) spent by episodes belonging to or
    /// overlapping the incident, in joules.
    pub shed_energy_j: f64,
}

/// Joins a parsed span trace with telemetry and ground truth into
/// [`Incident`]s.
///
/// # Example
///
/// ```
/// use simkit::telemetry::Format;
/// use simkit::trace::{parse_spans, IncidentReconstructor};
///
/// let trace = "{\"id\":0,\"name\":\"attack.drain\",\"parent\":null,\"t0\":0,\"t1\":10,\"attrs\":{\"rack\":1}}\n\
///              {\"id\":1,\"name\":\"attack.spike\",\"parent\":0,\"t0\":10,\"t1\":20,\"attrs\":{\"rack\":1}}\n";
/// let spans = parse_spans(trace, Format::Jsonl).unwrap();
/// let incidents = IncidentReconstructor::new(&spans).reconstruct();
/// assert_eq!(incidents.len(), 1);
/// assert_eq!(incidents[0].span_ids, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct IncidentReconstructor<'a> {
    spans: &'a [ParsedSpan],
    telemetry: &'a [ParsedRecord],
    truth: Option<&'a GroundTruth>,
}

impl<'a> IncidentReconstructor<'a> {
    /// Starts a reconstruction over a parsed span trace.
    pub fn new(spans: &'a [ParsedSpan]) -> Self {
        IncidentReconstructor {
            spans,
            telemetry: &[],
            truth: None,
        }
    }

    /// Joins the parsed telemetry stream (detector firings, level
    /// changes).
    pub fn with_telemetry(mut self, records: &'a [ParsedRecord]) -> Self {
        self.telemetry = records;
        self
    }

    /// Joins scenario ground truth for detection-lag scoring.
    pub fn with_ground_truth(mut self, truth: &'a GroundTruth) -> Self {
        self.truth = truth.into();
        self
    }

    /// Builds incidents: one per parentless `attack.*` span, in
    /// `(start, id)` order.
    pub fn reconstruct(&self) -> Vec<Incident> {
        let by_id: BTreeMap<u64, &ParsedSpan> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for span in self.spans {
            // A parent evicted from the ring makes its children roots of
            // their own (partial) trees; only known parents link.
            if let Some(p) = span.parent.filter(|p| by_id.contains_key(p)) {
                children.entry(p).or_default().push(span.id);
            }
        }
        let mut roots: Vec<&ParsedSpan> = self
            .spans
            .iter()
            .filter(|s| {
                s.name.starts_with(ATTACK_SPAN_PREFIX)
                    && s.parent.filter(|p| by_id.contains_key(p)).is_none()
            })
            .collect();
        roots.sort_by_key(|s| (s.start_ms, s.id));
        roots
            .into_iter()
            .map(|root| self.build_incident(root, &by_id, &children))
            .collect()
    }

    fn build_incident(
        &self,
        root: &ParsedSpan,
        by_id: &BTreeMap<u64, &ParsedSpan>,
        children: &BTreeMap<u64, Vec<u64>>,
    ) -> Incident {
        // Collect the causal tree (DFS; children were pushed in span
        // order, which is deterministic).
        let mut members: Vec<u64> = Vec::new();
        let mut stack = vec![root.id];
        while let Some(id) = stack.pop() {
            members.push(id);
            if let Some(kids) = children.get(&id) {
                stack.extend(kids.iter().rev());
            }
        }
        members.sort_unstable();
        let member_set: BTreeSet<u64> = members.iter().copied().collect();
        let mut start_ms = root.start_ms;
        let mut end_ms = root.end_ms;
        for &id in &members {
            let s = by_id[&id];
            start_ms = start_ms.min(s.start_ms);
            end_ms = end_ms.max(s.end_ms);
        }

        let overlaps = |s: &ParsedSpan| -> bool { s.start_ms < end_ms && s.end_ms > start_ms };
        let mut blast_racks: BTreeSet<u64> = BTreeSet::new();
        let mut shed_energy_j = 0.0;
        for span in self.spans {
            let member = member_set.contains(&span.id);
            let defense_overlap = DEFENSE_SPANS.contains(&span.name.as_str()) && overlaps(span);
            if member || defense_overlap {
                if let Some(rack) = span.attr(RACK_ATTR) {
                    blast_racks.insert(rack as u64);
                }
                if STORAGE_SPANS.contains(&span.name.as_str()) {
                    shed_energy_j += span.attr(ENERGY_ATTR).unwrap_or(0.0);
                }
            }
        }
        // Overload/trip telemetry widens the blast radius to racks the
        // span trace may have missed (e.g. a ring-evicted episode).
        for r in self.telemetry {
            if r.is_event
                && (r.name == "overload" || r.name == "breaker_trip")
                && r.time_ms >= start_ms
                && r.time_ms <= end_ms
            {
                if let Some(num) = r.source.strip_prefix("rack-") {
                    if let Ok(rack) = num.parse::<u64>() {
                        blast_racks.insert(rack);
                    }
                }
            }
        }

        let firings: Vec<u64> = self
            .telemetry
            .iter()
            .filter(|r| r.is_event && r.name == DETECTOR_FIRED_EVENT)
            .map(|r| r.time_ms)
            .collect();
        let detector_firings = firings
            .iter()
            .filter(|&&t| t >= start_ms && t <= end_ms)
            .count() as u64;
        let time_to_detect_ms = firings
            .iter()
            .find(|&&t| t >= start_ms)
            .map(|&t| t - start_ms);
        let detect_lag_vs_truth_ms =
            self.truth
                .and_then(GroundTruth::attack_start_ms)
                .and_then(|truth_start| {
                    firings
                        .iter()
                        .find(|&&t| t >= truth_start)
                        .map(|&t| t - truth_start)
                });
        let time_to_escalate_ms = self
            .telemetry
            .iter()
            .find(|r| {
                r.is_event
                    && r.name == LEVEL_CHANGE_EVENT
                    && r.value >= 2.0
                    && r.time_ms >= start_ms
            })
            .map(|r| r.time_ms - start_ms);

        Incident {
            root_id: root.id,
            root_name: root.name.clone(),
            start_ms,
            end_ms,
            span_ids: members,
            blast_racks: blast_racks.into_iter().collect(),
            detector_firings,
            time_to_detect_ms,
            detect_lag_vs_truth_ms,
            time_to_escalate_ms,
            shed_energy_j,
        }
    }
}

fn json_opt(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

impl Incident {
    /// Renders this incident as one JSON object.
    pub fn to_json(&self) -> String {
        let ids: Vec<String> = self.span_ids.iter().map(u64::to_string).collect();
        let racks: Vec<String> = self.blast_racks.iter().map(u64::to_string).collect();
        format!(
            "{{\"root_id\":{},\"root_name\":\"{}\",\"start_ms\":{},\"end_ms\":{},\
             \"span_ids\":[{}],\"blast_racks\":[{}],\"detector_firings\":{},\
             \"time_to_detect_ms\":{},\"detect_lag_vs_truth_ms\":{},\
             \"time_to_escalate_ms\":{},\"shed_energy_j\":{}}}",
            self.root_id,
            self.root_name,
            self.start_ms,
            self.end_ms,
            ids.join(","),
            racks.join(","),
            self.detector_firings,
            json_opt(self.time_to_detect_ms),
            json_opt(self.detect_lag_vs_truth_ms),
            json_opt(self.time_to_escalate_ms),
            self.shed_energy_j,
        )
    }
}

/// Renders a full incident report as JSON: `{"incidents":[...]}`.
pub fn render_report_json(incidents: &[Incident]) -> String {
    let mut out = String::from("{\"incidents\":[");
    for (i, incident) in incidents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&incident.to_json());
    }
    if !incidents.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Renders the span trace as an ASCII sim-time timeline (a Gantt-style
/// view), rows in causal order (roots by start time, children indented
/// under their parents), bars scaled into `width` columns.
pub fn render_timeline(spans: &[ParsedSpan], width: usize) -> String {
    let width = width.max(10);
    if spans.is_empty() {
        return "(no spans)\n".to_string();
    }
    let t_min = spans.iter().map(|s| s.start_ms).min().unwrap_or(0);
    let t_max = spans
        .iter()
        .map(|s| s.end_ms)
        .max()
        .unwrap_or(t_min)
        .max(t_min + 1);

    // Row order: DFS over the causal forest.
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: BTreeMap<u64, Vec<&ParsedSpan>> = BTreeMap::new();
    let mut roots: Vec<&ParsedSpan> = Vec::new();
    for span in spans {
        match span.parent.filter(|p| ids.contains(p)) {
            Some(p) => children.entry(p).or_default().push(span),
            None => roots.push(span),
        }
    }
    let sort = |v: &mut Vec<&ParsedSpan>| v.sort_by_key(|s| (s.start_ms, s.id));
    sort(&mut roots);
    children.values_mut().for_each(sort);
    let mut rows: Vec<(usize, &ParsedSpan)> = Vec::new();
    let mut stack: Vec<(usize, &ParsedSpan)> = roots.into_iter().rev().map(|s| (0, s)).collect();
    while let Some((depth, span)) = stack.pop() {
        rows.push((depth, span));
        if let Some(kids) = children.get(&span.id) {
            stack.extend(kids.iter().rev().map(|&s| (depth + 1, s)));
        }
    }

    let label = |depth: usize, span: &ParsedSpan| -> String {
        let mut text = format!("{}{}", "  ".repeat(depth), span.name);
        if let Some(rack) = span.attr(RACK_ATTR) {
            text.push_str(&format!(" (rack {})", rack as u64));
        }
        text
    };
    let label_w = rows
        .iter()
        .map(|&(d, s)| label(d, s).len())
        .max()
        .unwrap_or(0);

    let span_ms = (t_max - t_min) as f64;
    let col =
        |t: u64| -> usize { (((t - t_min) as f64 / span_ms) * width as f64).round() as usize };
    let mut out = format!(
        "sim-time {} .. {} ({} spans)\n",
        SimTime::from_millis(t_min),
        SimTime::from_millis(t_max),
        spans.len()
    );
    for (depth, span) in rows {
        let c0 = col(span.start_ms).min(width - 1);
        let c1 = col(span.end_ms).clamp(c0 + 1, width);
        let mut bar = String::with_capacity(width);
        for c in 0..width {
            bar.push(if c >= c0 && c < c1 { '=' } else { ' ' });
        }
        out.push_str(&format!(
            "{:<label_w$} |{}| {}..{}\n",
            label(depth, span),
            bar,
            SimTime::from_millis(span.start_ms),
            SimTime::from_millis(span.end_ms),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::codec::{parse, Format};
    use crate::trace::codec::parse_spans;

    fn two_phase_trace() -> Vec<ParsedSpan> {
        let text = "\
{\"id\":0,\"name\":\"attack.drain\",\"parent\":null,\"t0\":30000,\"t1\":330000,\"attrs\":{\"attack\":0,\"rack\":1,\"nodes\":4}}\n\
{\"id\":1,\"name\":\"batt.discharge\",\"parent\":0,\"t0\":31000,\"t1\":320000,\"attrs\":{\"rack\":1,\"energy_j\":5000,\"max_w\":400}}\n\
{\"id\":2,\"name\":\"cap.engage\",\"parent\":1,\"t0\":60000,\"t1\":90000,\"attrs\":{\"rack\":1,\"min_factor\":0.8}}\n\
{\"id\":3,\"name\":\"attack.spike\",\"parent\":0,\"t0\":330000,\"t1\":600000,\"attrs\":{\"attack\":0,\"rack\":1,\"nodes\":4}}\n\
{\"id\":4,\"name\":\"udeb.shave\",\"parent\":3,\"t0\":331000,\"t1\":333000,\"attrs\":{\"rack\":1,\"energy_j\":800,\"max_w\":900}}\n\
{\"id\":5,\"name\":\"batt.discharge\",\"parent\":null,\"t0\":340000,\"t1\":350000,\"attrs\":{\"rack\":2,\"energy_j\":200,\"max_w\":100}}\n";
        parse_spans(text, Format::Jsonl).unwrap()
    }

    #[test]
    fn reconstructs_the_two_phase_tree() {
        let spans = two_phase_trace();
        let incidents = IncidentReconstructor::new(&spans).reconstruct();
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.root_id, 0);
        assert_eq!(inc.root_name, "attack.drain");
        assert_eq!(inc.span_ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(inc.start_ms, 30_000);
        assert_eq!(inc.end_ms, 600_000);
        // Rack 2's pooled discharge overlaps the window, so it is in the
        // blast radius and its energy counts as shed.
        assert_eq!(inc.blast_racks, vec![1, 2]);
        assert_eq!(inc.shed_energy_j, 6000.0);
        assert_eq!(inc.detector_firings, 0);
        assert_eq!(inc.time_to_detect_ms, None);
    }

    #[test]
    fn joins_telemetry_and_ground_truth() {
        let spans = two_phase_trace();
        let telemetry = parse(
            "{\"t\":331500,\"e\":\"detector_fired\",\"s\":\"detect\",\"v\":3}\n\
             {\"t\":332000,\"e\":\"level_change\",\"s\":\"policy\",\"v\":2}\n\
             {\"t\":333000,\"e\":\"overload\",\"s\":\"rack-03\",\"v\":9000}\n",
            Format::Jsonl,
        )
        .unwrap();
        let truth = GroundTruth {
            drain: Some((30_000, 330_000)),
            spikes: vec![(330_000, 332_000)],
        };
        let incidents = IncidentReconstructor::new(&spans)
            .with_telemetry(&telemetry)
            .with_ground_truth(&truth)
            .reconstruct();
        let inc = &incidents[0];
        assert_eq!(inc.time_to_detect_ms, Some(301_500));
        assert_eq!(inc.detect_lag_vs_truth_ms, Some(301_500));
        assert_eq!(inc.time_to_escalate_ms, Some(302_000));
        assert_eq!(inc.detector_firings, 1);
        assert_eq!(
            inc.blast_racks,
            vec![1, 2, 3],
            "overload widened the radius"
        );
    }

    #[test]
    fn truth_attack_start_prefers_drain() {
        let t = GroundTruth {
            drain: Some((5, 10)),
            spikes: vec![(10, 12)],
        };
        assert_eq!(t.attack_start_ms(), Some(5));
        let t = GroundTruth {
            drain: None,
            spikes: vec![(10, 12)],
        };
        assert_eq!(t.attack_start_ms(), Some(10));
        assert_eq!(GroundTruth::default().attack_start_ms(), None);
    }

    #[test]
    fn json_report_is_machine_readable() {
        let spans = two_phase_trace();
        let incidents = IncidentReconstructor::new(&spans).reconstruct();
        let json = render_report_json(&incidents);
        assert!(json.starts_with("{\"incidents\":["));
        assert!(json.contains("\"root_name\":\"attack.drain\""));
        assert!(json.contains("\"time_to_detect_ms\":null"));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(render_report_json(&[]), "{\"incidents\":[]}\n");
    }

    #[test]
    fn timeline_orders_children_under_parents() {
        let spans = two_phase_trace();
        let text = render_timeline(&spans, 40);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("sim-time"));
        assert!(lines[1].starts_with("attack.drain"));
        assert!(lines[2].starts_with("  batt.discharge (rack 1)"));
        assert!(lines[3].starts_with("    cap.engage (rack 1)"));
        assert!(lines[4].starts_with("  attack.spike"));
        // Every row has a bar.
        assert!(lines[1..].iter().all(|l| l.contains('|')));
        assert_eq!(render_timeline(&[], 40), "(no spans)\n");
    }
}
