//! Metric interning and aggregate instruments.
//!
//! A [`MetricRegistry`] maps stable metric *names* to small integer
//! [`MetricId`]s once, up front, so the hot simulation loop never hashes
//! or compares strings — emitting a sample is an array index. The
//! registry also owns the *aggregate* face of each metric (a counter
//! total, the last gauge value, a fixed-bucket histogram plus running
//! [`OnlineStats`]), which survives even when no per-tick trace is being
//! recorded.
//!
//! The registry is deliberately lock-free in the cheap sense: it is a
//! plain `&mut` structure. Parallel sweeps give each worker its own
//! registry and [`merge`](MetricRegistry::merge) them afterwards — the
//! same pattern the sweep runner uses for results — instead of sharing
//! one registry behind a mutex in the hot loop.

use std::collections::BTreeMap;

use crate::jsonio::{write_f64, Json, ObjFields};
use crate::stats::{Histogram, OnlineStats};

/// Interned handle for one registered metric.
///
/// Ids are dense indices handed out in registration order, so iterating
/// metrics by id is deterministic and cheap. A registry holds at most
/// 65 536 metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u16);

impl MetricId {
    /// The dense index of this metric within its registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of instrument a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-value instrument (per-tick series are gauges).
    Gauge,
    /// Fixed-bucket distribution of observations.
    Histogram,
}

impl MetricKind {
    /// Short tag used in rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Aggregate state of one metric.
#[derive(Debug, Clone, PartialEq)]
struct Instrument {
    kind: MetricKind,
    counter: u64,
    gauge: f64,
    histogram: Option<Histogram>,
    stats: OnlineStats,
}

impl Instrument {
    fn new(kind: MetricKind, histogram: Option<Histogram>) -> Self {
        Instrument {
            kind,
            counter: 0,
            gauge: 0.0,
            histogram,
            stats: OnlineStats::new(),
        }
    }
}

/// Interning metric registry with aggregate instruments.
///
/// Metric names follow the workspace convention
/// `<scope>.<quantity>[_<unit>]` (e.g. `rack-03.draw_w`,
/// `cluster.breaker_trips`); only `[A-Za-z0-9._-]` are allowed so names
/// embed cleanly in JSONL/CSV without escaping.
///
/// # Example
///
/// ```
/// use simkit::telemetry::{MetricKind, MetricRegistry};
///
/// let mut reg = MetricRegistry::new();
/// let trips = reg.register_counter("cluster.breaker_trips");
/// let soc = reg.register_gauge("rack-00.soc");
/// reg.inc(trips, 1);
/// reg.set_gauge(soc, 0.85);
/// assert_eq!(reg.counter(trips), 1);
/// assert_eq!(reg.gauge(soc), 0.85);
/// assert_eq!(reg.kind(soc), MetricKind::Gauge);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricRegistry {
    names: Vec<String>,
    instruments: Vec<Instrument>,
    by_name: BTreeMap<String, MetricId>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    fn register(&mut self, name: &str, kind: MetricKind, histogram: Option<Histogram>) -> MetricId {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')),
            "metric name {name:?} must be non-empty [A-Za-z0-9._-]"
        );
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.instruments[id.index()].kind,
                kind,
                "metric {name:?} re-registered with a different kind"
            );
            return id;
        }
        assert!(self.names.len() < u16::MAX as usize, "metric registry full");
        let id = MetricId(self.names.len() as u16);
        self.names.push(name.to_string());
        self.instruments.push(Instrument::new(kind, histogram));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Registers (or looks up) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the name is invalid or already registered with a
    /// different kind.
    pub fn register_counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Counter, None)
    }

    /// Registers (or looks up) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if the name is invalid or already registered with a
    /// different kind.
    pub fn register_gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Gauge, None)
    }

    /// Registers (or looks up) a fixed-bucket histogram over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the name is invalid, already registered with a different
    /// kind, `lo >= hi`, or `buckets == 0`.
    pub fn register_histogram(&mut self, name: &str, lo: f64, hi: f64, buckets: usize) -> MetricId {
        self.register(
            name,
            MetricKind::Histogram,
            Some(Histogram::new(lo, hi, buckets)),
        )
    }

    /// Looks up a metric by name.
    pub fn id(&self, name: &str) -> Option<MetricId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a metric.
    pub fn name(&self, id: MetricId) -> &str {
        &self.names[id.index()]
    }

    /// All metric names, in id (registration) order.
    pub fn names(&self) -> impl ExactSizeIterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// All ids, in registration order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = MetricId> {
        (0..self.names.len() as u16).map(MetricId)
    }

    /// The kind of a metric.
    pub fn kind(&self, id: MetricId) -> MetricKind {
        self.instruments[id.index()].kind
    }

    /// Adds `n` to a counter.
    pub fn inc(&mut self, id: MetricId, n: u64) {
        let inst = &mut self.instruments[id.index()];
        debug_assert_eq!(inst.kind, MetricKind::Counter);
        inst.counter += n;
    }

    /// Sets a gauge's current value (also feeds its running statistics).
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        let inst = &mut self.instruments[id.index()];
        debug_assert_eq!(inst.kind, MetricKind::Gauge);
        inst.gauge = value;
        inst.stats.push(value);
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: MetricId, value: f64) {
        let inst = &mut self.instruments[id.index()];
        debug_assert_eq!(inst.kind, MetricKind::Histogram);
        if let Some(h) = &mut inst.histogram {
            h.push(value);
        }
        inst.stats.push(value);
    }

    /// A counter's total.
    pub fn counter(&self, id: MetricId) -> u64 {
        self.instruments[id.index()].counter
    }

    /// A gauge's last value.
    pub fn gauge(&self, id: MetricId) -> f64 {
        self.instruments[id.index()].gauge
    }

    /// A histogram metric's buckets, if `id` is a histogram.
    pub fn histogram(&self, id: MetricId) -> Option<&Histogram> {
        self.instruments[id.index()].histogram.as_ref()
    }

    /// Running statistics of every observation/set on this metric.
    pub fn stats(&self, id: MetricId) -> &OnlineStats {
        &self.instruments[id.index()].stats
    }

    /// Renders this registry alone as Prometheus text exposition — see
    /// [`render_prometheus_families`] for the multi-instance form and
    /// the exposition rules.
    pub fn render_prometheus(&self, prefix: &str, label: &str) -> String {
        render_prometheus_families(prefix, &[(label, self)])
    }

    /// Merges another registry's aggregates into this one (parallel
    /// sweep reduction): counters add, gauges take `other`'s last value,
    /// histogram buckets add, statistics merge.
    ///
    /// # Panics
    ///
    /// Panics if the registries were not built from the same metric set
    /// (names, order and kinds must match).
    pub fn merge(&mut self, other: &MetricRegistry) {
        assert_eq!(
            self.names, other.names,
            "registries have different metric sets"
        );
        for (mine, theirs) in self.instruments.iter_mut().zip(&other.instruments) {
            assert_eq!(mine.kind, theirs.kind, "metric kind mismatch in merge");
            mine.counter += theirs.counter;
            if theirs.stats.count() > 0 {
                mine.gauge = theirs.gauge;
            }
            if let (Some(h), Some(o)) = (&mut mine.histogram, &theirs.histogram) {
                h.merge(o);
            }
            mine.stats.merge(&theirs.stats);
        }
    }

    /// Serializes every instrument's *value* state (counter totals,
    /// gauge last-values, histogram buckets, running statistics) as one
    /// JSON object, in registration order. The metric *set* itself is
    /// structural — rebuilt by re-running the same registration code —
    /// so the snapshot restates names and kinds only to validate that
    /// structure on restore.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"metrics\":[");
        for (i, id) in self.ids().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let inst = &self.instruments[id.index()];
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\"",
                self.name(id),
                inst.kind.as_str()
            );
            match inst.kind {
                MetricKind::Counter => {
                    let _ = write!(out, ",\"counter\":{}", inst.counter);
                }
                MetricKind::Gauge => {
                    out.push_str(",\"gauge\":");
                    write_f64(&mut out, inst.gauge);
                    out.push_str(",\"stats\":");
                    out.push_str(&inst.stats.snapshot_json());
                }
                MetricKind::Histogram => {
                    out.push_str(",\"hist\":");
                    out.push_str(&inst.histogram.as_ref().expect("histogram").snapshot_json());
                    out.push_str(",\"stats\":");
                    out.push_str(&inst.stats.snapshot_json());
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Overwrites every instrument's value state from a parsed
    /// [`snapshot_json`](Self::snapshot_json) document. The snapshot
    /// must cover exactly this registry's metric set, in registration
    /// order, with matching kinds (and histogram shapes) — any drift is
    /// an error and the registry is left partially restored only on the
    /// already-validated prefix.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("registry snapshot")?;
        let metrics = obj.arr_field("metrics")?;
        if metrics.len() != self.names.len() {
            return Err(format!(
                "registry snapshot has {} metrics, registry has {}",
                metrics.len(),
                self.names.len()
            ));
        }
        for (id, item) in self.ids().zip(metrics) {
            let entry = item.as_object("metric entry")?;
            let name = entry.str_field("name")?;
            if name != self.name(id) {
                return Err(format!(
                    "metric {} is {:?} in the snapshot but {:?} in the registry",
                    id.index(),
                    name,
                    self.name(id)
                ));
            }
            let inst = &mut self.instruments[id.index()];
            if entry.str_field("kind")? != inst.kind.as_str() {
                return Err(format!("metric {name:?} kind mismatch"));
            }
            match inst.kind {
                MetricKind::Counter => {
                    inst.counter = entry.u64_field("counter")?;
                }
                MetricKind::Gauge => {
                    inst.gauge = entry.f64_field_lossy("gauge")?;
                    inst.stats = OnlineStats::from_snapshot(entry.field("stats")?)?;
                }
                MetricKind::Histogram => {
                    inst.histogram
                        .as_mut()
                        .expect("histogram")
                        .restore_snapshot(entry.field("hist")?)
                        .map_err(|e| format!("metric {name:?}: {e}"))?;
                    inst.stats = OnlineStats::from_snapshot(entry.field("stats")?)?;
                }
            }
        }
        Ok(())
    }
}

/// Registry metric names use the workspace `<scope>.<quantity>` dotted
/// convention; Prometheus names only allow `[a-zA-Z0-9_:]`, so dots and
/// dashes map to underscores.
fn prometheus_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len());
    out.push_str(prefix);
    for c in name.chars() {
        out.push(if matches!(c, '.' | '-') { '_' } else { c });
    }
    out
}

/// Renders identically-shaped registries as one merged Prometheus text
/// exposition: every family gets a single `# HELP`/`# TYPE` block (the
/// original dotted name doubles as the help string) followed by one
/// series per instance, tagged with that instance's label block (e.g.
/// `tenant="acme"`; empty for an unlabeled singleton). Histogram
/// instruments render the full spec-conformant cumulative
/// `_bucket{le="..."}` series — including the `+Inf` bucket — plus
/// `_sum` and `_count`. Counters and gauges render their value
/// directly. `prefix` is prepended to every sanitized family name
/// (e.g. `padsimd_`).
///
/// # Panics
///
/// Panics if the registries do not share the same metric set (names,
/// order, and kinds).
pub fn render_prometheus_families(prefix: &str, instances: &[(&str, &MetricRegistry)]) -> String {
    use std::fmt::Write as _;
    let Some((_, first)) = instances.first() else {
        return String::new();
    };
    for (_, reg) in instances {
        assert_eq!(
            first.names, reg.names,
            "instances have different metric sets"
        );
    }
    let mut out = String::new();
    for id in first.ids() {
        let name = first.name(id);
        let fam = prometheus_name(prefix, name);
        let kind = first.kind(id);
        let _ = writeln!(out, "# HELP {fam} {name}");
        let _ = writeln!(out, "# TYPE {fam} {}", kind.as_str());
        for (label, reg) in instances {
            assert_eq!(reg.kind(id), kind, "metric kind mismatch across instances");
            // `{fam}{...}` with an empty label block must render as a
            // bare series name, so the braces are conditional.
            let solo = |extra: &str| -> String {
                match (label.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{label}}}"),
                    (false, false) => format!("{{{label},{extra}}}"),
                }
            };
            match kind {
                MetricKind::Counter => {
                    let _ = writeln!(out, "{fam}{} {}", solo(""), reg.counter(id));
                }
                MetricKind::Gauge => {
                    let _ = writeln!(out, "{fam}{} {}", solo(""), reg.gauge(id));
                }
                MetricKind::Histogram => {
                    let hist = reg.histogram(id).expect("histogram instrument");
                    for (le, cum) in hist.cumulative() {
                        let _ =
                            writeln!(out, "{fam}_bucket{} {cum}", solo(&format!("le=\"{le}\"")));
                    }
                    let _ = writeln!(out, "{fam}_bucket{} {}", solo("le=\"+Inf\""), hist.count());
                    let _ = writeln!(out, "{fam}_sum{} {}", solo(""), hist.sum());
                    let _ = writeln!(out, "{fam}_count{} {}", solo(""), hist.count());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut reg = MetricRegistry::new();
        let a = reg.register_gauge("a.x");
        let b = reg.register_counter("b.y");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(
            reg.register_gauge("a.x"),
            a,
            "re-registering returns the same id"
        );
        assert_eq!(reg.id("b.y"), Some(b));
        assert_eq!(reg.id("missing"), None);
        assert_eq!(reg.names().collect::<Vec<_>>(), ["a.x", "b.y"]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_rejected() {
        let mut reg = MetricRegistry::new();
        reg.register_gauge("a.x");
        reg.register_counter("a.x");
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn bad_name_rejected() {
        MetricRegistry::new().register_gauge("has space");
    }

    #[test]
    fn instruments_accumulate() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("c");
        let g = reg.register_gauge("g");
        let h = reg.register_histogram("h", 0.0, 10.0, 5);
        reg.inc(c, 2);
        reg.inc(c, 3);
        reg.set_gauge(g, 1.0);
        reg.set_gauge(g, 2.0);
        reg.observe(h, 3.0);
        reg.observe(h, 9.0);
        assert_eq!(reg.counter(c), 5);
        assert_eq!(reg.gauge(g), 2.0);
        assert_eq!(reg.histogram(h).unwrap().counts().iter().sum::<u64>(), 2);
        assert_eq!(reg.stats(g).count(), 2);
        assert_eq!(reg.stats(g).mean(), 1.5);
    }

    #[test]
    fn prometheus_exposition_renders_histogram_buckets() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("ingest.records_total");
        let g = reg.register_gauge("policy.level");
        let h = reg.register_histogram("ingest.tick_gap_ms", 0.0, 10.0, 2);
        reg.inc(c, 3);
        reg.set_gauge(g, 2.0);
        reg.observe(h, 1.0);
        reg.observe(h, 7.0);
        reg.observe(h, 99.0); // clamps into the last bucket
        let text = reg.render_prometheus("padsimd_", "tenant=\"acme\"");
        assert!(text.contains("# HELP padsimd_ingest_records_total ingest.records_total\n"));
        assert!(text.contains("# TYPE padsimd_ingest_records_total counter\n"));
        assert!(text.contains("padsimd_ingest_records_total{tenant=\"acme\"} 3\n"));
        assert!(text.contains("padsimd_policy_level{tenant=\"acme\"} 2\n"));
        assert!(text.contains("# TYPE padsimd_ingest_tick_gap_ms histogram\n"));
        assert!(text.contains("padsimd_ingest_tick_gap_ms_bucket{tenant=\"acme\",le=\"5\"} 1\n"));
        assert!(text.contains("padsimd_ingest_tick_gap_ms_bucket{tenant=\"acme\",le=\"10\"} 3\n"));
        assert!(text.contains("padsimd_ingest_tick_gap_ms_bucket{tenant=\"acme\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("padsimd_ingest_tick_gap_ms_sum{tenant=\"acme\"} 107\n"));
        assert!(text.contains("padsimd_ingest_tick_gap_ms_count{tenant=\"acme\"} 3\n"));
    }

    #[test]
    fn prometheus_exposition_merges_instances_under_one_family_block() {
        let build = |v: u64| {
            let mut reg = MetricRegistry::new();
            let c = reg.register_counter("ingest.records_total");
            reg.inc(c, v);
            reg
        };
        let (a, b) = (build(1), build(2));
        let text =
            render_prometheus_families("padsimd_", &[("tenant=\"a\"", &a), ("tenant=\"b\"", &b)]);
        assert_eq!(
            text.matches("# TYPE padsimd_ingest_records_total counter")
                .count(),
            1,
            "one TYPE block per family:\n{text}"
        );
        assert!(text.contains("padsimd_ingest_records_total{tenant=\"a\"} 1\n"));
        assert!(text.contains("padsimd_ingest_records_total{tenant=\"b\"} 2\n"));
    }

    #[test]
    fn prometheus_exposition_unlabeled_series_have_no_braces() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("a.b");
        reg.inc(c, 7);
        let h = reg.register_histogram("lat-ms", 0.0, 1.0, 1);
        reg.observe(h, 0.5);
        let text = reg.render_prometheus("", "");
        assert!(text.contains("a_b 7\n"));
        assert!(text.contains("lat_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_ms_sum 0.5\n"));
    }

    #[test]
    #[should_panic(expected = "different metric sets")]
    fn prometheus_exposition_rejects_mismatched_instances() {
        let mut a = MetricRegistry::new();
        a.register_counter("x");
        let mut b = MetricRegistry::new();
        b.register_counter("y");
        render_prometheus_families("", &[("", &a), ("", &b)]);
    }

    #[test]
    fn snapshot_restores_values_into_structurally_rebuilt_registry() {
        let build = || {
            let mut reg = MetricRegistry::new();
            let c = reg.register_counter("ingest.records_total");
            let g = reg.register_gauge("policy.level");
            let h = reg.register_histogram("ingest.tick_gap_ms", 0.0, 100.0, 4);
            (reg, c, g, h)
        };
        let (mut live, c, g, h) = build();
        live.inc(c, 42);
        live.set_gauge(g, 2.0);
        live.set_gauge(g, 3.0);
        live.observe(h, 7.5);
        live.observe(h, 250.0);
        let doc = crate::jsonio::JsonParser::parse_document(&live.snapshot_json()).unwrap();
        let (mut fresh, ..) = build();
        fresh.restore_snapshot(&doc).unwrap();
        assert_eq!(fresh, live);
        assert_eq!(fresh.snapshot_json(), live.snapshot_json());
    }

    #[test]
    fn snapshot_restore_rejects_structural_drift() {
        let mut a = MetricRegistry::new();
        a.register_counter("x");
        let doc = crate::jsonio::JsonParser::parse_document(&a.snapshot_json()).unwrap();
        let mut renamed = MetricRegistry::new();
        renamed.register_counter("y");
        assert!(renamed.restore_snapshot(&doc).is_err());
        let mut rekinded = MetricRegistry::new();
        rekinded.register_gauge("x");
        assert!(rekinded
            .restore_snapshot(&doc)
            .unwrap_err()
            .contains("kind"));
        let mut bigger = MetricRegistry::new();
        bigger.register_counter("x");
        bigger.register_counter("z");
        assert!(bigger.restore_snapshot(&doc).unwrap_err().contains("has"));
    }

    #[test]
    fn merge_reduces_worker_registries() {
        let build = || {
            let mut reg = MetricRegistry::new();
            let c = reg.register_counter("c");
            let h = reg.register_histogram("h", 0.0, 10.0, 2);
            (reg, c, h)
        };
        let (mut a, c, h) = build();
        let (mut b, _, _) = build();
        a.inc(c, 1);
        a.observe(h, 1.0);
        b.inc(c, 4);
        b.observe(h, 9.0);
        a.merge(&b);
        assert_eq!(a.counter(c), 5);
        assert_eq!(a.histogram(h).unwrap().counts(), &[1, 1]);
        assert_eq!(a.stats(h).count(), 2);
    }
}
