//! Deterministic telemetry: metric registry, trace recording, and
//! offline inspection.
//!
//! The paper's attack thrives on coarse observability — utilization-scale
//! metering cannot see sub-second power spikes. This module is the
//! simulator's answer for its *own* observability: one instrumented
//! signal stream that every experiment, policy, and future detector
//! consumes, instead of ad-hoc stats per figure.
//!
//! Three layers:
//!
//! * [`MetricRegistry`] — interns metric names to dense [`MetricId`]s up
//!   front and owns aggregate instruments (counters, gauges, fixed-bucket
//!   histograms, running [`OnlineStats`](crate::stats::OnlineStats)).
//! * [`Recorder`] — the per-tick trace sink. [`NullRecorder`] is the
//!   do-nothing fast path, [`RingRecorder`] retains a bounded in-memory
//!   trace, [`JsonlRecorder`]/[`CsvRecorder`] stream to disk.
//!   [`TelemetrySink`] is the clonable enum simulations embed.
//! * Offline: [`parse`] reads a serialized trace back,
//!   [`TelemetryReport`] digests and renders it (`padsim inspect`).
//!
//! # Determinism contract
//!
//! Recorded data carries **simulation** time only — never wall-clock —
//! and serialized traces are ordered by `(SimTime, samples-before-events,
//! MetricId)` ([`sort_records`]). Metric ids are assigned in registration
//! order and emission happens in registration order, so a trace is a pure
//! function of (scenario, seed): running a sweep with `--jobs 1` or
//! `--jobs 4` produces byte-identical output. Values serialize via Rust's
//! default `f64` `Display` (shortest round-trip form), which is
//! platform-independent.

pub mod codec;
pub mod inspect;
pub mod record;
pub mod recorder;
pub mod registry;

pub use codec::{
    is_csv_header, parse, parse_line, parse_lossy, render_parsed, to_csv, to_jsonl, CsvRecorder,
    Format, JsonlRecorder, LossyParse, ParseError, ParsedRecord, CSV_HEADER,
};
pub use inspect::{EventDigest, MetricDigest, TelemetryReport};
pub use record::{sort_records, EventKind, EventRecord, Record, Sample};
pub use recorder::{NullRecorder, Recorder, RingRecorder, TelemetrySink};
pub use registry::{render_prometheus_families, MetricId, MetricKind, MetricRegistry};

/// A finished trace: the registry that names its metrics plus the
/// retained records, ready to serialize or digest.
///
/// This is what a simulation hands back after a recorded run — the
/// registry travels with the records because [`MetricId`]s are only
/// meaningful against the registry that minted them.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryDump {
    /// The registry the records' metric ids index into.
    pub registry: MetricRegistry,
    /// The trace, in canonical order.
    pub records: Vec<Record>,
    /// Records evicted from the ring before the dump was taken.
    pub dropped: u64,
}

impl TelemetryDump {
    /// Builds a dump, sorting `records` into canonical order.
    pub fn new(registry: MetricRegistry, mut records: Vec<Record>, dropped: u64) -> Self {
        sort_records(&mut records);
        TelemetryDump {
            registry,
            records,
            dropped,
        }
    }

    /// Serializes the trace to a JSONL string.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.registry, &self.records)
    }

    /// Serializes the trace to a CSV string (with header).
    pub fn to_csv(&self) -> String {
        to_csv(&self.registry, &self.records)
    }

    /// Serializes the trace in the given format.
    pub fn serialize(&self, format: Format) -> String {
        match format {
            Format::Jsonl => self.to_jsonl(),
            Format::Csv => self.to_csv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn dump_sorts_and_serializes() {
        let mut reg = MetricRegistry::new();
        let a = reg.register_gauge("a");
        let b = reg.register_gauge("b");
        // Deliberately out of order: later tick first.
        let records = vec![
            Record::Sample(Sample {
                time: SimTime::from_millis(200),
                metric: a,
                value: 2.0,
            }),
            Record::Sample(Sample {
                time: SimTime::from_millis(100),
                metric: b,
                value: 1.0,
            }),
        ];
        let dump = TelemetryDump::new(reg, records, 0);
        assert_eq!(
            dump.to_jsonl(),
            "{\"t\":100,\"m\":\"b\",\"v\":1}\n{\"t\":200,\"m\":\"a\",\"v\":2}\n"
        );
        assert!(dump.to_csv().starts_with(CSV_HEADER));
        assert_eq!(dump.serialize(Format::Jsonl), dump.to_jsonl());
    }
}
