//! Serialization of telemetry traces to JSONL and CSV, and the strict
//! parser `padsim inspect` uses to read them back.
//!
//! Formats are hand-rolled (the workspace has no serde) but strict and
//! versionless by construction: metric names are restricted to
//! `[A-Za-z0-9._-]` and event sources to the same charset, so no
//! escaping is ever needed and every line is trivially machine- and
//! grep-readable.
//!
//! # Wire formats
//!
//! JSONL — one object per line, keys always in this order:
//!
//! ```text
//! {"t":1000,"m":"rack-00.draw_w","v":123.45}      <- sample
//! {"t":1000,"e":"breaker_trip","s":"rack-00","v":1}  <- event
//! ```
//!
//! CSV — header `time_ms,record,name,source,value`:
//!
//! ```text
//! time_ms,record,name,source,value
//! 1000,sample,rack-00.draw_w,,123.45
//! 1000,event,breaker_trip,rack-00,1
//! ```
//!
//! Values are formatted with Rust's default `f64` `Display` (shortest
//! round-trip representation), which is deterministic across platforms —
//! the basis of the byte-identical determinism contract.

use std::io::{self, Write};

use crate::telemetry::record::{EventKind, Record};
use crate::telemetry::recorder::Recorder;
use crate::telemetry::registry::{MetricId, MetricRegistry};
use crate::time::SimTime;

/// On-disk trace format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// One JSON object per line (`.jsonl`).
    #[default]
    Jsonl,
    /// Comma-separated values with header (`.csv`).
    Csv,
}

impl Format {
    /// Parses a format name (`jsonl` or `csv`).
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "jsonl" => Some(Format::Jsonl),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }

    /// Guesses the format from a file path's extension, defaulting to
    /// JSONL.
    pub fn from_path(path: &str) -> Format {
        if path.rsplit('.').next() == Some("csv") {
            Format::Csv
        } else {
            Format::Jsonl
        }
    }

    /// Canonical file extension (without dot).
    pub fn extension(self) -> &'static str {
        match self {
            Format::Jsonl => "jsonl",
            Format::Csv => "csv",
        }
    }
}

fn write_sample_jsonl(out: &mut String, time: SimTime, name: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{{\"t\":{},\"m\":\"{}\",\"v\":{}}}",
        time.as_millis(),
        name,
        value
    );
}

fn write_event_jsonl(out: &mut String, time: SimTime, kind: EventKind, source: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{{\"t\":{},\"e\":\"{}\",\"s\":\"{}\",\"v\":{}}}",
        time.as_millis(),
        kind.as_str(),
        source,
        value
    );
}

/// CSV header line (with trailing newline).
pub const CSV_HEADER: &str = "time_ms,record,name,source,value\n";

fn write_sample_csv(out: &mut String, time: SimTime, name: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{},sample,{},,{}", time.as_millis(), name, value);
}

fn write_event_csv(out: &mut String, time: SimTime, kind: EventKind, source: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{},event,{},{},{}",
        time.as_millis(),
        kind.as_str(),
        source,
        value
    );
}

/// Serializes records (already in canonical order — see
/// [`sort_records`](crate::telemetry::sort_records)) to a JSONL string.
pub fn to_jsonl(registry: &MetricRegistry, records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 48);
    for record in records {
        match record {
            Record::Sample(s) => {
                write_sample_jsonl(&mut out, s.time, registry.name(s.metric), s.value)
            }
            Record::Event(e) => write_event_jsonl(&mut out, e.time, e.kind, &e.source, e.value),
        }
    }
    out
}

/// Serializes records (already in canonical order) to a CSV string with
/// header.
pub fn to_csv(registry: &MetricRegistry, records: &[Record]) -> String {
    let mut out = String::with_capacity(CSV_HEADER.len() + records.len() * 40);
    out.push_str(CSV_HEADER);
    for record in records {
        match record {
            Record::Sample(s) => {
                write_sample_csv(&mut out, s.time, registry.name(s.metric), s.value)
            }
            Record::Event(e) => write_event_csv(&mut out, e.time, e.kind, &e.source, e.value),
        }
    }
    out
}

/// A [`Recorder`] that streams records straight to a writer as JSONL.
///
/// Used when a single live run writes telemetry to disk without
/// buffering the whole trace. The metric name table is snapshotted from
/// the registry at construction, so the registry must be fully
/// registered first. I/O errors are sticky: the first error is stored
/// and returned by [`finish`](JsonlRecorder::finish); later records are
/// dropped.
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    writer: W,
    names: Vec<String>,
    error: Option<io::Error>,
}

impl<W: Write> JsonlRecorder<W> {
    /// Creates a streaming JSONL recorder over `writer`.
    pub fn new(writer: W, registry: &MetricRegistry) -> Self {
        JsonlRecorder {
            writer,
            names: registry.names().map(str::to_string).collect(),
            error: None,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record_sample(&mut self, time: SimTime, metric: MetricId, value: f64) {
        let mut line = String::with_capacity(48);
        write_sample_jsonl(&mut line, time, &self.names[metric.index()], value);
        self.write_line(&line);
    }

    fn record_event(&mut self, time: SimTime, kind: EventKind, source: &str, value: f64) {
        let mut line = String::with_capacity(48);
        write_event_jsonl(&mut line, time, kind, source, value);
        self.write_line(&line);
    }
}

/// A [`Recorder`] that streams records straight to a writer as CSV.
///
/// The header row is written at construction. Error handling matches
/// [`JsonlRecorder`].
#[derive(Debug)]
pub struct CsvRecorder<W: Write> {
    writer: W,
    names: Vec<String>,
    error: Option<io::Error>,
}

impl<W: Write> CsvRecorder<W> {
    /// Creates a streaming CSV recorder over `writer`, writing the
    /// header row immediately.
    pub fn new(mut writer: W, registry: &MetricRegistry) -> Self {
        let error = writer.write_all(CSV_HEADER.as_bytes()).err();
        CsvRecorder {
            writer,
            names: registry.names().map(str::to_string).collect(),
            error,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Recorder for CsvRecorder<W> {
    fn record_sample(&mut self, time: SimTime, metric: MetricId, value: f64) {
        let mut line = String::with_capacity(40);
        write_sample_csv(&mut line, time, &self.names[metric.index()], value);
        self.write_line(&line);
    }

    fn record_event(&mut self, time: SimTime, kind: EventKind, source: &str, value: f64) {
        let mut line = String::with_capacity(40);
        write_event_csv(&mut line, time, kind, source, value);
        self.write_line(&line);
    }
}

/// One record parsed back from a serialized trace.
///
/// Metric ids don't survive serialization (they're per-registry), so the
/// parsed form carries names.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Simulation time in milliseconds.
    pub time_ms: u64,
    /// Metric name for samples, event kind wire name for events.
    pub name: String,
    /// Event source (empty for samples).
    pub source: String,
    /// The recorded value.
    pub value: f64,
    /// `true` for events, `false` for samples.
    pub is_event: bool,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Pulls `"key":` off the front of `rest`, returning what follows.
pub(crate) fn expect_key<'a>(rest: &'a str, key: &str, line: usize) -> Result<&'a str, ParseError> {
    let want = format!("\"{key}\":");
    rest.strip_prefix(&want)
        .ok_or_else(|| err(line, format!("expected key {key:?}")))
}

/// Splits `rest` at the next `,` or the closing `}`.
pub(crate) fn next_field(rest: &str, line: usize) -> Result<(&str, &str), ParseError> {
    if let Some(pos) = rest.find([',', '}']) {
        let (field, tail) = rest.split_at(pos);
        Ok((field, &tail[1..]))
    } else {
        Err(err(line, "unterminated object"))
    }
}

pub(crate) fn unquote(s: &str, line: usize) -> Result<&str, ParseError> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected quoted string, got {s:?}")))
}

fn parse_jsonl_line(line_text: &str, line: usize) -> Result<ParsedRecord, ParseError> {
    let rest = line_text
        .strip_prefix('{')
        .ok_or_else(|| err(line, "expected '{'"))?;
    let rest = expect_key(rest, "t", line)?;
    let (t_field, rest) = next_field(rest, line)?;
    let time_ms: u64 = t_field
        .parse()
        .map_err(|_| err(line, format!("bad time {t_field:?}")))?;
    if let Ok(rest) = expect_key(rest, "m", line) {
        let (m_field, rest) = next_field(rest, line)?;
        let name = unquote(m_field, line)?.to_string();
        let rest = expect_key(rest, "v", line)?;
        let (v_field, rest) = next_field(rest, line)?;
        let value: f64 = v_field
            .parse()
            .map_err(|_| err(line, format!("bad value {v_field:?}")))?;
        if !rest.is_empty() {
            return Err(err(line, "trailing content after sample"));
        }
        Ok(ParsedRecord {
            time_ms,
            name,
            source: String::new(),
            value,
            is_event: false,
        })
    } else {
        let rest = expect_key(rest, "e", line)?;
        let (e_field, rest) = next_field(rest, line)?;
        let name = unquote(e_field, line)?.to_string();
        if EventKind::from_name(&name).is_none() {
            return Err(err(line, format!("unknown event kind {name:?}")));
        }
        let rest = expect_key(rest, "s", line)?;
        let (s_field, rest) = next_field(rest, line)?;
        let source = unquote(s_field, line)?.to_string();
        let rest = expect_key(rest, "v", line)?;
        let (v_field, rest) = next_field(rest, line)?;
        let value: f64 = v_field
            .parse()
            .map_err(|_| err(line, format!("bad value {v_field:?}")))?;
        if !rest.is_empty() {
            return Err(err(line, "trailing content after event"));
        }
        Ok(ParsedRecord {
            time_ms,
            name,
            source,
            value,
            is_event: true,
        })
    }
}

fn parse_csv_line(line_text: &str, line: usize) -> Result<ParsedRecord, ParseError> {
    let mut fields = line_text.split(',');
    let mut take = |label: &str| {
        fields
            .next()
            .ok_or_else(|| err(line, format!("missing {label} field")))
    };
    let time_ms: u64 = take("time_ms")?
        .parse()
        .map_err(|_| err(line, "bad time_ms"))?;
    let record = take("record")?.to_string();
    let name = take("name")?.to_string();
    let source = take("source")?.to_string();
    let value: f64 = take("value")?.parse().map_err(|_| err(line, "bad value"))?;
    if fields.next().is_some() {
        return Err(err(line, "too many fields"));
    }
    let is_event = match record.as_str() {
        "sample" => false,
        "event" => {
            if EventKind::from_name(&name).is_none() {
                return Err(err(line, format!("unknown event kind {name:?}")));
            }
            true
        }
        other => return Err(err(line, format!("unknown record type {other:?}"))),
    };
    Ok(ParsedRecord {
        time_ms,
        name,
        source,
        value,
        is_event,
    })
}

/// Parses a single wire line (either format) into a record.
///
/// `line` is the 1-based line number used in error messages. The CSV
/// header row is *not* accepted here — stream consumers that interleave
/// header lines (a fresh CSV block per sender) should skip them with
/// [`is_csv_header`] before calling.
///
/// This is the per-line entry point for wire use: a daemon ingesting a
/// live stream parses each line as it arrives and turns a failure into
/// a structured per-line error instead of aborting the whole session.
pub fn parse_line(
    line_text: &str,
    line: usize,
    format: Format,
) -> Result<ParsedRecord, ParseError> {
    match format {
        Format::Jsonl => parse_jsonl_line(line_text, line),
        Format::Csv => parse_csv_line(line_text, line),
    }
}

/// `true` when the line is the telemetry CSV header row.
pub fn is_csv_header(line_text: &str) -> bool {
    line_text == CSV_HEADER.trim_end()
}

/// The survivors and casualties of a lossy parse (see [`parse_lossy`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LossyParse {
    /// Records from every well-formed line, in input order.
    pub records: Vec<ParsedRecord>,
    /// One structured error per malformed line, in input order.
    pub errors: Vec<ParseError>,
}

/// Parses a serialized trace, collecting malformed lines as structured
/// per-line errors instead of failing the whole parse.
///
/// Wire-facing counterpart of the strict [`parse`]: a truncated,
/// corrupted, or interleaved partial line costs exactly that line (and
/// an [`LossyParse::errors`] entry), never the rest of the stream. The
/// CSV header is required as the first line, matching [`parse`], but a
/// *repeated* header later in the stream is tolerated and skipped — the
/// natural shape of several serialized chunks glued together.
pub fn parse_lossy(text: &str, format: Format) -> LossyParse {
    let mut out = LossyParse::default();
    let mut lines = text.lines().enumerate();
    if format == Format::Csv {
        match lines.next() {
            Some((_, header)) if is_csv_header(header) => {}
            Some((_, header)) => out
                .errors
                .push(err(1, format!("bad CSV header {header:?}"))),
            None => return out,
        }
    }
    for (idx, line_text) in lines {
        if line_text.is_empty() || (format == Format::Csv && is_csv_header(line_text)) {
            continue;
        }
        match parse_line(line_text, idx + 1, format) {
            Ok(record) => out.records.push(record),
            Err(e) => out.errors.push(e),
        }
    }
    out
}

/// Re-serializes parsed records back to the wire format they came from.
///
/// The exact inverse of [`parse`] for any well-formed trace: names and
/// sources are restricted to an escape-free charset and values use the
/// shortest-round-trip `f64` form in both directions, so
/// `render_parsed(&parse(text)?) == text` byte for byte. This is what a
/// daemon uses to flush the telemetry it retained for a session back to
/// disk without ever holding the original byte stream.
pub fn render_parsed(records: &[ParsedRecord], format: Format) -> String {
    let mut out = String::with_capacity(records.len() * 48);
    if format == Format::Csv {
        out.push_str(CSV_HEADER);
    }
    for r in records {
        let time = SimTime::from_millis(r.time_ms);
        match (format, r.is_event) {
            (Format::Jsonl, false) => write_sample_jsonl(&mut out, time, &r.name, r.value),
            (Format::Csv, false) => write_sample_csv(&mut out, time, &r.name, r.value),
            (format, true) => {
                // Events round-trip through the kind table; an unknown
                // kind cannot exist in a ParsedRecord (the parsers
                // reject it), so fall back to the raw name defensively.
                let name = match EventKind::from_name(&r.name) {
                    Some(kind) => kind.as_str(),
                    None => r.name.as_str(),
                };
                use std::fmt::Write as _;
                match format {
                    Format::Jsonl => {
                        let _ = writeln!(
                            out,
                            "{{\"t\":{},\"e\":\"{}\",\"s\":\"{}\",\"v\":{}}}",
                            r.time_ms, name, r.source, r.value
                        );
                    }
                    Format::Csv => {
                        let _ =
                            writeln!(out, "{},event,{},{},{}", r.time_ms, name, r.source, r.value);
                    }
                }
            }
        }
    }
    out
}

/// Parses a serialized trace (either format) back into records.
///
/// The parser is strict: any malformed line fails the whole parse with
/// its line number, rather than silently skipping data.
pub fn parse(text: &str, format: Format) -> Result<Vec<ParsedRecord>, ParseError> {
    let mut out = Vec::new();
    let mut lines = text.lines().enumerate();
    if format == Format::Csv {
        match lines.next() {
            Some((_, header)) if header == CSV_HEADER.trim_end() => {}
            Some((_, header)) => return Err(err(1, format!("bad CSV header {header:?}"))),
            None => return Ok(out),
        }
    }
    for (idx, line_text) in lines {
        if line_text.is_empty() {
            continue;
        }
        let line = idx + 1;
        out.push(match format {
            Format::Jsonl => parse_jsonl_line(line_text, line)?,
            Format::Csv => parse_csv_line(line_text, line)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::record::{EventRecord, Sample};
    use crate::telemetry::MetricRegistry;

    fn sample_records() -> (MetricRegistry, Vec<Record>) {
        let mut reg = MetricRegistry::new();
        let draw = reg.register_gauge("rack-00.draw_w");
        let soc = reg.register_gauge("rack-00.soc");
        let records = vec![
            Record::Sample(Sample {
                time: SimTime::from_millis(100),
                metric: draw,
                value: 123.45,
            }),
            Record::Sample(Sample {
                time: SimTime::from_millis(100),
                metric: soc,
                value: 0.5,
            }),
            Record::Event(EventRecord {
                time: SimTime::from_millis(100),
                kind: EventKind::BreakerTrip,
                source: "rack-00".into(),
                value: 1.0,
            }),
        ];
        (reg, records)
    }

    #[test]
    fn jsonl_round_trips() {
        let (reg, records) = sample_records();
        let text = to_jsonl(&reg, &records);
        assert_eq!(
            text,
            "{\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":123.45}\n\
             {\"t\":100,\"m\":\"rack-00.soc\",\"v\":0.5}\n\
             {\"t\":100,\"e\":\"breaker_trip\",\"s\":\"rack-00\",\"v\":1}\n"
        );
        let parsed = parse(&text, Format::Jsonl).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "rack-00.draw_w");
        assert_eq!(parsed[0].value, 123.45);
        assert!(!parsed[0].is_event);
        assert!(parsed[2].is_event);
        assert_eq!(parsed[2].source, "rack-00");
    }

    #[test]
    fn csv_round_trips() {
        let (reg, records) = sample_records();
        let text = to_csv(&reg, &records);
        assert!(text.starts_with(CSV_HEADER));
        let parsed = parse(&text, Format::Csv).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[1].name, "rack-00.soc");
        assert_eq!(parsed[1].value, 0.5);
        assert_eq!(parsed[2].name, "breaker_trip");
    }

    #[test]
    fn streaming_recorders_match_batch_output() {
        let (reg, records) = sample_records();
        let mut jsonl = JsonlRecorder::new(Vec::new(), &reg);
        let mut csv = CsvRecorder::new(Vec::new(), &reg);
        for r in &records {
            match r {
                Record::Sample(s) => {
                    jsonl.record_sample(s.time, s.metric, s.value);
                    csv.record_sample(s.time, s.metric, s.value);
                }
                Record::Event(e) => {
                    jsonl.record_event(e.time, e.kind, &e.source, e.value);
                    csv.record_event(e.time, e.kind, &e.source, e.value);
                }
            }
        }
        let jsonl_bytes = jsonl.finish().unwrap();
        let csv_bytes = csv.finish().unwrap();
        assert_eq!(
            String::from_utf8(jsonl_bytes).unwrap(),
            to_jsonl(&reg, &records)
        );
        assert_eq!(
            String::from_utf8(csv_bytes).unwrap(),
            to_csv(&reg, &records)
        );
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let bad = "{\"t\":1,\"m\":\"a\",\"v\":2}\nnot json\n";
        let e = parse(bad, Format::Jsonl).unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("wrong,header\n", Format::Csv).unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse(
            "{\"t\":1,\"e\":\"no_such_kind\",\"s\":\"x\",\"v\":1}\n",
            Format::Jsonl,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown event kind"));
    }

    #[test]
    fn parse_line_matches_whole_trace_parse() {
        let (reg, records) = sample_records();
        for format in [Format::Jsonl, Format::Csv] {
            let text = match format {
                Format::Jsonl => to_jsonl(&reg, &records),
                Format::Csv => to_csv(&reg, &records),
            };
            let whole = parse(&text, format).unwrap();
            let by_line: Vec<ParsedRecord> = text
                .lines()
                .filter(|l| !(l.is_empty() || format == Format::Csv && is_csv_header(l)))
                .enumerate()
                .map(|(i, l)| parse_line(l, i + 1, format).unwrap())
                .collect();
            assert_eq!(whole, by_line, "{format:?}");
        }
    }

    #[test]
    fn render_parsed_is_the_exact_inverse_of_parse() {
        let (reg, records) = sample_records();
        for format in [Format::Jsonl, Format::Csv] {
            let text = match format {
                Format::Jsonl => to_jsonl(&reg, &records),
                Format::Csv => to_csv(&reg, &records),
            };
            let parsed = parse(&text, format).unwrap();
            assert_eq!(render_parsed(&parsed, format), text, "{format:?}");
        }
    }

    /// Wire-hardening contract: each malformed shape a live socket can
    /// produce costs exactly its own line; every well-formed line still
    /// parses, the error is structured (line number + message), and the
    /// survivors re-serialize cleanly.
    #[test]
    fn lossy_parse_survives_each_malformed_shape() {
        let good_a = "{\"t\":1,\"m\":\"a.x\",\"v\":2}";
        let good_b = "{\"t\":2,\"m\":\"a.x\",\"v\":3}";
        let cases: Vec<(&str, String)> = vec![
            // Truncated mid-object: the sender died mid-write.
            (
                "truncated",
                format!("{good_a}\n{{\"t\":3,\"m\":\"a.x\",\"v\":9\n{good_b}\n"),
            ),
            // Two records interleaved onto one line: concurrent writers
            // without line buffering.
            (
                "interleaved partial",
                format!(
                    "{good_a}\n{{\"t\":3,\"m\":\"a{{\"t\":4,\"m\":\"b.y\",\"v\":1}}\n{good_b}\n"
                ),
            ),
            // Unparseable value.
            (
                "bad value",
                format!("{good_a}\n{{\"t\":3,\"m\":\"a.x\",\"v\":1.2.3}}\n{good_b}\n"),
            ),
            // Unknown event kind.
            (
                "unknown event",
                format!("{good_a}\n{{\"t\":3,\"e\":\"no_such\",\"s\":\"x\",\"v\":1}}\n{good_b}\n"),
            ),
            // Garbage that is not JSON at all.
            ("garbage", format!("{good_a}\nhello world\n{good_b}\n")),
        ];
        for (label, text) in &cases {
            let lossy = parse_lossy(text, Format::Jsonl);
            assert_eq!(lossy.records.len(), 2, "{label}: good lines survive");
            assert_eq!(lossy.errors.len(), 1, "{label}: one structured error");
            assert_eq!(lossy.errors[0].line, 2, "{label}: error pins the line");
            assert!(!lossy.errors[0].message.is_empty(), "{label}");
            let rendered = render_parsed(&lossy.records, Format::Jsonl);
            assert_eq!(
                rendered,
                format!("{good_a}\n{good_b}\n"),
                "{label}: survivors round-trip"
            );
        }
    }

    #[test]
    fn lossy_parse_csv_tolerates_repeated_headers_and_counts_bad_rows() {
        let text = format!(
            "{h}1,sample,a.x,,2\n{h}2,sample,a.x,,3\n3,sample,a.x\n4,bogus,a.x,,1\n",
            h = CSV_HEADER
        );
        let lossy = parse_lossy(&text, Format::Csv);
        assert_eq!(
            lossy.records.len(),
            2,
            "rows on both sides of the repeated header"
        );
        assert_eq!(lossy.errors.len(), 2);
        assert!(lossy.errors[0].message.contains("missing"));
        assert!(lossy.errors[1].message.contains("unknown record type"));
        // A stream that opens with garbage instead of the header loses
        // line 1 (reported), not the stream.
        let lossy = parse_lossy("wrong,header\n1,sample,a.x,,2\n", Format::Csv);
        assert_eq!(lossy.errors.len(), 1);
        assert_eq!(lossy.errors[0].line, 1);
        assert_eq!(lossy.records.len(), 1);
    }

    #[test]
    fn non_finite_gauges_round_trip_both_formats() {
        // NaN, ±inf appear legitimately (e.g. percentile of an empty
        // summary); Rust's f64 Display/parse handles them, and the wire
        // formats must not corrupt them.
        let mut reg = MetricRegistry::new();
        let g = reg.register_gauge("g");
        let records: Vec<Record> = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
            .map(|(i, value)| {
                Record::Sample(Sample {
                    time: SimTime::from_millis(i as u64),
                    metric: g,
                    value,
                })
            })
            .collect();
        for format in [Format::Jsonl, Format::Csv] {
            let text = match format {
                Format::Jsonl => to_jsonl(&reg, &records),
                Format::Csv => to_csv(&reg, &records),
            };
            let parsed = parse(&text, format).unwrap();
            assert_eq!(parsed.len(), 3);
            assert!(parsed[0].value.is_nan(), "{format:?} NaN");
            assert_eq!(parsed[1].value, f64::INFINITY, "{format:?} +inf");
            assert_eq!(parsed[2].value, f64::NEG_INFINITY, "{format:?} -inf");
        }
    }

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_name("jsonl"), Some(Format::Jsonl));
        assert_eq!(Format::from_name("csv"), Some(Format::Csv));
        assert_eq!(Format::from_name("yaml"), None);
        assert_eq!(Format::from_path("out/telemetry.csv"), Format::Csv);
        assert_eq!(Format::from_path("out/telemetry.jsonl"), Format::Jsonl);
        assert_eq!(Format::from_path("noext"), Format::Jsonl);
    }
}
