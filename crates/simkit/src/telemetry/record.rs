//! The records a telemetry trace is made of.
//!
//! Two record shapes flow through a [`Recorder`](crate::telemetry::Recorder):
//! [`Sample`]s (one metric value at one simulation time) and
//! [`EventRecord`]s (one typed occurrence — a breaker trip, an LVD
//! isolation — at one simulation time). Both carry [`SimTime`], never
//! wall-clock, so a recorded trace is a pure function of the simulated
//! scenario and its seed.
//!
//! # Ordering
//!
//! Serialized traces are sorted by the key
//! `(time, samples-before-events, MetricId/EventKind index, source)` —
//! see [`Record::sort_key`]. Because metric ids are handed out in
//! registration order and emission happens in registration order, a
//! single simulation already produces records in this order; the sort is
//! the contract that makes it explicit (and repairs interleavings when
//! multiple recorders are concatenated).

use crate::telemetry::MetricId;
use crate::time::SimTime;

/// A typed simulation event worth recording.
///
/// These replace free-text `EventLog` strings on the telemetry path:
/// consumers match on the kind instead of parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A battery cabinet's low-voltage disconnect isolated it.
    LvdIsolation,
    /// A rack or PDU circuit breaker tripped.
    BreakerTrip,
    /// Aggregate draw exceeded a protective limit.
    Overload,
    /// The defense policy changed security level.
    LevelChange,
    /// The load shedder put servers to sleep.
    Shed,
    /// The load shedder woke all servers back up.
    Wake,
    /// The migrator moved load off a threatened rack.
    Migration,
    /// The operator applied a protective power cap.
    ProtectiveCap,
    /// The streaming detector bank's fused verdict fired (the value
    /// carries the fused score).
    DetectorFired,
    /// A scheduled fault's window opened (the value carries the fault
    /// spec index within its plan).
    FaultInjected,
    /// A scheduled fault's window closed (the value carries the fault
    /// spec index within its plan).
    FaultCleared,
}

impl EventKind {
    /// Every kind, in serialization (index) order.
    pub const ALL: [EventKind; 11] = [
        EventKind::LvdIsolation,
        EventKind::BreakerTrip,
        EventKind::Overload,
        EventKind::LevelChange,
        EventKind::Shed,
        EventKind::Wake,
        EventKind::Migration,
        EventKind::ProtectiveCap,
        EventKind::DetectorFired,
        EventKind::FaultInjected,
        EventKind::FaultCleared,
    ];

    /// Stable wire name (used in JSONL/CSV output).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::LvdIsolation => "lvd_isolation",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::Overload => "overload",
            EventKind::LevelChange => "level_change",
            EventKind::Shed => "shed",
            EventKind::Wake => "wake",
            EventKind::Migration => "migration",
            EventKind::ProtectiveCap => "protective_cap",
            EventKind::DetectorFired => "detector_fired",
            EventKind::FaultInjected => "fault_injected",
            EventKind::FaultCleared => "fault_cleared",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Index of this kind within [`EventKind::ALL`] (the tiebreak rank
    /// used by [`Record::sort_key`]).
    pub fn index(self) -> usize {
        EventKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind listed in ALL")
    }
}

/// One metric observation at one simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulation time of the observation.
    pub time: SimTime,
    /// Which metric this observes.
    pub metric: MetricId,
    /// The observed value.
    pub value: f64,
}

/// One typed event at one simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Simulation time of the event.
    pub time: SimTime,
    /// What happened.
    pub kind: EventKind,
    /// Which component it happened to (e.g. `rack-03`, `pdu`).
    pub source: String,
    /// Event magnitude — draw in watts for overloads, target level for
    /// level changes, server count for sheds; 1.0 when there is no
    /// natural magnitude.
    pub value: f64,
}

/// A sample or an event — the unit a trace stores and serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A metric observation.
    Sample(Sample),
    /// A typed event.
    Event(EventRecord),
}

impl Record {
    /// Simulation time of this record.
    pub fn time(&self) -> SimTime {
        match self {
            Record::Sample(s) => s.time,
            Record::Event(e) => e.time,
        }
    }

    /// The deterministic ordering key: time first, then samples before
    /// events, then metric/kind index, then event source.
    pub fn sort_key(&self) -> (u64, u8, usize, &str) {
        match self {
            Record::Sample(s) => (s.time.as_millis(), 0, s.metric.index(), ""),
            Record::Event(e) => (e.time.as_millis(), 1, e.kind.index(), e.source.as_str()),
        }
    }
}

/// Sorts records into the canonical deterministic order.
///
/// The sort is stable, so records that tie on the full key (e.g. two
/// observations of one metric at one tick) keep their emission order.
pub fn sort_records(records: &mut [Record]) {
    records.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricRegistry;

    #[test]
    fn event_kind_wire_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::from_name("nonsense"), None);
    }

    #[test]
    fn sort_orders_time_then_samples_then_events() {
        let mut reg = MetricRegistry::new();
        let a = reg.register_gauge("a");
        let b = reg.register_gauge("b");
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_millis(100);
        let mut records = vec![
            Record::Event(EventRecord {
                time: t0,
                kind: EventKind::Shed,
                source: "rack-00".into(),
                value: 1.0,
            }),
            Record::Sample(Sample {
                time: t1,
                metric: a,
                value: 2.0,
            }),
            Record::Sample(Sample {
                time: t0,
                metric: b,
                value: 3.0,
            }),
            Record::Sample(Sample {
                time: t0,
                metric: a,
                value: 4.0,
            }),
        ];
        sort_records(&mut records);
        let key: Vec<(u64, u8, usize)> = records
            .iter()
            .map(|r| {
                let (t, rank, idx, _) = r.sort_key();
                (t, rank, idx)
            })
            .collect();
        assert_eq!(key, vec![(0, 0, 0), (0, 0, 1), (0, 1, 4), (100, 0, 0)]);
    }
}
