//! Offline analysis of a recorded telemetry trace.
//!
//! [`TelemetryReport`] digests a parsed trace (see
//! [`parse`](crate::telemetry::parse)) into per-metric statistics and
//! per-event tallies, and renders them as text tables — the engine
//! behind `padsim inspect`. Digest order is deterministic: metrics and
//! events are keyed through a `BTreeMap`, so two inspections of the same
//! trace render identically.

use std::collections::BTreeMap;

use crate::stats::{OnlineStats, Summary};
use crate::table::{fmt_f64, Table};
use crate::telemetry::codec::ParsedRecord;

/// Per-metric digest of a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDigest {
    /// The metric's name.
    pub name: String,
    /// One-pass statistics over every recorded value.
    pub stats: OnlineStats,
    /// Retained sample, for percentiles.
    pub summary: Summary,
}

/// Per-event-kind digest of a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDigest {
    /// The event kind's wire name.
    pub kind: String,
    /// How many events of this kind were recorded.
    pub count: u64,
    /// Distinct sources that emitted it, in sorted order.
    pub sources: Vec<String>,
    /// Simulation time of the first occurrence, in milliseconds.
    pub first_ms: u64,
    /// Simulation time of the last occurrence, in milliseconds.
    pub last_ms: u64,
}

/// Summary view over a recorded telemetry trace.
///
/// # Example
///
/// ```
/// use simkit::telemetry::{parse, Format, TelemetryReport};
///
/// let trace = "{\"t\":0,\"m\":\"g\",\"v\":1}\n{\"t\":100,\"m\":\"g\",\"v\":3}\n";
/// let report = TelemetryReport::from_records(&parse(trace, Format::Jsonl).unwrap());
/// assert_eq!(report.metric_names(), vec!["g"]);
/// assert_eq!(report.metric("g").unwrap().stats.mean(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    metrics: BTreeMap<String, MetricDigest>,
    events: BTreeMap<String, EventDigest>,
    samples: u64,
    span_ms: u64,
}

impl TelemetryReport {
    /// Digests parsed records into a report.
    pub fn from_records(records: &[ParsedRecord]) -> Self {
        let mut report = TelemetryReport::default();
        for r in records {
            report.span_ms = report.span_ms.max(r.time_ms);
            if r.is_event {
                let digest = report
                    .events
                    .entry(r.name.clone())
                    .or_insert_with(|| EventDigest {
                        kind: r.name.clone(),
                        count: 0,
                        sources: Vec::new(),
                        first_ms: r.time_ms,
                        last_ms: r.time_ms,
                    });
                digest.count += 1;
                digest.first_ms = digest.first_ms.min(r.time_ms);
                digest.last_ms = digest.last_ms.max(r.time_ms);
                if let Err(idx) = digest.sources.binary_search(&r.source) {
                    digest.sources.insert(idx, r.source.clone());
                }
            } else {
                let digest = report
                    .metrics
                    .entry(r.name.clone())
                    .or_insert_with(|| MetricDigest {
                        name: r.name.clone(),
                        stats: OnlineStats::new(),
                        summary: Summary::new(),
                    });
                digest.stats.push(r.value);
                digest.summary.push(r.value);
                report.samples += 1;
            }
        }
        report
    }

    /// Metric names present in the trace, sorted.
    pub fn metric_names(&self) -> Vec<&str> {
        self.metrics.keys().map(String::as_str).collect()
    }

    /// The digest for one metric, if it appears in the trace.
    pub fn metric(&self, name: &str) -> Option<&MetricDigest> {
        self.metrics.get(name)
    }

    /// Event digests, sorted by kind name.
    pub fn events(&self) -> impl Iterator<Item = &EventDigest> {
        self.events.values()
    }

    /// Total number of samples in the trace.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Latest simulation time in the trace, in milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.span_ms
    }

    /// Renders the full report: a metric table, then an event table when
    /// events are present.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut metrics = Table::new(vec![
            "metric", "n", "mean", "std", "min", "p50", "p95", "max",
        ]);
        metrics.title(format!(
            "{} samples over {} ms across {} metrics",
            self.samples,
            self.span_ms,
            self.metrics.len()
        ));
        for digest in self.metrics.values() {
            metrics.row(vec![
                digest.name.clone(),
                digest.stats.count().to_string(),
                fmt_f64(digest.stats.mean(), 3),
                fmt_f64(digest.stats.population_std_dev(), 3),
                fmt_f64(digest.stats.min(), 3),
                fmt_f64(digest.summary.median(), 3),
                fmt_f64(digest.summary.percentile(95.0), 3),
                fmt_f64(digest.stats.max(), 3),
            ]);
        }
        out.push_str(&metrics.render());
        if !self.events.is_empty() {
            let mut events = Table::new(vec!["event", "count", "sources", "first", "last"]);
            events.title("events");
            for digest in self.events.values() {
                events.row(vec![
                    digest.kind.clone(),
                    digest.count.to_string(),
                    digest.sources.join(" "),
                    format!("{}ms", digest.first_ms),
                    format!("{}ms", digest.last_ms),
                ]);
            }
            out.push('\n');
            out.push_str(&events.render());
        }
        out
    }

    /// Renders the report in Prometheus text exposition format
    /// (`padsim inspect --prom`), so a recorded trace can be pushed
    /// into any Prometheus-compatible toolchain.
    ///
    /// Each metric's aggregates become gauges labelled by metric name
    /// (`pad_metric_mean{metric="rack-00.draw_w"} 123.45`), each event
    /// kind a `pad_events_total{kind="..."}` counter. Output order is
    /// deterministic (BTreeMap iteration), and values use Rust's `f64`
    /// `Display`, matching the trace codec's determinism contract.
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_labeled("")
    }

    /// Like [`render_prometheus`](TelemetryReport::render_prometheus),
    /// but with an extra label pair (e.g. `tenant="acme"`) injected
    /// into every sample line, so several reports can share one
    /// exposition without colliding series — the shape a multi-tenant
    /// daemon serves from its `/metrics` endpoint. An empty `extra`
    /// reproduces the unlabeled exposition byte for byte.
    pub fn render_prometheus_labeled(&self, extra: &str) -> String {
        use std::fmt::Write as _;
        type Aggregate = (&'static str, &'static str, fn(&MetricDigest) -> f64);
        // Prefix for lines that already carry a label, suffix block for
        // lines that otherwise carry none.
        let pre = if extra.is_empty() {
            String::new()
        } else {
            format!("{extra},")
        };
        let solo = if extra.is_empty() {
            String::new()
        } else {
            format!("{{{extra}}}")
        };
        let mut out = String::new();
        let aggregates: [Aggregate; 6] = [
            ("pad_metric_count", "samples recorded", |d| {
                d.stats.count() as f64
            }),
            ("pad_metric_mean", "mean of samples", |d| d.stats.mean()),
            ("pad_metric_min", "minimum sample", |d| d.stats.min()),
            ("pad_metric_max", "maximum sample", |d| d.stats.max()),
            ("pad_metric_p50", "median sample", |d| d.summary.median()),
            ("pad_metric_p95", "95th percentile sample", |d| {
                d.summary.percentile(95.0)
            }),
        ];
        for (name, help, f) in aggregates {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for digest in self.metrics.values() {
                let _ = writeln!(
                    out,
                    "{name}{{{pre}metric=\"{}\"}} {}",
                    digest.name,
                    f(digest)
                );
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "# HELP pad_events_total events recorded, by kind");
            let _ = writeln!(out, "# TYPE pad_events_total counter");
            for digest in self.events.values() {
                let _ = writeln!(
                    out,
                    "pad_events_total{{{pre}kind=\"{}\"}} {}",
                    digest.kind, digest.count
                );
            }
        }
        let _ = writeln!(out, "# HELP pad_trace_samples_total samples in the trace");
        let _ = writeln!(out, "# TYPE pad_trace_samples_total counter");
        let _ = writeln!(out, "pad_trace_samples_total{solo} {}", self.samples);
        let _ = writeln!(out, "# HELP pad_trace_span_ms latest sim-time in the trace");
        let _ = writeln!(out, "# TYPE pad_trace_span_ms gauge");
        let _ = writeln!(out, "pad_trace_span_ms{solo} {}", self.span_ms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::codec::{parse, Format};

    #[test]
    fn report_digests_metrics_and_events() {
        let trace = "{\"t\":0,\"m\":\"b.y\",\"v\":10}\n\
                     {\"t\":0,\"m\":\"a.x\",\"v\":1}\n\
                     {\"t\":100,\"m\":\"a.x\",\"v\":3}\n\
                     {\"t\":100,\"e\":\"shed\",\"s\":\"rack-01\",\"v\":4}\n\
                     {\"t\":200,\"e\":\"shed\",\"s\":\"rack-00\",\"v\":2}\n";
        let report = TelemetryReport::from_records(&parse(trace, Format::Jsonl).unwrap());
        assert_eq!(report.metric_names(), vec!["a.x", "b.y"], "sorted");
        assert_eq!(report.sample_count(), 3);
        assert_eq!(report.span_ms(), 200);
        let ax = report.metric("a.x").unwrap();
        assert_eq!(ax.stats.count(), 2);
        assert_eq!(ax.stats.mean(), 2.0);
        assert_eq!(ax.summary.median(), 2.0);
        let sheds: Vec<_> = report.events().collect();
        assert_eq!(sheds.len(), 1);
        assert_eq!(sheds[0].count, 2);
        assert_eq!(sheds[0].sources, vec!["rack-00", "rack-01"]);
        assert_eq!(sheds[0].first_ms, 100);
        assert_eq!(sheds[0].last_ms, 200);
    }

    #[test]
    fn prometheus_exposition_is_labelled_and_deterministic() {
        let trace = "{\"t\":0,\"m\":\"a.x\",\"v\":1}\n\
                     {\"t\":100,\"m\":\"a.x\",\"v\":3}\n\
                     {\"t\":100,\"e\":\"shed\",\"s\":\"rack-01\",\"v\":4}\n";
        let records = parse(trace, Format::Jsonl).unwrap();
        let report = TelemetryReport::from_records(&records);
        let prom = report.render_prometheus();
        assert!(prom.contains("# TYPE pad_metric_mean gauge"));
        assert!(prom.contains("pad_metric_mean{metric=\"a.x\"} 2\n"));
        assert!(prom.contains("pad_metric_count{metric=\"a.x\"} 2\n"));
        assert!(prom.contains("pad_events_total{kind=\"shed\"} 1\n"));
        assert!(prom.contains("pad_trace_samples_total 2\n"));
        assert!(prom.contains("pad_trace_span_ms 100\n"));
        assert_eq!(
            prom,
            TelemetryReport::from_records(&records).render_prometheus()
        );
    }

    #[test]
    fn render_is_deterministic() {
        let trace = "{\"t\":0,\"m\":\"g\",\"v\":1.5}\n{\"t\":50,\"e\":\"wake\",\"s\":\"shedder\",\"v\":1}\n";
        let records = parse(trace, Format::Jsonl).unwrap();
        let a = TelemetryReport::from_records(&records).render();
        let b = TelemetryReport::from_records(&records).render();
        assert_eq!(a, b);
        assert!(a.contains("g"));
        assert!(a.contains("wake"));
    }
}
