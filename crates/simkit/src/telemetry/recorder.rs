//! The [`Recorder`] trait and its in-memory implementations.
//!
//! A recorder receives the per-tick record stream. The two in-memory
//! implementations cover the two simulation modes:
//!
//! * [`NullRecorder`] — drops everything; `enabled()` is `false` so call
//!   sites can skip even *computing* telemetry values. This is the fast
//!   path that keeps an instrumented hot loop within noise of an
//!   uninstrumented one.
//! * [`RingRecorder`] — a bounded ring buffer that evicts the oldest
//!   record when full and counts what it dropped. Sweeps record into one
//!   ring per scenario, then serialize after the sweep, which is how
//!   parallel telemetry stays byte-identical to serial.
//!
//! Streaming file sinks ([`JsonlRecorder`](crate::telemetry::JsonlRecorder),
//! [`CsvRecorder`](crate::telemetry::CsvRecorder)) live in
//! [`codec`](crate::telemetry::codec).

use std::collections::VecDeque;

use crate::telemetry::record::{EventKind, EventRecord, Record, Sample};
use crate::telemetry::MetricId;
use crate::time::SimTime;

/// Sink for the telemetry record stream.
///
/// Implementations must preserve per-call ordering (records arrive
/// already ordered within a tick) and must not inject wall-clock time —
/// everything a recorder stores derives from [`SimTime`] and the values
/// it is handed.
pub trait Recorder {
    /// `false` if this recorder discards everything; emitters should skip
    /// assembling records when so.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one metric observation.
    fn record_sample(&mut self, time: SimTime, metric: MetricId, value: f64);

    /// Records one typed event.
    fn record_event(&mut self, time: SimTime, kind: EventKind, source: &str, value: f64);
}

/// A recorder that drops everything, as cheaply as possible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record_sample(&mut self, _time: SimTime, _metric: MetricId, _value: f64) {}

    fn record_event(&mut self, _time: SimTime, _kind: EventKind, _source: &str, _value: f64) {}
}

/// Bounded in-memory trace: keeps the most recent `capacity` records,
/// evicting the oldest and counting drops.
///
/// # Example
///
/// ```
/// use simkit::telemetry::{MetricRegistry, Recorder, RingRecorder};
/// use simkit::time::SimTime;
///
/// let mut reg = MetricRegistry::new();
/// let m = reg.register_gauge("g");
/// let mut ring = RingRecorder::new(2);
/// for i in 0..3 {
///     ring.record_sample(SimTime::from_millis(i), m, i as f64);
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingRecorder {
    records: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring recorder needs capacity >= 1");
        RingRecorder {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, record: Record) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl ExactSizeIterator<Item = &Record> {
        self.records.iter()
    }

    /// Consumes the ring, returning the retained records oldest first.
    pub fn into_records(self) -> Vec<Record> {
        self.records.into()
    }
}

impl Recorder for RingRecorder {
    fn record_sample(&mut self, time: SimTime, metric: MetricId, value: f64) {
        self.push(Record::Sample(Sample {
            time,
            metric,
            value,
        }));
    }

    fn record_event(&mut self, time: SimTime, kind: EventKind, source: &str, value: f64) {
        self.push(Record::Event(EventRecord {
            time,
            kind,
            source: source.to_string(),
            value,
        }));
    }
}

/// A clonable, comparable recorder slot for embedding in simulation
/// state.
///
/// `ClusterSim` derives `Clone` (sweeps clone a template sim per
/// scenario), which rules out `Box<dyn Recorder>` fields; this enum is
/// the concrete set of in-memory sinks a simulation can own. File sinks
/// are not embeddable — record to a ring, then serialize the dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum TelemetrySink {
    /// Discard everything (the fast path).
    #[default]
    Null,
    /// Retain records in a bounded ring.
    Ring(RingRecorder),
}

impl TelemetrySink {
    /// The retained records, if this sink retains any.
    pub fn records(&self) -> Option<&RingRecorder> {
        match self {
            TelemetrySink::Null => None,
            TelemetrySink::Ring(ring) => Some(ring),
        }
    }
}

impl Recorder for TelemetrySink {
    fn enabled(&self) -> bool {
        match self {
            TelemetrySink::Null => false,
            TelemetrySink::Ring(_) => true,
        }
    }

    fn record_sample(&mut self, time: SimTime, metric: MetricId, value: f64) {
        if let TelemetrySink::Ring(ring) = self {
            ring.record_sample(time, metric, value);
        }
    }

    fn record_event(&mut self, time: SimTime, kind: EventKind, source: &str, value: f64) {
        if let TelemetrySink::Ring(ring) = self {
            ring.record_event(time, kind, source, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricRegistry;

    #[test]
    fn null_recorder_is_disabled() {
        let mut null = NullRecorder;
        assert!(!null.enabled());
        let mut reg = MetricRegistry::new();
        let m = reg.register_gauge("g");
        null.record_sample(SimTime::ZERO, m, 1.0);
        null.record_event(SimTime::ZERO, EventKind::Shed, "rack-00", 1.0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut reg = MetricRegistry::new();
        let m = reg.register_gauge("g");
        let mut ring = RingRecorder::new(3);
        for i in 0..5u64 {
            ring.record_sample(SimTime::from_millis(i), m, i as f64);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let first = ring.records().next().unwrap().time().as_millis();
        assert_eq!(first, 2, "oldest two records were evicted");
    }

    #[test]
    fn sink_dispatches_by_variant() {
        let mut reg = MetricRegistry::new();
        let m = reg.register_gauge("g");
        let mut sink = TelemetrySink::default();
        assert!(!sink.enabled());
        sink.record_sample(SimTime::ZERO, m, 1.0);
        assert!(sink.records().is_none());

        let mut sink = TelemetrySink::Ring(RingRecorder::new(8));
        assert!(sink.enabled());
        sink.record_sample(SimTime::ZERO, m, 1.0);
        sink.record_event(SimTime::ZERO, EventKind::BreakerTrip, "rack-00", 1.0);
        assert_eq!(sink.records().unwrap().len(), 2);
    }
}
