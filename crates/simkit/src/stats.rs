//! Statistics helpers for the experiment harness.
//!
//! [`OnlineStats`] accumulates mean/variance in one pass (Welford) — used
//! for Figure 5's SOC standard deviation across racks. [`Summary`] computes
//! order statistics over a retained sample. [`Cdf`] builds the empirical
//! cumulative distribution used for Figure 1, and [`Histogram`] buckets
//! values for quick text plots.

use crate::jsonio::{write_f64, Json, ObjFields};

/// One-pass mean/variance accumulator (Welford's algorithm).
///
/// # NaN handling
///
/// NaN observations are **rejected, not absorbed**: [`push`](Self::push)
/// skips them entirely (mean, variance, min and max are untouched) and
/// counts them in [`nan_count`](Self::nan_count). Without this, a single
/// NaN would poison `mean`/`m2` forever, and whether `min`/`max`
/// survived would depend on the order observations arrived — `f64::min`
/// ignores a NaN argument but propagates a NaN accumulator.
///
/// # Example
///
/// ```
/// use simkit::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// s.push(f64::NAN); // ignored, tallied separately
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.nan_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    nans: u64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nans: 0,
        }
    }

    /// Adds one observation. NaN observations are skipped (see the type
    /// docs) and tallied in [`nan_count`](Self::nan_count).
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            self.nans += 1;
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of non-NaN observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN observations that were rejected.
    pub fn nan_count(&self) -> u64 {
        self.nans
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    /// Rejected-NaN tallies are summed.
    pub fn merge(&mut self, other: &OnlineStats) {
        self.nans += other.nans;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let nans = self.nans;
            *self = *other;
            self.nans = nans;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the accumulator's exact internal state as one JSON
    /// object. Welford's `m2` is *order-dependent*, so the fields are
    /// written verbatim (never re-derived); the `±inf` min/max of an
    /// empty accumulator round-trip as tagged strings.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"mean\":");
        write_f64(&mut out, self.mean);
        out.push_str(",\"m2\":");
        write_f64(&mut out, self.m2);
        out.push_str(",\"min\":");
        write_f64(&mut out, self.min);
        out.push_str(",\"max\":");
        write_f64(&mut out, self.max);
        out.push_str(",\"nans\":");
        out.push_str(&self.nans.to_string());
        out.push('}');
        out
    }

    /// Rebuilds an accumulator from [`snapshot_json`](Self::snapshot_json)
    /// output (parsed). The restored value is bit-exact with the
    /// snapshotted one.
    pub fn from_snapshot(value: &Json) -> Result<OnlineStats, String> {
        let obj = value.as_object("stats snapshot")?;
        Ok(OnlineStats {
            count: obj.u64_field("count")?,
            mean: obj.f64_field_lossy("mean")?,
            m2: obj.f64_field_lossy("m2")?,
            min: obj.f64_field_lossy("min")?,
            max: obj.f64_field_lossy("max")?,
            nans: obj.u64_field("nans")?,
        })
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Retained-sample summary with order statistics.
///
/// # Example
///
/// ```
/// use simkit::stats::Summary;
///
/// let s: Summary = (1..=100).map(f64::from).collect();
/// assert_eq!(s.percentile(50.0), 50.5);
/// assert_eq!(s.percentile(0.0), 1.0);
/// assert_eq!(s.percentile(100.0), 100.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        let idx = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(idx, value);
        self.stats.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if no observations were added.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean of observations.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation of observations.
    pub fn std_dev(&self) -> f64 {
        self.stats.population_std_dev()
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// Returns `NaN` for an empty summary — an honest "no data" marker,
    /// where the old `0.0` was indistinguishable from a real zero
    /// observation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// All observations, ascending.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Serializes the summary's exact state: the retained sorted sample
    /// plus the running accumulator (whose `m2` depends on *push*
    /// order, which the sorted sample no longer records — so both are
    /// written).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"stats\":");
        out.push_str(&self.stats.snapshot_json());
        out.push_str(",\"sorted\":[");
        for (i, &v) in self.sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_f64(&mut out, v);
        }
        out.push_str("]}");
        out
    }

    /// Rebuilds a summary from [`snapshot_json`](Self::snapshot_json)
    /// output (parsed).
    pub fn from_snapshot(value: &Json) -> Result<Summary, String> {
        let obj = value.as_object("summary snapshot")?;
        let stats = OnlineStats::from_snapshot(obj.field("stats")?)?;
        let mut sorted = Vec::new();
        for (i, item) in obj.arr_field("sorted")?.iter().enumerate() {
            sorted.push(item.as_f64(&format!("sorted[{i}]"))?);
        }
        Ok(Summary { sorted, stats })
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Execution counters for one scenario of a sweep.
///
/// Stamped by [`crate::sweep::SweepRunner::run_metered`]: `wall_clock` is
/// measured by the runner around the job, `steps` is reported by the job
/// itself (number of simulation steps executed), `queue_wait` is how long
/// the scenario sat in the pull queue before a worker claimed it, and
/// `merge` is the time spent depositing the result into the
/// submission-order slot table. Costs are bookkeeping, not part of any
/// determinism contract — wall-clock time varies run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCost {
    /// Wall-clock time the scenario took to execute.
    pub wall_clock: std::time::Duration,
    /// Simulation steps executed by the scenario.
    pub steps: u64,
    /// Time between sweep start and a worker claiming this scenario.
    pub queue_wait: std::time::Duration,
    /// Time spent storing the result into the ordered slot table.
    pub merge: std::time::Duration,
}

impl ScenarioCost {
    /// Simulation steps per wall-clock second (0 when no time elapsed).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall_clock.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    /// Sums another scenario's counters into this one.
    pub fn accumulate(&mut self, other: &ScenarioCost) {
        self.wall_clock += other.wall_clock;
        self.steps += other.steps;
        self.queue_wait += other.queue_wait;
        self.merge += other.merge;
    }
}

/// Empirical cumulative distribution function over a sample.
///
/// # Example
///
/// ```
/// use simkit::stats::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.probability_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.probability_at_or_below(0.5), 0.0);
/// assert_eq!(cdf.probability_at_or_below(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in CDF"));
        Cdf { sorted: samples }
    }

    /// Fraction of samples ≤ `x`.
    pub fn probability_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Evaluates the CDF at evenly spaced points across `[lo, hi]`,
    /// returning `(x, F(x))` pairs — the series Figure 1 plots.
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.probability_at_or_below(x))
            })
            .collect()
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Fixed-width histogram over `[lo, hi)`.
///
/// Out-of-range values clamp into the first/last bucket so totals are
/// conserved. Besides the per-bucket counts the histogram keeps the
/// running sum of raw (unclamped) observations, so it can render the
/// full Prometheus `_bucket`/`_sum`/`_count` exposition and answer
/// interpolated [`quantile`](Self::quantile) queries.
///
/// # Example
///
/// ```
/// use simkit::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [0.5, 1.0, 9.9, 3.3, 5.0] {
///     h.push(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 19.7);
/// assert_eq!(h.cumulative().last(), Some(&(10.0, 5)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width buckets over
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            sum: 0.0,
        }
    }

    /// Adds one observation (clamping to the boundary buckets). The
    /// running sum accumulates the *raw* value — Prometheus `_sum`
    /// semantics — except NaN, which would poison it and contributes
    /// nothing (the observation still lands in the first bucket, so
    /// counts stay conserved).
    pub fn push(&mut self, value: f64) {
        let n = self.counts.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.counts[idx] += 1;
        if !value.is_nan() {
            self.sum += value;
        }
    }

    /// Lower bound of the bucketed range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the bucketed range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations across all buckets (Prometheus `_count`).
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all raw observations (Prometheus `_sum`; NaN excluded).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative `(upper_bound, count_at_or_below)` pairs, one per
    /// bucket — the Prometheus `_bucket{le="..."}` series without the
    /// `+Inf` bucket (whose count is [`count`](Self::count); outliers
    /// clamp into the boundary buckets, so the last finite bound
    /// already carries the total).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut running = 0;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                running += c;
                (self.lo + width * (i + 1) as f64, running)
            })
            .collect()
    }

    /// Linear-interpolated quantile estimate from the buckets, `q` in
    /// `[0, 1]` — the `histogram_quantile` computation Prometheus runs
    /// server-side. Returns NaN for an empty histogram. Resolution is
    /// the bucket width; values clamp to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let rank = q * total as f64;
        let mut running = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                running += c;
                continue;
            }
            let upto = running + c;
            if (upto as f64) >= rank {
                let within = ((rank - running as f64) / c as f64).clamp(0.0, 1.0);
                return self.lo + width * (i as f64 + within);
            }
            running = upto;
        }
        self.hi
    }

    /// Adds another histogram's counts into this one, bucket by bucket
    /// (sums add too).
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different ranges or bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histograms have different shapes"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// Serializes the histogram's value state (`counts` and `sum`; the
    /// shape is restated for validation on restore).
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"lo\":");
        write_f64(&mut out, self.lo);
        out.push_str(",\"hi\":");
        write_f64(&mut out, self.hi);
        out.push_str(",\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("],\"sum\":");
        write_f64(&mut out, self.sum);
        out.push('}');
        out
    }

    /// Overwrites this histogram's counts and sum from a parsed
    /// [`snapshot_json`](Self::snapshot_json) document, validating that
    /// the snapshot's range and bucket count match this histogram's
    /// construction-time shape.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("histogram snapshot")?;
        let (lo, hi) = (obj.f64_field_lossy("lo")?, obj.f64_field_lossy("hi")?);
        let counts = obj.arr_field("counts")?;
        if lo != self.lo || hi != self.hi || counts.len() != self.counts.len() {
            return Err(format!(
                "histogram shape mismatch: snapshot [{lo}, {hi})×{} vs [{}, {})×{}",
                counts.len(),
                self.lo,
                self.hi,
                self.counts.len()
            ));
        }
        for (i, (slot, item)) in self.counts.iter_mut().zip(counts).enumerate() {
            *slot = item.as_u64(&format!("counts[{i}]"))?;
        }
        self.sum = obj.f64_field_lossy("sum")?;
        Ok(())
    }

    /// `(bucket_midpoint, count)` pairs.
    pub fn midpoints(&self) -> Vec<(f64, u64)> {
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_known_values() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..37].iter().copied().collect();
        let b: OnlineStats = all[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn nan_observations_are_rejected_not_absorbed() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(1.0);
        s.push(f64::NAN);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.nan_count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!(!s.population_variance().is_nan());
    }

    #[test]
    fn nan_first_does_not_poison_min_max() {
        // Regression shape: f64::min ignores a NaN *argument* but
        // propagates a NaN *accumulator*, so order used to matter.
        let mut nan_first = OnlineStats::new();
        nan_first.push(f64::NAN);
        nan_first.push(5.0);
        let mut nan_last = OnlineStats::new();
        nan_last.push(5.0);
        nan_last.push(f64::NAN);
        assert_eq!(nan_first.min(), 5.0);
        assert_eq!(nan_first.max(), 5.0);
        assert_eq!(nan_first.min(), nan_last.min());
        assert_eq!(nan_first.max(), nan_last.max());
    }

    #[test]
    fn merge_sums_nan_tallies() {
        let mut a = OnlineStats::new();
        a.push(f64::NAN);
        let mut b = OnlineStats::new();
        b.push(2.0);
        b.push(f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.nan_count(), 2);
        assert_eq!(a.mean(), 2.0);

        // Empty-other still carries its NaN tally.
        let mut c = OnlineStats::new();
        c.push(1.0);
        let mut nan_only = OnlineStats::new();
        nan_only.push(f64::NAN);
        c.merge(&nan_only);
        assert_eq!(c.count(), 1);
        assert_eq!(c.nan_count(), 1);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_percentiles_interpolate() {
        let s: Summary = (1..=4).map(f64::from).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.percentile(25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_keeps_values_sorted_under_random_insertion() {
        let mut s = Summary::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.sorted_values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn summary_empty_percentile_is_nan() {
        assert!(Summary::new().percentile(50.0).is_nan());
        assert!(Summary::new().percentile(0.0).is_nan());
        assert!(Summary::new().median().is_nan());
    }

    #[test]
    fn cdf_step_behaviour() {
        let cdf = Cdf::from_samples(vec![10.0, 20.0, 20.0, 40.0]);
        assert_eq!(cdf.probability_at_or_below(9.9), 0.0);
        assert_eq!(cdf.probability_at_or_below(10.0), 0.25);
        assert_eq!(cdf.probability_at_or_below(20.0), 0.75);
        assert_eq!(cdf.probability_at_or_below(40.0), 1.0);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::from_samples((0..50).map(|i| i as f64 * 2.0).collect());
        let series = cdf.series(0.0, 100.0, 21);
        assert_eq!(series.len(), 21);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0);
        h.push(15.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(1.0);
        b.push(1.0);
        b.push(9.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 0, 0, 1]);
        assert_eq!(a.lo(), 0.0);
        assert_eq!(a.hi(), 10.0);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.merge(&Histogram::new(0.0, 10.0, 4));
    }

    #[test]
    fn histogram_tracks_count_and_sum() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [1.0, 3.0, 9.0] {
            h.push(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 13.0);
        // Outliers clamp into buckets but the sum stays raw.
        h.push(100.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 113.0);
        // NaN lands in the first bucket (counts conserved) but cannot
        // poison the sum.
        h.push(f64::NAN);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 113.0);
    }

    #[test]
    fn histogram_cumulative_is_monotone_with_total_at_hi() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.0, 3.0, 5.0, 9.9] {
            h.push(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum.len(), 5);
        assert_eq!(cum[0], (2.0, 2));
        assert_eq!(cum.last(), Some(&(10.0, 5)));
        for w in cum.windows(2) {
            assert!(w[1].1 >= w[0].1, "cumulative counts must not decrease");
            assert!(w[1].0 > w[0].0, "upper bounds ascend");
        }
    }

    #[test]
    fn histogram_quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert!((h.quantile(0.5) - 5.0).abs() <= 1.0, "{}", h.quantile(0.5));
        assert!((h.quantile(0.9) - 9.0).abs() <= 1.0);
        assert_eq!(h.quantile(1.0), 10.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert!(Histogram::new(0.0, 1.0, 2).quantile(0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_quantile_rejects_out_of_range() {
        Histogram::new(0.0, 1.0, 2).quantile(1.5);
    }

    #[test]
    fn histogram_merge_adds_sums() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(2.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.sum(), 5.0);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn online_stats_snapshot_round_trips_bit_exactly() {
        let mut s = OnlineStats::new();
        for i in 0..137 {
            s.push((i as f64).sin() * 10.0 + 0.1);
        }
        s.push(f64::NAN);
        let doc = crate::jsonio::JsonParser::parse_document(&s.snapshot_json()).unwrap();
        let restored = OnlineStats::from_snapshot(&doc).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.snapshot_json(), s.snapshot_json());
        // Empty accumulator carries non-finite min/max.
        let empty = OnlineStats::new();
        let doc = crate::jsonio::JsonParser::parse_document(&empty.snapshot_json()).unwrap();
        assert_eq!(OnlineStats::from_snapshot(&doc).unwrap(), empty);
    }

    #[test]
    fn summary_snapshot_round_trips() {
        let mut s = Summary::new();
        for v in [5.5, 1.25, 3.0, 2.75, 4.125, 3.0] {
            s.push(v);
        }
        let doc = crate::jsonio::JsonParser::parse_document(&s.snapshot_json()).unwrap();
        let restored = Summary::from_snapshot(&doc).unwrap();
        assert_eq!(restored, s);
        let empty_doc =
            crate::jsonio::JsonParser::parse_document(&Summary::new().snapshot_json()).unwrap();
        assert_eq!(Summary::from_snapshot(&empty_doc).unwrap(), Summary::new());
    }

    #[test]
    fn histogram_snapshot_restores_into_matching_shape_only() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [1.0, 3.5, 9.9, 42.0] {
            h.push(v);
        }
        let doc = crate::jsonio::JsonParser::parse_document(&h.snapshot_json()).unwrap();
        let mut fresh = Histogram::new(0.0, 10.0, 5);
        fresh.restore_snapshot(&doc).unwrap();
        assert_eq!(fresh, h);
        let mut wrong = Histogram::new(0.0, 10.0, 4);
        assert!(wrong.restore_snapshot(&doc).unwrap_err().contains("shape"));
    }

    #[test]
    fn histogram_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5);
        let mids: Vec<f64> = h.midpoints().iter().map(|&(m, _)| m).collect();
        assert_eq!(mids, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }
}
