//! Fixed-step time series.
//!
//! The Google trace is a per-machine CPU-rate series at 5-minute steps;
//! power traces inside an attack window are 100 ms series. [`TimeSeries`]
//! stores such data compactly (start, step, values) and supports sampling,
//! resampling and elementwise combination.

use crate::stats::OnlineStats;
use crate::time::{SimDuration, SimTime};

/// A fixed-step `f64` time series.
///
/// Values are piecewise-constant: `value_at(t)` returns the sample of the
/// step containing `t`. Queries before the start return the first sample;
/// queries at or beyond the end return the last.
///
/// # Example
///
/// ```
/// use simkit::series::TimeSeries;
/// use simkit::time::{SimDuration, SimTime};
///
/// let s = TimeSeries::new(SimTime::ZERO, SimDuration::from_mins(5), vec![1.0, 2.0, 3.0]);
/// assert_eq!(s.value_at(SimTime::from_mins(0)), 1.0);
/// assert_eq!(s.value_at(SimTime::from_mins(7)), 2.0);
/// assert_eq!(s.value_at(SimTime::from_mins(99)), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: SimTime,
    step: SimDuration,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from explicit samples.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `values` is empty.
    pub fn new(start: SimTime, step: SimDuration, values: Vec<f64>) -> Self {
        assert!(!step.is_zero(), "time series step must be non-zero");
        assert!(
            !values.is_empty(),
            "time series must have at least one sample"
        );
        TimeSeries {
            start,
            step,
            values,
        }
    }

    /// A constant series covering `len` steps.
    pub fn constant(start: SimTime, step: SimDuration, value: f64, len: usize) -> Self {
        TimeSeries::new(start, step, vec![value; len])
    }

    /// First sample time.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Step between consecutive samples.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// End of the covered interval (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.step * self.values.len() as u64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series holds a single sample (it can never be fully
    /// empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Underlying samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to samples.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sample index containing `t`, clamped to the valid range.
    pub fn index_at(&self, t: SimTime) -> usize {
        if t <= self.start {
            return 0;
        }
        let offset = t.saturating_since(self.start);
        ((offset / self.step) as usize).min(self.values.len() - 1)
    }

    /// Piecewise-constant lookup.
    pub fn value_at(&self, t: SimTime) -> f64 {
        self.values[self.index_at(t)]
    }

    /// Iterator over `(sample_start_time, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start + self.step * i as u64, v))
    }

    /// Elementwise sum of several series with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or geometries differ.
    pub fn sum<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let mut iter = series.into_iter();
        let first = iter.next().expect("sum of zero series");
        let mut acc = first.clone();
        for s in iter {
            assert_eq!(s.start, acc.start, "series start mismatch");
            assert_eq!(s.step, acc.step, "series step mismatch");
            assert_eq!(s.values.len(), acc.values.len(), "series length mismatch");
            for (a, b) in acc.values.iter_mut().zip(&s.values) {
                *a += b;
            }
        }
        acc
    }

    /// Applies `f` to every sample, returning a new series.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            start: self.start,
            step: self.step,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every sample with its start time, returning a new
    /// series (e.g. to inject time-localized surges into a trace).
    pub fn map_time(&self, mut f: impl FnMut(SimTime, f64) -> f64) -> TimeSeries {
        TimeSeries {
            start: self.start,
            step: self.step,
            values: self
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| f(self.start + self.step * i as u64, v))
                .collect(),
        }
    }

    /// Downsamples by an integer `factor`, averaging each group (the last
    /// group may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample_mean(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be non-zero");
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        TimeSeries {
            start: self.start,
            step: self.step * factor as u64,
            values,
        }
    }

    /// Downsamples by an integer `factor`, keeping each group's maximum.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample_max(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be non-zero");
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        TimeSeries {
            start: self.start,
            step: self.step * factor as u64,
            values,
        }
    }

    /// Summary statistics over all samples.
    pub fn stats(&self) -> OnlineStats {
        self.values.iter().copied().collect()
    }

    /// Integral of the piecewise-constant series over its whole span,
    /// in value·seconds (e.g. watts → joules).
    pub fn integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.step.as_secs_f64()
    }

    /// Per-index standard deviation across a set of equally shaped series —
    /// the quantity Figure 5 plots across 20 rack batteries.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty or shapes differ.
    pub fn cross_sectional_std_dev(group: &[TimeSeries]) -> TimeSeries {
        let first = group.first().expect("empty series group");
        let n = first.values.len();
        for s in group {
            assert_eq!(s.values.len(), n, "series length mismatch");
            assert_eq!(s.step, first.step, "series step mismatch");
        }
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let stats: OnlineStats = group.iter().map(|s| s.values[i]).collect();
                stats.population_std_dev()
            })
            .collect();
        TimeSeries {
            start: first.start,
            step: first.step,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(SimTime::ZERO, SimDuration::from_mins(5), values)
    }

    #[test]
    fn lookup_is_piecewise_constant() {
        let s = make(vec![10.0, 20.0, 30.0]);
        assert_eq!(s.value_at(SimTime::ZERO), 10.0);
        assert_eq!(s.value_at(SimTime::from_mins(4)), 10.0);
        assert_eq!(s.value_at(SimTime::from_mins(5)), 20.0);
        assert_eq!(s.value_at(SimTime::from_mins(14)), 30.0);
    }

    #[test]
    fn lookup_clamps_out_of_range() {
        let s = TimeSeries::new(
            SimTime::from_mins(10),
            SimDuration::from_mins(5),
            vec![1.0, 2.0],
        );
        assert_eq!(s.value_at(SimTime::ZERO), 1.0);
        assert_eq!(s.value_at(SimTime::from_hours(99)), 2.0);
    }

    #[test]
    fn end_is_exclusive_cover() {
        let s = make(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.end(), SimTime::from_mins(15));
    }

    #[test]
    fn sum_adds_elementwise() {
        let a = make(vec![1.0, 2.0, 3.0]);
        let b = make(vec![10.0, 20.0, 30.0]);
        let s = TimeSeries::sum([&a, &b]);
        assert_eq!(s.values(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sum_rejects_mismatched_shapes() {
        let a = make(vec![1.0, 2.0]);
        let b = make(vec![1.0, 2.0, 3.0]);
        TimeSeries::sum([&a, &b]);
    }

    #[test]
    fn downsample_mean_and_max() {
        let s = make(vec![1.0, 3.0, 2.0, 8.0, 5.0]);
        let mean = s.downsample_mean(2);
        assert_eq!(mean.values(), &[2.0, 5.0, 5.0]);
        assert_eq!(mean.step(), SimDuration::from_mins(10));
        let max = s.downsample_max(2);
        assert_eq!(max.values(), &[3.0, 8.0, 5.0]);
    }

    #[test]
    fn map_applies_function() {
        let s = make(vec![1.0, 2.0]).map(|v| v * 100.0);
        assert_eq!(s.values(), &[100.0, 200.0]);
    }

    #[test]
    fn map_time_sees_sample_times() {
        let s = make(vec![1.0, 1.0]).map_time(|t, v| {
            if t >= SimTime::from_mins(5) {
                v * 2.0
            } else {
                v
            }
        });
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn cross_sectional_std_dev_zero_for_identical() {
        let group = vec![make(vec![5.0, 6.0]), make(vec![5.0, 6.0])];
        let sd = TimeSeries::cross_sectional_std_dev(&group);
        assert_eq!(sd.values(), &[0.0, 0.0]);
    }

    #[test]
    fn cross_sectional_std_dev_known_value() {
        let group = vec![make(vec![0.0]), make(vec![10.0])];
        let sd = TimeSeries::cross_sectional_std_dev(&group);
        assert_eq!(sd.values(), &[5.0]);
    }

    #[test]
    fn integral_sums_value_seconds() {
        let s = TimeSeries::new(SimTime::ZERO, SimDuration::from_secs(10), vec![2.0, 4.0]);
        assert_eq!(s.integral(), 60.0);
    }

    #[test]
    fn iter_yields_times_and_values() {
        let s = make(vec![1.0, 2.0]);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(
            collected,
            vec![(SimTime::ZERO, 1.0), (SimTime::from_mins(5), 2.0)]
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty_series() {
        TimeSeries::new(SimTime::ZERO, SimDuration::SECOND, vec![]);
    }
}
