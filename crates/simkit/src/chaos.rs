//! Wire-level chaos: seeded byte/line fault plans for a TCP stream and
//! an in-process fault-injecting proxy.
//!
//! Where [`fault`](crate::fault) perturbs the *simulated world* (sensor
//! noise, component outages), this module perturbs the *transport* a
//! live telemetry daemon ingests from: connections cut at arbitrary
//! byte offsets, stalled mid-line, writes fragmented into tiny chunks,
//! lines duplicated or garbled in flight. A [`ChaosPlan`] is the pure
//! data description of one such torture schedule — seeded, validated,
//! and JSON round-trippable exactly like a
//! [`FaultPlan`](crate::fault::FaultPlan) — and a [`FaultProxy`] is the
//! in-process TCP proxy that executes it between a client and an
//! upstream server.
//!
//! # Determinism contract
//!
//! A plan is pure data: every offset, index and chunk size is fixed at
//! plan-build time (seeded generation uses [`RngStream`], so the same
//! seed yields the same plan bytes). The proxy applies each fault **at
//! most once per proxy lifetime**: a `cut_at` severs the first
//! connection that reaches its byte offset, and the client's retry
//! connection then passes unharmed — which is what lets a
//! reconnect-and-resume client make progress under any plan.
//!
//! # Example
//!
//! ```
//! use simkit::chaos::{ChaosPlan, WireFault};
//!
//! let plan = ChaosPlan::new("smoke", 7)
//!     .with(WireFault::CutAt { offset: 4096 })
//!     .with(WireFault::Chunk { max_bytes: 17 });
//! let json = plan.to_json();
//! assert_eq!(ChaosPlan::from_json(&json).unwrap(), plan);
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::jsonio::{Json, JsonParser, ObjFields};
use crate::rng::RngStream;

/// One transport-level fault in a [`ChaosPlan`].
///
/// Byte offsets count the client→upstream direction only (the reply
/// direction is never perturbed — a real flaky network hurts the bulk
/// data path, and perturbing acks would only retest the same client
/// code). Line indices count client→upstream `\n`-terminated lines,
/// starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Sever the connection (both directions) once `offset` bytes have
    /// been forwarded upstream.
    CutAt {
        /// Client→upstream byte offset of the cut.
        offset: u64,
    },
    /// Pause forwarding for `ms` wall-clock milliseconds once `offset`
    /// bytes have been forwarded.
    StallAt {
        /// Client→upstream byte offset of the stall.
        offset: u64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Fragment every upstream write into chunks of at most
    /// `max_bytes` bytes (exercises partial-line reads). Unlike the
    /// one-shot faults this applies for the whole proxy lifetime.
    Chunk {
        /// Maximum bytes per upstream write.
        max_bytes: u64,
    },
    /// Forward the `index`-th client line twice.
    DuplicateLine {
        /// Zero-based client→upstream line index.
        index: u64,
    },
    /// Overwrite every byte of the `index`-th client line (except its
    /// terminating newline) with `#`, making it unparseable.
    GarbleLine {
        /// Zero-based client→upstream line index.
        index: u64,
    },
}

impl WireFault {
    /// Stable wire name of the fault kind.
    pub fn name(self) -> &'static str {
        match self {
            WireFault::CutAt { .. } => "cut_at",
            WireFault::StallAt { .. } => "stall_at",
            WireFault::Chunk { .. } => "chunk",
            WireFault::DuplicateLine { .. } => "duplicate_line",
            WireFault::GarbleLine { .. } => "garble_line",
        }
    }

    /// Validates the fault's parameters.
    pub fn validate(self) -> Result<(), String> {
        match self {
            WireFault::Chunk { max_bytes: 0 } => {
                Err("chunk max_bytes must be at least 1".to_string())
            }
            WireFault::StallAt { ms, .. } if ms > 60_000 => {
                Err("stall_at ms must be at most 60000".to_string())
            }
            _ => Ok(()),
        }
    }

    /// `true` for faults that leave the forwarded byte stream
    /// semantically intact (an ingest protected by checkpoint/resume
    /// must produce byte-identical outputs under them).
    pub fn is_lossless(self) -> bool {
        !matches!(
            self,
            WireFault::DuplicateLine { .. } | WireFault::GarbleLine { .. }
        )
    }
}

/// A named, seeded schedule of [`WireFault`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    name: String,
    seed: u64,
    kill_at_line: Option<u64>,
    faults: Vec<WireFault>,
}

impl ChaosPlan {
    /// Creates an empty plan.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        ChaosPlan {
            name: name.into(),
            seed,
            kill_at_line: None,
            faults: Vec::new(),
        }
    }

    /// Builder-style [`push`](ChaosPlan::push).
    pub fn with(mut self, fault: WireFault) -> Self {
        self.push(fault);
        self
    }

    /// Appends a fault.
    pub fn push(&mut self, fault: WireFault) {
        self.faults.push(fault);
    }

    /// Schedules a harness-level daemon kill-and-restart once the
    /// client has durably sent `line` data lines. The proxy ignores
    /// this — it is executed by the chaos *runner*, which owns the
    /// daemon process.
    pub fn with_kill_at_line(mut self, line: u64) -> Self {
        self.kill_at_line = Some(line);
        self
    }

    /// The plan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed the plan was generated from (or tagged with).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The harness-level kill point, if any.
    pub fn kill_at_line(&self) -> Option<u64> {
        self.kill_at_line
    }

    /// The scheduled faults, in schedule order.
    pub fn faults(&self) -> &[WireFault] {
        &self.faults
    }

    /// `true` when every fault [`is_lossless`](WireFault::is_lossless):
    /// a resuming client must reproduce byte-identical outputs.
    pub fn is_lossless(&self) -> bool {
        self.faults.iter().all(|f| f.is_lossless())
    }

    /// Validates every fault, reporting the first error with its index.
    pub fn validate(&self) -> Result<(), String> {
        for (i, fault) in self.faults.iter().enumerate() {
            fault.validate().map_err(|e| format!("fault {i}: {e}"))?;
        }
        Ok(())
    }

    /// Generates a deterministic mixed plan for a stream of roughly
    /// `approx_bytes`/`approx_lines`: one mid-stream cut, one stall,
    /// chunked writes, and (when `lossy`) one duplicated and one
    /// garbled line. Same seed, same plan.
    pub fn seeded(
        name: impl Into<String>,
        seed: u64,
        approx_bytes: u64,
        approx_lines: u64,
        lossy: bool,
    ) -> ChaosPlan {
        let mut rng = RngStream::new(seed).fork("chaos");
        let span = approx_bytes.max(16) as f64;
        let lines = approx_lines.max(4) as f64;
        let mut plan = ChaosPlan::new(name, seed)
            .with(WireFault::CutAt {
                offset: rng.uniform(0.2 * span, 0.8 * span) as u64,
            })
            .with(WireFault::StallAt {
                offset: rng.uniform(0.1 * span, 0.9 * span) as u64,
                ms: rng.uniform(5.0, 40.0) as u64,
            })
            .with(WireFault::Chunk {
                max_bytes: rng.uniform(3.0, 64.0) as u64,
            });
        if lossy {
            plan = plan
                .with(WireFault::DuplicateLine {
                    index: rng.uniform(0.1 * lines, 0.9 * lines) as u64,
                })
                .with(WireFault::GarbleLine {
                    index: rng.uniform(0.1 * lines, 0.9 * lines) as u64,
                });
        }
        plan
    }

    /// Serializes the plan to its canonical single-line JSON form.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"name\":\"{}\",\"seed\":{}", self.name, self.seed);
        if let Some(line) = self.kill_at_line {
            let _ = write!(out, ",\"kill_at_line\":{line}");
        }
        out.push_str(",\"faults\":[");
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"kind\":\"{}\"", fault.name());
            match *fault {
                WireFault::CutAt { offset } => {
                    let _ = write!(out, ",\"offset\":{offset}");
                }
                WireFault::StallAt { offset, ms } => {
                    let _ = write!(out, ",\"offset\":{offset},\"ms\":{ms}");
                }
                WireFault::Chunk { max_bytes } => {
                    let _ = write!(out, ",\"max_bytes\":{max_bytes}");
                }
                WireFault::DuplicateLine { index } | WireFault::GarbleLine { index } => {
                    let _ = write!(out, ",\"index\":{index}");
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a plan from the JSON form produced by
    /// [`ChaosPlan::to_json`] (whitespace-tolerant) and validates it.
    pub fn from_json(text: &str) -> Result<ChaosPlan, String> {
        let value = JsonParser::parse_document(text)?;
        let obj = value.as_object("plan")?;
        let mut plan = ChaosPlan::new(obj.str_field("name")?.to_string(), obj.u64_field("seed")?);
        plan.kill_at_line = obj.opt_u64_field("kill_at_line")?;
        for (i, item) in obj.arr_field("faults")?.iter().enumerate() {
            let fault = parse_fault(item).map_err(|e| format!("fault {i}: {e}"))?;
            plan.push(fault);
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn parse_fault(value: &Json) -> Result<WireFault, String> {
    let obj = value.as_object("fault")?;
    Ok(match obj.str_field("kind")? {
        "cut_at" => WireFault::CutAt {
            offset: obj.u64_field("offset")?,
        },
        "stall_at" => WireFault::StallAt {
            offset: obj.u64_field("offset")?,
            ms: obj.u64_field("ms")?,
        },
        "chunk" => WireFault::Chunk {
            max_bytes: obj.u64_field("max_bytes")?,
        },
        "duplicate_line" => WireFault::DuplicateLine {
            index: obj.u64_field("index")?,
        },
        "garble_line" => WireFault::GarbleLine {
            index: obj.u64_field("index")?,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    })
}

/// Shared one-shot bookkeeping: which plan faults have already fired.
struct Armed {
    faults: Vec<WireFault>,
    fired: Vec<bool>,
}

/// An in-process fault-injecting TCP proxy.
///
/// Listens on an ephemeral loopback port and forwards each accepted
/// connection to `upstream`, applying a [`ChaosPlan`]'s faults to the
/// client→upstream byte stream (replies pass through untouched). Every
/// fault fires at most once per proxy lifetime, shared across
/// connections, so a reconnecting client always makes progress.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts the proxy in front of `upstream` with `plan`'s faults.
    ///
    /// # Errors
    ///
    /// Returns the bind error if no loopback port is available.
    pub fn start(upstream: SocketAddr, plan: &ChaosPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let armed = Arc::new(Mutex::new(Armed {
            faults: plan.faults().to_vec(),
            fired: vec![false; plan.faults().len()],
        }));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let armed = Arc::clone(&armed);
                        workers.push(thread::spawn(move || {
                            let _ = pump_connection(client, upstream, &armed);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
                workers.retain(|h| !h.is_finished());
            }
            for h in workers {
                let _ = h.join();
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Existing connections
    /// finish on their own.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Forwards one client connection through the fault pipeline.
fn pump_connection(
    client: TcpStream,
    upstream: SocketAddr,
    armed: &Mutex<Armed>,
) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    // Reply pump: upstream → client, untouched.
    let (mut reply_src, reply_dst) = (server.try_clone()?, client.try_clone()?);
    let replies = thread::spawn(move || {
        let mut dst = reply_dst;
        let mut buf = [0u8; 4096];
        loop {
            match reply_src.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if dst.write_all(&buf[..n]).is_err() {
                        break;
                    }
                    let _ = dst.flush();
                }
            }
        }
        let _ = dst.shutdown(Shutdown::Write);
    });

    let outcome = pump_data(&client, &server, armed);
    // A cut severs both directions immediately; a normal EOF half-closes
    // the upstream write side and lets replies drain.
    match outcome {
        Ok(true) => {
            let _ = server.shutdown(Shutdown::Both);
            let _ = client.shutdown(Shutdown::Both);
        }
        _ => {
            let _ = server.shutdown(Shutdown::Write);
        }
    }
    let _ = replies.join();
    Ok(())
}

/// Client → upstream pump with the fault pipeline. Returns `Ok(true)`
/// when a cut fault severed the connection, `Ok(false)` on client EOF.
fn pump_data(
    client: &TcpStream,
    server: &TcpStream,
    armed: &Mutex<Armed>,
) -> std::io::Result<bool> {
    let mut src = client.try_clone()?;
    let mut dst = server.try_clone()?;
    let mut buf = [0u8; 4096];
    let mut cur_line: Vec<u8> = Vec::new();
    let mut line_index: u64 = 0;
    let mut sent: u64 = 0;
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Flush any unterminated trailing bytes verbatim.
                let tail = std::mem::take(&mut cur_line);
                if !tail.is_empty() && emit(&mut dst, &tail, &mut sent, armed)? {
                    return Ok(true);
                }
                return Ok(false);
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Ok(false),
        };
        for &b in &buf[..n] {
            cur_line.push(b);
            if b != b'\n' {
                continue;
            }
            let mut line = std::mem::take(&mut cur_line);
            let mut copies = 1;
            {
                let mut armed = armed.lock().expect("chaos faults lock");
                let Armed { faults, fired } = &mut *armed;
                for (fault, fired) in faults.iter().zip(fired.iter_mut()) {
                    match *fault {
                        WireFault::GarbleLine { index } if index == line_index && !*fired => {
                            *fired = true;
                            let len = line.len() - 1;
                            line[..len].fill(b'#');
                        }
                        WireFault::DuplicateLine { index } if index == line_index && !*fired => {
                            *fired = true;
                            copies = 2;
                        }
                        _ => {}
                    }
                }
            }
            for _ in 0..copies {
                if emit(&mut dst, &line, &mut sent, armed)? {
                    return Ok(true);
                }
            }
            line_index += 1;
        }
    }
}

/// Writes `bytes` upstream, honouring chunking, stalls and cuts.
/// Returns `Ok(true)` when a cut fault fired inside this emission.
fn emit(
    dst: &mut TcpStream,
    bytes: &[u8],
    sent: &mut u64,
    armed: &Mutex<Armed>,
) -> std::io::Result<bool> {
    let mut pos = 0usize;
    while pos < bytes.len() {
        // Decide the largest safe write: stop at the nearest pending
        // cut/stall boundary and at the chunk ceiling.
        let mut limit = bytes.len() - pos;
        let mut stall: Option<Duration> = None;
        let mut cut_now = false;
        {
            let mut armed = armed.lock().expect("chaos faults lock");
            let Armed { faults, fired } = &mut *armed;
            for (fault, fired) in faults.iter().zip(fired.iter_mut()) {
                if *fired {
                    continue;
                }
                match *fault {
                    WireFault::Chunk { max_bytes } => {
                        limit = limit.min(max_bytes as usize);
                    }
                    WireFault::CutAt { offset } => {
                        if offset <= *sent {
                            *fired = true;
                            cut_now = true;
                        } else {
                            limit = limit.min((offset - *sent) as usize);
                        }
                    }
                    WireFault::StallAt { offset, ms } => {
                        if offset <= *sent {
                            *fired = true;
                            stall = Some(Duration::from_millis(ms));
                        } else {
                            limit = limit.min((offset - *sent) as usize);
                        }
                    }
                    _ => {}
                }
            }
        }
        if cut_now {
            return Ok(true);
        }
        if let Some(pause) = stall {
            thread::sleep(pause);
            continue;
        }
        let end = pos + limit.max(1);
        dst.write_all(&bytes[pos..end])?;
        dst.flush()?;
        *sent += (end - pos) as u64;
        pos = end;
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = ChaosPlan::new("torture", 42)
            .with(WireFault::CutAt { offset: 1000 })
            .with(WireFault::StallAt {
                offset: 2000,
                ms: 10,
            })
            .with(WireFault::Chunk { max_bytes: 7 })
            .with(WireFault::DuplicateLine { index: 3 })
            .with(WireFault::GarbleLine { index: 5 })
            .with_kill_at_line(100);
        let json = plan.to_json();
        assert_eq!(ChaosPlan::from_json(&json).unwrap(), plan);
        assert!(!plan.is_lossless());
        assert!(ChaosPlan::new("clean", 1)
            .with(WireFault::CutAt { offset: 9 })
            .is_lossless());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = ChaosPlan::seeded("s", 9, 10_000, 200, true);
        let b = ChaosPlan::seeded("s", 9, 10_000, 200, true);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 5);
        a.validate().unwrap();
        let c = ChaosPlan::seeded("s", 10, 10_000, 200, true);
        assert_ne!(a.to_json(), c.to_json(), "different seeds differ");
    }

    #[test]
    fn plan_rejects_bad_parameters() {
        assert!(ChaosPlan::new("bad", 0)
            .with(WireFault::Chunk { max_bytes: 0 })
            .validate()
            .is_err());
        assert!(ChaosPlan::from_json(
            "{\"name\":\"x\",\"seed\":1,\"faults\":[{\"kind\":\"nope\"}]}"
        )
        .is_err());
    }

    /// Upstream that records everything it reads and echoes `done\n`
    /// when the client half-closes.
    fn sink_upstream() -> (SocketAddr, std::sync::mpsc::Receiver<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        thread::spawn(move || {
            while let Ok((mut conn, _)) = listener.accept() {
                let mut data = Vec::new();
                let _ = conn.read_to_end(&mut data);
                let _ = conn.write_all(b"done\n");
                let _ = conn.shutdown(Shutdown::Write);
                if tx.send(data).is_err() {
                    break;
                }
            }
        });
        (addr, rx)
    }

    #[test]
    fn clean_plan_forwards_bytes_and_replies_untouched() {
        let (upstream, rx) = sink_upstream();
        let proxy = FaultProxy::start(upstream, &ChaosPlan::new("clean", 0)).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"alpha\nbeta\n").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        let mut reply = String::new();
        std::io::BufReader::new(&mut client)
            .read_line(&mut reply)
            .unwrap();
        assert_eq!(reply, "done\n");
        assert_eq!(rx.recv().unwrap(), b"alpha\nbeta\n");
        proxy.stop();
    }

    #[test]
    fn garble_and_duplicate_target_exact_lines_once() {
        let (upstream, rx) = sink_upstream();
        let plan = ChaosPlan::new("lossy", 0)
            .with(WireFault::GarbleLine { index: 1 })
            .with(WireFault::DuplicateLine { index: 2 });
        let proxy = FaultProxy::start(upstream, &plan).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"a\nbb\nccc\ndddd\n").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        assert_eq!(rx.recv().unwrap(), b"a\n##\nccc\nccc\ndddd\n");
        // A second connection is untouched: the faults already fired.
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"a\nbb\nccc\ndddd\n").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        assert_eq!(rx.recv().unwrap(), b"a\nbb\nccc\ndddd\n");
        proxy.stop();
    }

    #[test]
    fn cut_severs_at_the_exact_byte_offset_once() {
        let (upstream, rx) = sink_upstream();
        let plan = ChaosPlan::new("cut", 0).with(WireFault::CutAt { offset: 4 });
        let proxy = FaultProxy::start(upstream, &plan).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        // Writes may or may not error depending on timing; the upstream
        // view is what matters.
        let _ = client.write_all(b"abcdefgh\n");
        let _ = client.shutdown(Shutdown::Write);
        assert_eq!(rx.recv().unwrap(), b"abcd");
        drop(client);
        // Retry passes through whole.
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"abcdefgh\n").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        assert_eq!(rx.recv().unwrap(), b"abcdefgh\n");
        proxy.stop();
    }

    #[test]
    fn chunking_preserves_content() {
        let (upstream, rx) = sink_upstream();
        let plan = ChaosPlan::new("chunk", 0).with(WireFault::Chunk { max_bytes: 3 });
        let proxy = FaultProxy::start(upstream, &plan).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        let payload = b"the quick brown fox jumps over the lazy dog\n".repeat(20);
        client.write_all(&payload).unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        assert_eq!(rx.recv().unwrap(), payload);
        proxy.stop();
    }
}
