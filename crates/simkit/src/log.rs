//! Structured simulation event logging.
//!
//! Long simulations need a forensic trail: when did the LVD isolate a
//! battery, when did capping engage, when did the policy escalate?
//! [`EventLog`] is a bounded, allocation-light recorder the simulator
//! writes to and CLIs/experiments read back or print.
//!
//! Retention is **per severity**: each severity level has its own
//! bounded lane, so a flood of Info noise can never evict the Critical
//! incidents a post-mortem actually needs. Severity filtering happens at
//! push time ([`EventLog::with_min_severity`]) — filtered events are
//! never buffered, so they cannot displace anything.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine state changes (recharge episodes, cap lifts).
    Info,
    /// Degraded conditions (battery isolated, capping engaged).
    Warning,
    /// Incidents (overloads, breaker trips, load shedding).
    Critical,
}

/// Number of severity levels (one retention lane each).
const LANES: usize = 3;

impl Severity {
    /// Every severity, in ascending order.
    pub const ALL: [Severity; LANES] = [Severity::Info, Severity::Warning, Severity::Critical];

    /// Short tag used in rendered output.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        }
    }

    /// Dense index of this severity (its retention lane).
    fn idx(self) -> usize {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Critical => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Originating component (e.g. `"rack-03"`, `"policy"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {:<10} {}",
            self.time, self.severity, self.source, self.message
        )
    }
}

/// A bounded in-memory event log with per-severity retention.
///
/// Each severity keeps its own lane of at most its cap (by default, the
/// log's overall capacity), and the oldest event *of that severity* is
/// evicted when its lane fills. This fixes the classic bounded-buffer
/// failure where an Info flood silently evicts the rare Critical events:
/// here Info can only evict Info. Eviction counts are kept so consumers
/// know the log is partial, and [`events`](EventLog::events) merges the
/// lanes back into recording order via per-event sequence numbers.
///
/// Events below a minimum severity ([`with_min_severity`]
/// (EventLog::with_min_severity)) are dropped at push time — counted in
/// [`filtered`](EventLog::filtered), never buffered.
///
/// # Example
///
/// ```
/// use simkit::log::{EventLog, Severity};
/// use simkit::time::SimTime;
///
/// let mut log = EventLog::new(100);
/// log.record(SimTime::from_secs(5), Severity::Warning, "rack-03", "battery isolated (LVD)");
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.events().next().unwrap().severity, Severity::Warning);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    lanes: [VecDeque<(u64, LogEvent)>; LANES],
    caps: [usize; LANES],
    min_severity: Severity,
    next_seq: u64,
    evicted: u64,
    filtered: u64,
}

impl EventLog {
    /// Creates a log where every severity lane holds at most `capacity`
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be non-zero");
        EventLog {
            lanes: std::array::from_fn(|_| VecDeque::new()),
            caps: [capacity; LANES],
            min_severity: Severity::Info,
            next_seq: 0,
            evicted: 0,
            filtered: 0,
        }
    }

    /// Drops events below `severity` at push time (they are counted in
    /// [`filtered`](EventLog::filtered) but never buffered).
    pub fn with_min_severity(mut self, severity: Severity) -> Self {
        self.min_severity = severity;
        self
    }

    /// Overrides the retention cap for one severity lane.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_severity_cap(mut self, severity: Severity, cap: usize) -> Self {
        assert!(cap > 0, "log capacity must be non-zero");
        self.caps[severity.idx()] = cap;
        self
    }

    /// The push-time severity floor.
    pub fn min_severity(&self) -> Severity {
        self.min_severity
    }

    /// Records one event.
    pub fn record(
        &mut self,
        time: SimTime,
        severity: Severity,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if severity < self.min_severity {
            self.filtered += 1;
            return;
        }
        let lane = &mut self.lanes[severity.idx()];
        if lane.len() == self.caps[severity.idx()] {
            lane.pop_front();
            self.evicted += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        lane.push_back((
            seq,
            LogEvent {
                time,
                severity,
                source: source.into(),
                message: message.into(),
            },
        ));
    }

    /// All retained events, oldest first (lanes merged back into
    /// recording order).
    pub fn events(&self) -> impl ExactSizeIterator<Item = &LogEvent> {
        let mut merged: Vec<&(u64, LogEvent)> = self.lanes.iter().flatten().collect();
        merged.sort_by_key(|(seq, _)| *seq);
        merged.into_iter().map(|(_, e)| e)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    /// How many events were evicted to respect lane capacities.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// How many events were dropped at push time by the severity floor.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Events at or above `severity`, in recording order.
    pub fn at_least(&self, severity: Severity) -> impl Iterator<Item = &LogEvent> {
        self.events().filter(move |e| e.severity >= severity)
    }

    /// Retained event counts per severity lane, in [`Severity::ALL`]
    /// order.
    pub fn severity_counts(&self) -> [usize; LANES] {
        let mut counts = [0; LANES];
        for (i, lane) in self.lanes.iter().enumerate() {
            counts[i] = lane.len();
        }
        counts
    }

    /// Renders the retained events as lines.
    ///
    /// A footer line summarizes retained counts per severity (so a reader
    /// can see at a glance how many warnings/criticals — e.g. injected
    /// faults — the run produced). When the log is partial, a second
    /// footer line reports how many events were evicted by lane capacity
    /// and how many were filtered by the severity floor, so readers know
    /// what is missing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!(
                "... {} earlier events evicted ...\n",
                self.evicted
            ));
        }
        for e in self.events() {
            out.push_str(&format!("{e}\n"));
        }
        if !self.is_empty() {
            let counts = self.severity_counts();
            let parts: Vec<String> = Severity::ALL
                .iter()
                .zip(counts)
                .map(|(s, n)| format!("{n} {s}"))
                .collect();
            out.push_str(&format!("-- severity: {} --\n", parts.join(", ")));
        }
        if self.evicted > 0 || self.filtered > 0 {
            out.push_str(&format!(
                "-- partial log: {} evicted, {} filtered --\n",
                self.evicted, self.filtered
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(10);
        log.record(SimTime::from_secs(1), Severity::Info, "a", "one");
        log.record(SimTime::from_secs(2), Severity::Critical, "b", "two");
        let events: Vec<_> = log.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "one");
        assert_eq!(events[1].severity, Severity::Critical);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.record(SimTime::from_secs(i), Severity::Info, "s", format!("{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let first = log.events().next().unwrap();
        assert_eq!(first.message, "2");
        assert!(log.render().starts_with("... 2 earlier events evicted"));
    }

    #[test]
    fn info_flood_cannot_evict_critical_events() {
        let mut log = EventLog::new(3);
        log.record(SimTime::ZERO, Severity::Critical, "s", "breaker trip");
        for i in 0..100u64 {
            log.record(
                SimTime::from_secs(i),
                Severity::Info,
                "s",
                format!("noise {i}"),
            );
        }
        let criticals: Vec<_> = log.at_least(Severity::Critical).collect();
        assert_eq!(criticals.len(), 1, "the incident survived the flood");
        assert_eq!(criticals[0].message, "breaker trip");
        assert_eq!(log.len(), 4, "3 retained Info + 1 Critical");
        assert_eq!(log.evicted(), 97);
        // And the merge preserves recording order: Critical came first.
        assert_eq!(log.events().next().unwrap().severity, Severity::Critical);
    }

    #[test]
    fn per_severity_caps_are_independent() {
        let mut log = EventLog::new(10)
            .with_severity_cap(Severity::Info, 2)
            .with_severity_cap(Severity::Critical, 5);
        for i in 0..4u64 {
            log.record(SimTime::from_secs(i), Severity::Info, "s", format!("i{i}"));
            log.record(
                SimTime::from_secs(i),
                Severity::Critical,
                "s",
                format!("c{i}"),
            );
        }
        let infos: Vec<_> = log
            .events()
            .filter(|e| e.severity == Severity::Info)
            .map(|e| e.message.clone())
            .collect();
        assert_eq!(infos, vec!["i2", "i3"], "Info lane capped at 2");
        assert_eq!(log.at_least(Severity::Critical).count(), 4);
        assert_eq!(log.evicted(), 2);
    }

    #[test]
    fn min_severity_filters_at_push_time() {
        let mut log = EventLog::new(2).with_min_severity(Severity::Warning);
        // A flood of below-floor events must not evict anything.
        for i in 0..50u64 {
            log.record(SimTime::from_secs(i), Severity::Info, "s", "noise");
        }
        log.record(SimTime::ZERO, Severity::Warning, "s", "capping");
        log.record(SimTime::ZERO, Severity::Critical, "s", "trip");
        assert_eq!(log.len(), 2);
        assert_eq!(log.filtered(), 50);
        assert_eq!(log.evicted(), 0, "filtered events never occupied a slot");
        assert_eq!(log.min_severity(), Severity::Warning);
    }

    #[test]
    fn render_footer_reports_evicted_and_filtered() {
        // Complete log: no footer.
        let mut log = EventLog::new(10);
        log.record(SimTime::ZERO, Severity::Info, "s", "ok");
        assert!(!log.render().contains("partial log"));

        // Evictions and severity filtering both surface in the footer.
        let mut log = EventLog::new(2).with_min_severity(Severity::Warning);
        for i in 0..3u64 {
            log.record(SimTime::from_secs(i), Severity::Info, "s", "noise");
            log.record(SimTime::from_secs(i), Severity::Warning, "s", "warn");
        }
        let text = log.render();
        assert!(text.ends_with("-- partial log: 1 evicted, 3 filtered --\n"));
    }

    #[test]
    fn render_footer_reports_severity_counts() {
        let mut log = EventLog::new(10);
        assert!(!log.render().contains("severity:"), "empty log: no footer");
        log.record(SimTime::ZERO, Severity::Info, "s", "i");
        log.record(SimTime::ZERO, Severity::Warning, "s", "fault injected");
        log.record(SimTime::ZERO, Severity::Warning, "s", "fault cleared");
        log.record(SimTime::ZERO, Severity::Critical, "s", "trip");
        let text = log.render();
        assert!(text.contains("-- severity: 1 INFO, 2 WARN, 1 CRIT --\n"));
        assert_eq!(log.severity_counts(), [1, 2, 1]);
        // The severity line comes before any partial-log line.
        let mut log = EventLog::new(1);
        log.record(SimTime::ZERO, Severity::Info, "s", "a");
        log.record(SimTime::ZERO, Severity::Info, "s", "b");
        let text = log.render();
        let sev = text.find("-- severity:").unwrap();
        let partial = text.find("-- partial log:").unwrap();
        assert!(sev < partial);
    }

    #[test]
    fn severity_filter() {
        let mut log = EventLog::new(10);
        log.record(SimTime::ZERO, Severity::Info, "s", "i");
        log.record(SimTime::ZERO, Severity::Warning, "s", "w");
        log.record(SimTime::ZERO, Severity::Critical, "s", "c");
        assert_eq!(log.at_least(Severity::Warning).count(), 2);
        assert_eq!(log.at_least(Severity::Critical).count(), 1);
        assert!(Severity::Critical > Severity::Info);
    }

    #[test]
    fn display_format() {
        let e = LogEvent {
            time: SimTime::from_secs(90),
            severity: Severity::Warning,
            source: "rack-03".into(),
            message: "battery isolated".into(),
        };
        let text = e.to_string();
        assert!(text.contains("00:01:30.000"));
        assert!(text.contains("WARN"));
        assert!(text.contains("rack-03"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_lane_cap_rejected() {
        let _ = EventLog::new(1).with_severity_cap(Severity::Info, 0);
    }
}
