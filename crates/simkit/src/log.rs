//! Structured simulation event logging.
//!
//! Long simulations need a forensic trail: when did the LVD isolate a
//! battery, when did capping engage, when did the policy escalate?
//! [`EventLog`] is a bounded, allocation-light recorder the simulator
//! writes to and CLIs/experiments read back or print.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine state changes (recharge episodes, cap lifts).
    Info,
    /// Degraded conditions (battery isolated, capping engaged).
    Warning,
    /// Incidents (overloads, breaker trips, load shedding).
    Critical,
}

impl Severity {
    /// Short tag used in rendered output.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Originating component (e.g. `"rack-03"`, `"policy"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {:<10} {}",
            self.time, self.severity, self.source, self.message
        )
    }
}

/// A bounded in-memory event log.
///
/// Oldest events are evicted once the capacity is reached, so month-long
/// simulations cannot grow without bound; the eviction count is kept so
/// consumers know the log is partial.
///
/// # Example
///
/// ```
/// use simkit::log::{EventLog, Severity};
/// use simkit::time::SimTime;
///
/// let mut log = EventLog::new(100);
/// log.record(SimTime::from_secs(5), Severity::Warning, "rack-03", "battery isolated (LVD)");
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.events().next().unwrap().severity, Severity::Warning);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    events: VecDeque<LogEvent>,
    capacity: usize,
    evicted: u64,
}

impl EventLog {
    /// Creates a log holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be non-zero");
        EventLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Records one event.
    pub fn record(
        &mut self,
        time: SimTime,
        severity: Severity,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(LogEvent {
            time,
            severity,
            source: source.into(),
            message: message.into(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &LogEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted to respect the capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events at or above `severity`.
    pub fn at_least(&self, severity: Severity) -> impl Iterator<Item = &LogEvent> {
        self.events.iter().filter(move |e| e.severity >= severity)
    }

    /// Renders the retained events as lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!(
                "... {} earlier events evicted ...\n",
                self.evicted
            ));
        }
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(10);
        log.record(SimTime::from_secs(1), Severity::Info, "a", "one");
        log.record(SimTime::from_secs(2), Severity::Critical, "b", "two");
        let events: Vec<_> = log.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "one");
        assert_eq!(events[1].severity, Severity::Critical);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.record(SimTime::from_secs(i), Severity::Info, "s", format!("{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let first = log.events().next().unwrap();
        assert_eq!(first.message, "2");
        assert!(log.render().starts_with("... 2 earlier events evicted"));
    }

    #[test]
    fn severity_filter() {
        let mut log = EventLog::new(10);
        log.record(SimTime::ZERO, Severity::Info, "s", "i");
        log.record(SimTime::ZERO, Severity::Warning, "s", "w");
        log.record(SimTime::ZERO, Severity::Critical, "s", "c");
        assert_eq!(log.at_least(Severity::Warning).count(), 2);
        assert_eq!(log.at_least(Severity::Critical).count(), 1);
        assert!(Severity::Critical > Severity::Info);
    }

    #[test]
    fn display_format() {
        let e = LogEvent {
            time: SimTime::from_secs(90),
            severity: Severity::Warning,
            source: "rack-03".into(),
            message: "battery isolated".into(),
        };
        let text = e.to_string();
        assert!(text.contains("00:01:30.000"));
        assert!(text.contains("WARN"));
        assert!(text.contains("rack-03"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }
}
