//! Null-gated self-profiling: interned phase IDs, monotonic wall-clock
//! phase timers, and throughput accounting.
//!
//! The profiler follows the same discipline as [`crate::telemetry`] and
//! [`crate::trace`]: a *null* instance keeps every hot-loop hook a single
//! branch (the disabled path must stay within a few percent of an
//! uninstrumented build), while a *live* instance aggregates per-phase
//! call-count / total / max wall-clock durations against interned
//! [`PhaseId`]s handed out in registration order. Phase timings read the
//! monotonic clock only — they never feed back into simulation state, so
//! enabling profiling cannot perturb a single output byte.
//!
//! Wall-clock numbers are bookkeeping, not part of any determinism
//! contract: call counts and registration order are reproducible, the
//! durations vary run to run.
//!
//! # Example
//!
//! ```
//! use simkit::prof::{LapTimer, Profiler};
//!
//! let mut prof = Profiler::live();
//! let plan = prof.register("step.plan");
//! let apply = prof.register("step.apply");
//!
//! let mut lap = LapTimer::start(prof.enabled());
//! // ... planning work ...
//! if let Some(d) = lap.lap() {
//!     prof.add(plan, d);
//! }
//! // ... apply work ...
//! if let Some(d) = lap.lap() {
//!     prof.add(apply, d);
//! }
//!
//! let dump = prof.into_dump();
//! assert_eq!(dump.phases[0].name, "step.plan");
//! assert_eq!(dump.phases[0].calls, 1);
//! ```

use std::time::{Duration, Instant};

/// An interned phase handle: a dense index into the profiler's phase
/// table, handed out in registration order (the same discipline as
/// telemetry's `MetricId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhaseId(pub u16);

/// Aggregate wall-clock statistics for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of recorded laps.
    pub calls: u64,
    /// Total wall-clock time across all laps.
    pub total: Duration,
    /// The single longest lap.
    pub max: Duration,
}

impl PhaseStats {
    /// Folds one lap into the aggregate.
    #[inline]
    pub fn record(&mut self, elapsed: Duration) {
        self.calls += 1;
        self.total += elapsed;
        if elapsed > self.max {
            self.max = elapsed;
        }
    }

    /// Mean lap duration (zero when no laps were recorded).
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.calls).unwrap_or(u32::MAX)
        }
    }

    /// Sums another aggregate into this one (max-of-max).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.calls += other.calls;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// A self-profiler: interned phase names with per-phase aggregates.
///
/// A [`Profiler::null`] instance rejects nothing but records nothing —
/// [`Profiler::add`] is a single branch — so callers can install one
/// unconditionally and pay only when [`Profiler::live`] was chosen.
#[derive(Debug, Clone, PartialEq)]
pub struct Profiler {
    enabled: bool,
    names: Vec<String>,
    stats: Vec<PhaseStats>,
}

impl Profiler {
    /// A disabled profiler: registration still interns names (so the
    /// phase vocabulary stays identical either way), but every `add` is
    /// a no-op.
    pub fn null() -> Self {
        Profiler {
            enabled: false,
            names: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// A recording profiler.
    pub fn live() -> Self {
        Profiler {
            enabled: true,
            names: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Whether laps are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Interns `name`, returning its dense id. Registering the same name
    /// twice returns the original id.
    pub fn register(&mut self, name: &str) -> PhaseId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return PhaseId(i as u16);
        }
        assert!(self.names.len() < u16::MAX as usize, "phase table full");
        self.names.push(name.to_string());
        self.stats.push(PhaseStats::default());
        PhaseId((self.names.len() - 1) as u16)
    }

    /// Records one lap against `id`. A null profiler ignores the call.
    #[inline]
    pub fn add(&mut self, id: PhaseId, elapsed: Duration) {
        if self.enabled {
            self.stats[id.0 as usize].record(elapsed);
        }
    }

    /// The aggregate for `id`.
    pub fn stats(&self, id: PhaseId) -> &PhaseStats {
        &self.stats[id.0 as usize]
    }

    /// Consumes the profiler into a dump, phases in registration order.
    pub fn into_dump(self) -> ProfDump {
        ProfDump {
            phases: self
                .names
                .into_iter()
                .zip(self.stats)
                .map(|(name, stats)| PhaseProfile {
                    name,
                    calls: stats.calls,
                    total: stats.total,
                    max: stats.max,
                })
                .collect(),
        }
    }
}

/// One phase of a [`ProfDump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Registered phase name.
    pub name: String,
    /// Number of recorded laps.
    pub calls: u64,
    /// Total wall-clock time across all laps.
    pub total: Duration,
    /// The single longest lap.
    pub max: Duration,
}

impl PhaseProfile {
    /// Mean lap duration (zero when no laps were recorded).
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.calls).unwrap_or(u32::MAX)
        }
    }
}

/// A profiler's serializable output: phases in registration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfDump {
    /// Per-phase aggregates, in registration order.
    pub phases: Vec<PhaseProfile>,
}

impl ProfDump {
    /// Looks a phase up by name.
    pub fn get(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Folds another dump into this one: phases are matched by name,
    /// unseen phases are appended in the other dump's order.
    pub fn merge(&mut self, other: &ProfDump) {
        for phase in &other.phases {
            match self.phases.iter_mut().find(|p| p.name == phase.name) {
                Some(mine) => {
                    mine.calls += phase.calls;
                    mine.total += phase.total;
                    if phase.max > mine.max {
                        mine.max = phase.max;
                    }
                }
                None => self.phases.push(phase.clone()),
            }
        }
    }
}

/// A lap clock over a contiguous run of instrumented regions.
///
/// Started once at the top of the hot section, it attributes the time
/// since the previous boundary to whatever phase just finished — so the
/// per-phase laps tile the section end to end and their sum tracks the
/// section's total wall-time to within clock-read overhead. Started
/// disabled, every call is a `None` branch.
#[derive(Debug, Clone, Copy)]
pub struct LapTimer {
    started: Option<Instant>,
    last: Option<Instant>,
}

impl LapTimer {
    /// Marks the section start. With `enabled = false` the timer is
    /// inert and never reads the clock.
    #[inline]
    pub fn start(enabled: bool) -> Self {
        if enabled {
            let now = Instant::now();
            LapTimer {
                started: Some(now),
                last: Some(now),
            }
        } else {
            LapTimer {
                started: None,
                last: None,
            }
        }
    }

    /// Ends the current lap, returning its duration and starting the
    /// next one. Inert timers return `None`.
    #[inline]
    pub fn lap(&mut self) -> Option<Duration> {
        let last = self.last?;
        let now = Instant::now();
        self.last = Some(now);
        Some(now - last)
    }

    /// Elapsed time since the section start. Inert timers return `None`.
    #[inline]
    pub fn total(&self) -> Option<Duration> {
        self.started.map(|s| s.elapsed())
    }
}

/// The throughput accountant: how much simulated work one wall-clock
/// second buys. "Units" are whatever the caller scales by — the cluster
/// simulator accounts *rack*-seconds (racks × simulated seconds), the
/// number the CI gate tracks as rack-hours per wall-second.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Simulated unit-seconds accumulated (e.g. rack-seconds).
    pub unit_seconds: f64,
    /// Hot-loop steps executed.
    pub steps: u64,
    /// Wall-clock time spent producing them.
    pub wall: Duration,
}

impl Throughput {
    /// Simulated unit-seconds per wall-clock second (0 when no wall
    /// time was measured).
    pub fn unit_seconds_per_wall_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.unit_seconds / secs
        } else {
            0.0
        }
    }

    /// Simulated unit-hours per wall-clock second.
    pub fn unit_hours_per_wall_second(&self) -> f64 {
        self.unit_seconds_per_wall_second() / 3600.0
    }

    /// Steps per wall-clock second (0 when no wall time was measured).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_profiler_records_nothing() {
        let mut prof = Profiler::null();
        let id = prof.register("p");
        prof.add(id, Duration::from_millis(5));
        assert_eq!(prof.stats(id).calls, 0);
        assert!(!prof.enabled());
    }

    #[test]
    fn live_profiler_aggregates_count_total_max() {
        let mut prof = Profiler::live();
        let id = prof.register("p");
        prof.add(id, Duration::from_millis(2));
        prof.add(id, Duration::from_millis(5));
        prof.add(id, Duration::from_millis(1));
        let s = prof.stats(id);
        assert_eq!(s.calls, 3);
        assert_eq!(s.total, Duration::from_millis(8));
        assert_eq!(s.max, Duration::from_millis(5));
        assert_eq!(s.mean(), Duration::from_millis(8) / 3);
    }

    #[test]
    fn registration_interns_and_preserves_order() {
        let mut prof = Profiler::live();
        let a = prof.register("a");
        let b = prof.register("b");
        assert_eq!(prof.register("a"), a);
        assert_eq!((a.0, b.0), (0, 1));
        let dump = prof.into_dump();
        assert_eq!(dump.phases[0].name, "a");
        assert_eq!(dump.phases[1].name, "b");
    }

    #[test]
    fn inert_lap_timer_never_reads_the_clock() {
        let mut lap = LapTimer::start(false);
        assert_eq!(lap.lap(), None);
        assert_eq!(lap.total(), None);
    }

    #[test]
    fn laps_tile_the_section() {
        let mut prof = Profiler::live();
        let a = prof.register("a");
        let b = prof.register("b");
        let mut lap = LapTimer::start(true);
        std::thread::sleep(Duration::from_millis(2));
        let d = lap.lap().unwrap();
        prof.add(a, d);
        std::thread::sleep(Duration::from_millis(2));
        prof.add(b, lap.lap().unwrap());
        let total = lap.total().unwrap();
        let dump = prof.into_dump();
        let sum: Duration = dump.phases.iter().map(|p| p.total).sum();
        assert!(sum <= total);
        // The laps tile the section: the untimed gap is clock-read noise.
        assert!(total - sum < Duration::from_millis(2), "{total:?} {sum:?}");
    }

    #[test]
    fn dump_merge_matches_by_name_and_appends_unknown() {
        let mut a = ProfDump {
            phases: vec![PhaseProfile {
                name: "x".into(),
                calls: 1,
                total: Duration::from_millis(3),
                max: Duration::from_millis(3),
            }],
        };
        let b = ProfDump {
            phases: vec![
                PhaseProfile {
                    name: "x".into(),
                    calls: 2,
                    total: Duration::from_millis(4),
                    max: Duration::from_millis(4),
                },
                PhaseProfile {
                    name: "y".into(),
                    calls: 1,
                    total: Duration::from_millis(1),
                    max: Duration::from_millis(1),
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.phases.len(), 2);
        let x = a.get("x").unwrap();
        assert_eq!(x.calls, 3);
        assert_eq!(x.total, Duration::from_millis(7));
        assert_eq!(x.max, Duration::from_millis(4));
        assert_eq!(a.get("y").unwrap().calls, 1);
    }

    #[test]
    fn throughput_accounting() {
        let t = Throughput {
            unit_seconds: 7200.0,
            steps: 100,
            wall: Duration::from_secs(2),
        };
        assert_eq!(t.unit_seconds_per_wall_second(), 3600.0);
        assert_eq!(t.unit_hours_per_wall_second(), 1.0);
        assert_eq!(t.steps_per_second(), 50.0);
        assert_eq!(Throughput::default().unit_seconds_per_wall_second(), 0.0);
    }
}
