//! Streaming anomaly detectors over telemetry streams.
//!
//! Interval metering misses hidden power spikes (the paper's Table I):
//! a 1-second spike averaged into a 5-minute energy window moves the
//! window mean by well under the measurement noise. This module provides
//! the *online* alternative: allocation-light detectors that consume the
//! per-tick telemetry stream sample-by-sample and raise a verdict the
//! moment a sample (or a short run of samples) is inconsistent with the
//! learned baseline.
//!
//! Four detector families cover the signals a power attack distorts:
//!
//! * [`EwmaZScore`] — exponentially-weighted baseline + residual
//!   z-score; catches individual amplitude spikes on draw gauges.
//! * [`Cusum`] — two-sided cumulative-sum change-point statistic over a
//!   frozen calibration baseline; catches small sustained shifts (Phase-I
//!   drain loads, µDEB shave activity) that no single sample reveals.
//! * [`SpikeTrainDetector`] — rising-edge spike events collected in a
//!   time-windowed ring buffer; fires on spike *cadence* (the Phase-II
//!   train), and exposes inter-arrival/amplitude statistics.
//! * [`DrainRateDetector`] — windowed state-of-charge slope estimator;
//!   fires when SOC falls faster than any benign discharge would.
//!
//! Every detector implements [`StreamDetector`]: `push(t, value)`
//! returns a [`Verdict`] whose `score` is normalized so `score >= 1.0`
//! means *fired*. A [`DetectorBank`] subscribes detectors to
//! [`MetricId`]s and consumes a record stream either live (in-sim, via
//! [`DetectorBank::observe`]) or offline (replayed from the JSONL/CSV
//! wire format via [`DetectorBank::replay`]); because detector state
//! advances only on that stream and trace values round-trip bit-exactly
//! through the codec, the live and replayed verdict sequences are
//! byte-identical.
//!
//! # Example
//!
//! ```
//! use simkit::detect::{Detector, DetectorBank, EwmaZScore};
//! use simkit::telemetry::MetricRegistry;
//! use simkit::time::SimTime;
//!
//! let mut reg = MetricRegistry::new();
//! let draw = reg.register_gauge("rack-00.draw_w");
//! let mut bank = DetectorBank::new(1);
//! bank.subscribe(draw, "rack-00.ewma", Detector::Ewma(EwmaZScore::new(0.05, 5.0)));
//! for i in 0..100 {
//!     bank.observe(SimTime::from_millis(i * 100), draw, 500.0 + (i % 3) as f64);
//! }
//! assert!(!bank.fused().fired, "steady draw stays quiet");
//! bank.observe(SimTime::from_secs(10), draw, 1500.0);
//! assert!(bank.fused().fired, "a 3x spike fires");
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::jsonio::{write_f64, Json, ObjFields};
use crate::log::Severity;
use crate::stats::OnlineStats;
use crate::telemetry::codec::ParsedRecord;
use crate::telemetry::{MetricId, MetricRegistry};
use crate::time::{SimDuration, SimTime};

/// One detector's judgement of the stream after a sample.
///
/// `score` is normalized to the detector's firing threshold: `1.0` sits
/// exactly on the threshold, and [`Verdict::fired`] is `score >= 1.0`.
/// Scores are comparable across detector families, which is what lets a
/// [`DetectorBank`] fuse them by maximum.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Verdict {
    /// Threshold-normalized anomaly score (`>= 0`, unbounded above).
    pub score: f64,
    /// `true` when the score is at or above the firing threshold.
    pub fired: bool,
}

impl Verdict {
    /// A quiet verdict (zero score, not fired).
    pub const QUIET: Verdict = Verdict {
        score: 0.0,
        fired: false,
    };

    /// Builds a verdict from a normalized score.
    pub fn from_score(score: f64) -> Verdict {
        Verdict {
            score,
            fired: score >= 1.0,
        }
    }
}

/// An online detector consuming one metric's sample stream.
pub trait StreamDetector {
    /// Feeds one observation and returns the updated verdict.
    ///
    /// Timestamps must be non-decreasing; detectors use them only for
    /// windowing, never for wall-clock behaviour, so replaying a
    /// recorded stream reproduces the live verdict sequence exactly.
    fn push(&mut self, t: SimTime, value: f64) -> Verdict;

    /// Forgets all learned state, returning to the just-built state.
    fn reset(&mut self);
}

/// EWMA baseline + residual z-score detector.
///
/// Tracks an exponentially-weighted mean and variance of the stream and
/// scores each sample by its absolute z-score against that baseline.
/// While fired, the baseline is frozen so a sustained excursion keeps
/// firing instead of teaching the detector that spikes are normal.
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaZScore {
    alpha: f64,
    threshold: f64,
    warmup: u64,
    min_std: f64,
    seen: u64,
    mean: f64,
    var: f64,
}

impl EwmaZScore {
    /// Creates a detector with smoothing factor `alpha` and a firing
    /// threshold of `threshold` standard deviations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1` and `threshold > 0`.
    pub fn new(alpha: f64, threshold: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(threshold > 0.0, "threshold must be positive");
        EwmaZScore {
            alpha,
            threshold,
            warmup: 20,
            min_std: 1e-9,
            seen: 0,
            mean: 0.0,
            var: 0.0,
        }
    }

    /// Sets how many leading samples train the baseline silently
    /// (default 20).
    pub fn with_warmup(mut self, samples: u64) -> Self {
        self.warmup = samples;
        self
    }

    /// Floors the baseline standard deviation, so a near-constant
    /// calibration stream does not make every later wiggle a huge
    /// z-score. The floor is in the metric's own units.
    ///
    /// # Panics
    ///
    /// Panics if `min_std` is not positive.
    pub fn with_min_std(mut self, min_std: f64) -> Self {
        assert!(min_std > 0.0, "min_std must be positive");
        self.min_std = min_std;
        self
    }

    /// The firing threshold, in standard deviations.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The current baseline mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    fn learn(&mut self, value: f64) {
        if self.seen == 1 {
            self.mean = value;
            self.var = 0.0;
            return;
        }
        let diff = value - self.mean;
        let incr = self.alpha * diff;
        self.mean += incr;
        self.var = (1.0 - self.alpha) * (self.var + diff * incr);
    }
}

impl StreamDetector for EwmaZScore {
    fn push(&mut self, _t: SimTime, value: f64) -> Verdict {
        if !value.is_finite() {
            return Verdict::QUIET;
        }
        self.seen += 1;
        if self.seen <= self.warmup {
            self.learn(value);
            return Verdict::QUIET;
        }
        let std = self.var.sqrt().max(self.min_std);
        let z = (value - self.mean).abs() / std;
        let verdict = Verdict::from_score(z / self.threshold);
        if !verdict.fired {
            self.learn(value);
        }
        verdict
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.mean = 0.0;
        self.var = 0.0;
    }
}

/// Two-sided CUSUM change-point detector.
///
/// Calibrates mean/σ over a warmup prefix, freezes that baseline, then
/// accumulates `max(0, Σ(±z - drift))` in both directions. Small
/// sustained shifts that never trip a per-sample z-test accumulate here;
/// zero-mean noise is absorbed by the drift term. On a constant input
/// stream every post-warmup z-score is 0, so the statistic never leaves
/// 0 and the detector provably never fires.
#[derive(Debug, Clone, PartialEq)]
pub struct Cusum {
    drift: f64,
    threshold: f64,
    warmup: u64,
    min_std: f64,
    baseline: OnlineStats,
    pos: f64,
    neg: f64,
}

impl Cusum {
    /// Creates a detector with per-sample slack `drift` (in σ units) and
    /// accumulated-sum firing threshold `threshold` (in σ·samples).
    ///
    /// # Panics
    ///
    /// Panics unless `drift > 0` and `threshold > 0`.
    pub fn new(drift: f64, threshold: f64) -> Self {
        assert!(drift > 0.0, "drift must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        Cusum {
            drift,
            threshold,
            warmup: 50,
            min_std: 1e-9,
            baseline: OnlineStats::new(),
            pos: 0.0,
            neg: 0.0,
        }
    }

    /// Sets the calibration prefix length in samples (default 50,
    /// minimum 1).
    pub fn with_warmup(mut self, samples: u64) -> Self {
        self.warmup = samples.max(1);
        self
    }

    /// Floors the calibrated standard deviation (metric units).
    ///
    /// # Panics
    ///
    /// Panics if `min_std` is not positive.
    pub fn with_min_std(mut self, min_std: f64) -> Self {
        assert!(min_std > 0.0, "min_std must be positive");
        self.min_std = min_std;
        self
    }

    /// The accumulated positive-direction statistic (σ·samples).
    pub fn positive_sum(&self) -> f64 {
        self.pos
    }
}

impl StreamDetector for Cusum {
    fn push(&mut self, _t: SimTime, value: f64) -> Verdict {
        if !value.is_finite() {
            return Verdict::QUIET;
        }
        if self.baseline.count() < self.warmup {
            self.baseline.push(value);
            return Verdict::QUIET;
        }
        let std = self.baseline.population_std_dev().max(self.min_std);
        let z = (value - self.baseline.mean()) / std;
        self.pos = (self.pos + z - self.drift).max(0.0);
        self.neg = (self.neg - z - self.drift).max(0.0);
        Verdict::from_score(self.pos.max(self.neg) / self.threshold)
    }

    fn reset(&mut self) {
        self.baseline = OnlineStats::new();
        self.pos = 0.0;
        self.neg = 0.0;
    }
}

/// Windowed spike-train detector.
///
/// Detects individual spikes as rising edges of the z-score against an
/// internal EWMA baseline, stores `(time, amplitude)` of each spike in a
/// bounded ring buffer, and fires when at least `min_spikes` spikes land
/// inside the trailing window — the signature of a Phase-II hidden spike
/// train, as opposed to a lone benign excursion. Inter-arrival and
/// amplitude statistics over the retained spikes are exposed for
/// reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTrainDetector {
    spike_sigma: f64,
    min_spikes: usize,
    window: SimDuration,
    baseline: EwmaZScore,
    above: bool,
    ring: VecDeque<(SimTime, f64)>,
    capacity: usize,
}

impl SpikeTrainDetector {
    /// Creates a detector that looks for `min_spikes` spikes (each a
    /// rising edge past `spike_sigma` standard deviations) within the
    /// trailing `window`.
    ///
    /// # Panics
    ///
    /// Panics unless `spike_sigma > 0`, `min_spikes >= 1` and `window`
    /// is non-zero.
    pub fn new(spike_sigma: f64, min_spikes: usize, window: SimDuration) -> Self {
        assert!(spike_sigma > 0.0, "spike_sigma must be positive");
        assert!(min_spikes >= 1, "min_spikes must be at least 1");
        assert!(!window.is_zero(), "window must be non-zero");
        let capacity = (min_spikes * 4).max(32);
        SpikeTrainDetector {
            spike_sigma,
            min_spikes,
            window,
            baseline: EwmaZScore::new(0.05, spike_sigma),
            above: false,
            ring: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Sets the internal baseline's smoothing factor (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.baseline = EwmaZScore::new(alpha, self.spike_sigma)
            .with_warmup(20)
            .with_min_std(self.baseline.min_std);
        self
    }

    /// Floors the baseline standard deviation (metric units).
    ///
    /// # Panics
    ///
    /// Panics if `min_std` is not positive.
    pub fn with_min_std(mut self, min_std: f64) -> Self {
        self.baseline = self.baseline.clone().with_min_std(min_std);
        self
    }

    /// Number of spikes currently retained in the window.
    pub fn spike_count(&self) -> usize {
        self.ring.len()
    }

    /// Mean gap between consecutive retained spikes, in milliseconds
    /// (`None` with fewer than two spikes).
    pub fn mean_interval_ms(&self) -> Option<f64> {
        if self.ring.len() < 2 {
            return None;
        }
        let gaps = self.ring.len() - 1;
        let span = self
            .ring
            .back()
            .expect("non-empty")
            .0
            .saturating_since(self.ring.front().expect("non-empty").0);
        Some(span.as_millis() as f64 / gaps as f64)
    }

    /// Mean amplitude of the retained spikes (`None` when empty).
    pub fn mean_amplitude(&self) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        Some(self.ring.iter().map(|&(_, a)| a).sum::<f64>() / self.ring.len() as f64)
    }

    fn evict(&mut self, now: SimTime) {
        let horizon = now - self.window;
        while self.ring.front().is_some_and(|&(t, _)| t < horizon) {
            self.ring.pop_front();
        }
    }
}

impl StreamDetector for SpikeTrainDetector {
    fn push(&mut self, t: SimTime, value: f64) -> Verdict {
        let sample = self.baseline.push(t, value);
        let above = sample.fired;
        if above && !self.above {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back((t, value));
        }
        self.above = above;
        self.evict(t);
        Verdict::from_score(self.ring.len() as f64 / self.min_spikes as f64)
    }

    fn reset(&mut self) {
        self.baseline.reset();
        self.above = false;
        self.ring.clear();
    }
}

/// Windowed state-of-charge drain-rate estimator.
///
/// Retains sparse `(time, soc)` checkpoints across the trailing window
/// and scores the SOC slope between the oldest and newest checkpoint
/// against a maximum benign drain rate (SOC fraction per hour). A flat
/// or charging battery scores 0; a Phase-I forced discharge empties a
/// UPS string in minutes and scores far past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainRateDetector {
    threshold_per_hour: f64,
    window: SimDuration,
    spacing: SimDuration,
    ring: VecDeque<(SimTime, f64)>,
    last_push: Option<SimTime>,
}

impl DrainRateDetector {
    /// Number of checkpoints retained across the window.
    const CHECKPOINTS: usize = 32;

    /// Creates a detector firing when SOC drops faster than
    /// `threshold_per_hour` (fraction of full charge per hour) measured
    /// across the trailing `window`.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold_per_hour > 0` and `window` is non-zero.
    pub fn new(threshold_per_hour: f64, window: SimDuration) -> Self {
        assert!(threshold_per_hour > 0.0, "threshold must be positive");
        assert!(!window.is_zero(), "window must be non-zero");
        let spacing =
            SimDuration::from_millis((window.as_millis() / Self::CHECKPOINTS as u64).max(1));
        DrainRateDetector {
            threshold_per_hour,
            window,
            spacing,
            ring: VecDeque::with_capacity(Self::CHECKPOINTS + 1),
            last_push: None,
        }
    }

    /// The latest estimated drain rate (SOC fraction per hour; negative
    /// while charging, 0 with fewer than two checkpoints).
    pub fn rate_per_hour(&self) -> f64 {
        let (Some(&(t0, s0)), Some(&(t1, s1))) = (self.ring.front(), self.ring.back()) else {
            return 0.0;
        };
        let dt = t1.saturating_since(t0);
        if dt.is_zero() {
            return 0.0;
        }
        (s0 - s1) / dt.as_hours_f64()
    }
}

impl StreamDetector for DrainRateDetector {
    fn push(&mut self, t: SimTime, value: f64) -> Verdict {
        if !value.is_finite() {
            return Verdict::QUIET;
        }
        let due = self
            .last_push
            .is_none_or(|last| t.saturating_since(last) >= self.spacing);
        if due {
            self.ring.push_back((t, value));
            self.last_push = Some(t);
        }
        let horizon = t - self.window;
        while self.ring.len() > 1 && self.ring.front().is_some_and(|&(pt, _)| pt < horizon) {
            self.ring.pop_front();
        }
        // Require at least a quarter-window of history so a single pair
        // of adjacent noisy samples cannot fabricate a huge slope.
        let span = match (self.ring.front(), self.ring.back()) {
            (Some(&(t0, _)), Some(&(t1, _))) => t1.saturating_since(t0),
            _ => SimDuration::ZERO,
        };
        if span < self.window / 4 {
            return Verdict::QUIET;
        }
        Verdict::from_score((self.rate_per_hour() / self.threshold_per_hour).max(0.0))
    }

    fn reset(&mut self) {
        self.ring.clear();
        self.last_push = None;
    }
}

/// The concrete detector set a [`DetectorBank`] can hold.
///
/// Simulation state must be `Clone` (the sweep engine clones warmed
/// simulators per scenario), which rules out `Box<dyn StreamDetector>`
/// subscriptions; this enum is the concrete closed set, mirroring
/// [`TelemetrySink`](crate::telemetry::TelemetrySink).
#[derive(Debug, Clone, PartialEq)]
pub enum Detector {
    /// EWMA baseline + residual z-score.
    Ewma(EwmaZScore),
    /// Two-sided CUSUM change-point.
    Cusum(Cusum),
    /// Windowed spike-train cadence.
    SpikeTrain(SpikeTrainDetector),
    /// Windowed SOC drain rate.
    DrainRate(DrainRateDetector),
}

impl Detector {
    /// Short family name for rendering (`ewma`, `cusum`, `spike_train`,
    /// `drain_rate`).
    pub fn family(&self) -> &'static str {
        match self {
            Detector::Ewma(_) => "ewma",
            Detector::Cusum(_) => "cusum",
            Detector::SpikeTrain(_) => "spike_train",
            Detector::DrainRate(_) => "drain_rate",
        }
    }
}

impl StreamDetector for Detector {
    fn push(&mut self, t: SimTime, value: f64) -> Verdict {
        match self {
            Detector::Ewma(d) => d.push(t, value),
            Detector::Cusum(d) => d.push(t, value),
            Detector::SpikeTrain(d) => d.push(t, value),
            Detector::DrainRate(d) => d.push(t, value),
        }
    }

    fn reset(&mut self) {
        match self {
            Detector::Ewma(d) => d.reset(),
            Detector::Cusum(d) => d.reset(),
            Detector::SpikeTrain(d) => d.reset(),
            Detector::DrainRate(d) => d.reset(),
        }
    }
}

/// One detector wired to one metric inside a [`DetectorBank`].
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    metric: MetricId,
    label: String,
    detector: Detector,
    last: Verdict,
    fires: u64,
    first_fire: Option<SimTime>,
}

impl Subscription {
    /// The metric this subscription consumes.
    pub fn metric(&self) -> MetricId {
        self.metric
    }

    /// The subscription's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The detector (for family/diagnostic accessors).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The verdict after the most recent sample.
    pub fn last(&self) -> Verdict {
        self.last
    }

    /// How many rising edges (quiet → fired) this detector produced.
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// When the detector first fired, if it has.
    pub fn first_fire(&self) -> Option<SimTime> {
        self.first_fire
    }
}

/// One detector's rising edge, as recorded by a [`DetectorBank`].
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// When the detector fired.
    pub time: SimTime,
    /// The subscription's label.
    pub label: String,
    /// The verdict score at the firing sample.
    pub score: f64,
}

/// The bank's combined judgement across all subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FusedVerdict {
    /// Maximum score over all subscriptions' latest verdicts.
    pub score: f64,
    /// How many subscriptions are currently fired.
    pub votes: usize,
    /// `true` when at least the bank's vote quorum is fired.
    pub fired: bool,
}

impl FusedVerdict {
    /// Maps fused strength to an event-log severity: quiet verdicts are
    /// informational, a fired quorum is a warning, and `confirm_votes`
    /// or more concurring detectors are critical — the mapping
    /// `padsim inspect` surfaces next to battery/breaker events.
    pub fn severity(&self, confirm_votes: usize) -> Severity {
        if self.fired && self.votes >= confirm_votes {
            Severity::Critical
        } else if self.fired {
            Severity::Warning
        } else {
            Severity::Info
        }
    }
}

/// A set of detectors subscribed to metrics, consuming one record
/// stream.
///
/// The bank is the unit both execution modes share: the simulator feeds
/// it gauge-by-gauge as it emits telemetry, and the offline path feeds
/// it the parsed wire records. Feeding order within a tick follows
/// metric registration order in both modes, so firing logs line up
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorBank {
    subs: Vec<Subscription>,
    min_votes: usize,
    firings: Vec<Firing>,
}

impl DetectorBank {
    /// Creates an empty bank whose fused verdict fires once `min_votes`
    /// subscriptions are fired simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `min_votes` is zero.
    pub fn new(min_votes: usize) -> Self {
        assert!(min_votes >= 1, "min_votes must be at least 1");
        DetectorBank {
            subs: Vec::new(),
            min_votes,
            firings: Vec::new(),
        }
    }

    /// Subscribes `detector` to `metric` under a display `label`.
    pub fn subscribe(&mut self, metric: MetricId, label: impl Into<String>, detector: Detector) {
        self.subs.push(Subscription {
            metric,
            label: label.into(),
            detector,
            last: Verdict::QUIET,
            fires: 0,
            first_fire: None,
        });
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` when nothing is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The vote quorum for the fused verdict.
    pub fn min_votes(&self) -> usize {
        self.min_votes
    }

    /// The subscriptions, in subscription order.
    pub fn subscriptions(&self) -> impl ExactSizeIterator<Item = &Subscription> {
        self.subs.iter()
    }

    /// Feeds one sample to every subscription on `metric`.
    pub fn observe(&mut self, t: SimTime, metric: MetricId, value: f64) {
        for sub in self.subs.iter_mut().filter(|s| s.metric == metric) {
            let verdict = sub.detector.push(t, value);
            if verdict.fired && !sub.last.fired {
                sub.fires += 1;
                sub.first_fire.get_or_insert(t);
                self.firings.push(Firing {
                    time: t,
                    label: sub.label.clone(),
                    score: verdict.score,
                });
            }
            sub.last = verdict;
        }
    }

    /// The combined verdict over every subscription's latest state.
    pub fn fused(&self) -> FusedVerdict {
        let score = self
            .subs
            .iter()
            .map(|s| s.last.score)
            .fold(0.0_f64, f64::max);
        let votes = self.subs.iter().filter(|s| s.last.fired).count();
        FusedVerdict {
            score,
            votes,
            fired: votes >= self.min_votes,
        }
    }

    /// Every rising edge recorded so far, in stream order.
    pub fn firings(&self) -> &[Firing] {
        &self.firings
    }

    /// Renders the firing log as one `time_ms label score` line per
    /// rising edge — the byte-comparable determinism artifact (scores
    /// use Rust's shortest-round-trip `f64` formatting, like the wire
    /// codec).
    pub fn render_firings(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.firings {
            let _ = writeln!(out, "{} {} {}", f.time.as_millis(), f.label, f.score);
        }
        out
    }

    /// Replays a parsed trace through the bank: samples resolve through
    /// `registry` by name (metric ids do not survive serialization) and
    /// unknown metrics and events are skipped. Records must already be
    /// in canonical order — the codec writes them that way. Returns the
    /// number of samples consumed.
    pub fn replay(&mut self, records: &[ParsedRecord], registry: &MetricRegistry) -> usize {
        let mut consumed = 0;
        for r in records {
            if r.is_event {
                continue;
            }
            if let Some(id) = registry.id(&r.name) {
                self.observe(SimTime::from_millis(r.time_ms), id, r.value);
                consumed += 1;
            }
        }
        consumed
    }

    /// Resets every detector and clears the firing log.
    pub fn reset(&mut self) {
        for sub in &mut self.subs {
            sub.detector.reset();
            sub.last = Verdict::QUIET;
            sub.fires = 0;
            sub.first_fire = None;
        }
        self.firings.clear();
    }
}

// ---------------------------------------------------------------------------
// Snapshot / restore
//
// Checkpoints carry only *value* state: configuration (thresholds,
// windows, labels, quorum) is structural and rebuilt by re-running the
// construction code, then validated against the snapshot on restore.
// Welford accumulators and EWMA variances are written verbatim — they
// are order-dependent, so re-deriving them would break the bit-exact
// recovery contract.

/// Serializes a `(time, value)` ring as `[[t_ms,v],...]`.
fn write_ring(out: &mut String, ring: &VecDeque<(SimTime, f64)>) {
    out.push('[');
    for (i, &(t, v)) in ring.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},", t.as_millis());
        write_f64(out, v);
        out.push(']');
    }
    out.push(']');
}

/// Parses [`write_ring`] output back into a ring.
fn read_ring(items: &[Json], what: &str) -> Result<VecDeque<(SimTime, f64)>, String> {
    let mut ring = VecDeque::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let pair = item.as_array(&format!("{what}[{i}]"))?;
        if pair.len() != 2 {
            return Err(format!("{what}[{i}] must be a [t_ms, value] pair"));
        }
        let t = pair[0].as_u64(&format!("{what}[{i}] time"))?;
        let v = pair[1].as_f64(&format!("{what}[{i}] value"))?;
        ring.push_back((SimTime::from_millis(t), v));
    }
    Ok(ring)
}

impl EwmaZScore {
    /// Serializes the learned baseline (exact bits; config is not
    /// included — it is validated structurally by the caller).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seen\":{},\"mean\":", self.seen);
        write_f64(&mut out, self.mean);
        out.push_str(",\"var\":");
        write_f64(&mut out, self.var);
        out.push('}');
        out
    }

    /// Restores the learned baseline from a parsed snapshot.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("ewma snapshot")?;
        self.seen = obj.u64_field("seen")?;
        self.mean = obj.f64_field_lossy("mean")?;
        self.var = obj.f64_field_lossy("var")?;
        Ok(())
    }
}

impl Cusum {
    /// Serializes the calibration baseline and both accumulated sums.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"baseline\":");
        out.push_str(&self.baseline.snapshot_json());
        out.push_str(",\"pos\":");
        write_f64(&mut out, self.pos);
        out.push_str(",\"neg\":");
        write_f64(&mut out, self.neg);
        out.push('}');
        out
    }

    /// Restores the baseline and accumulators from a parsed snapshot.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("cusum snapshot")?;
        self.baseline = OnlineStats::from_snapshot(obj.field("baseline")?)?;
        self.pos = obj.f64_field_lossy("pos")?;
        self.neg = obj.f64_field_lossy("neg")?;
        Ok(())
    }
}

impl SpikeTrainDetector {
    /// Serializes the internal baseline, edge state and spike ring.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"baseline\":");
        out.push_str(&self.baseline.snapshot_json());
        let _ = write!(out, ",\"above\":{},\"ring\":", u8::from(self.above));
        write_ring(&mut out, &self.ring);
        out.push('}');
        out
    }

    /// Restores baseline, edge state and spike ring from a snapshot.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("spike_train snapshot")?;
        self.baseline.restore_snapshot(obj.field("baseline")?)?;
        self.above = obj.u64_field("above")? != 0;
        let ring = read_ring(obj.arr_field("ring")?, "spike_train ring")?;
        if ring.len() > self.capacity {
            return Err(format!(
                "spike_train ring has {} entries, capacity is {}",
                ring.len(),
                self.capacity
            ));
        }
        self.ring = ring;
        Ok(())
    }
}

impl DrainRateDetector {
    /// Serializes the checkpoint ring; `last_push` is present only when
    /// at least one sample was accepted.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"ring\":");
        write_ring(&mut out, &self.ring);
        if let Some(t) = self.last_push {
            let _ = write!(out, ",\"last_push\":{}", t.as_millis());
        }
        out.push('}');
        out
    }

    /// Restores the checkpoint ring from a snapshot.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("drain_rate snapshot")?;
        self.ring = read_ring(obj.arr_field("ring")?, "drain_rate ring")?;
        self.last_push = obj.opt_u64_field("last_push")?.map(SimTime::from_millis);
        Ok(())
    }
}

impl Detector {
    /// Serializes this detector's value state, tagged by family.
    pub fn snapshot_json(&self) -> String {
        let state = match self {
            Detector::Ewma(d) => d.snapshot_json(),
            Detector::Cusum(d) => d.snapshot_json(),
            Detector::SpikeTrain(d) => d.snapshot_json(),
            Detector::DrainRate(d) => d.snapshot_json(),
        };
        format!("{{\"family\":\"{}\",\"state\":{state}}}", self.family())
    }

    /// Restores value state, rejecting a snapshot from a different
    /// detector family (structure must match the snapshot).
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("detector snapshot")?;
        let family = obj.str_field("family")?;
        if family != self.family() {
            return Err(format!(
                "detector family mismatch: snapshot has {family:?}, detector is {:?}",
                self.family()
            ));
        }
        let state = obj.field("state")?;
        match self {
            Detector::Ewma(d) => d.restore_snapshot(state),
            Detector::Cusum(d) => d.restore_snapshot(state),
            Detector::SpikeTrain(d) => d.restore_snapshot(state),
            Detector::DrainRate(d) => d.restore_snapshot(state),
        }
    }
}

impl DetectorBank {
    /// Serializes the bank: quorum and per-subscription identity for
    /// structural validation, every detector's value state, and the
    /// firing log (the byte-comparable artifact).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"min_votes\":{},\"subs\":[", self.min_votes);
        for (i, sub) in self.subs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"label\":\"{}\",\"last_score\":", sub.label);
            write_f64(&mut out, sub.last.score);
            let _ = write!(
                out,
                ",\"last_fired\":{},\"fires\":{}",
                u8::from(sub.last.fired),
                sub.fires
            );
            if let Some(t) = sub.first_fire {
                let _ = write!(out, ",\"first_fire\":{}", t.as_millis());
            }
            out.push_str(",\"detector\":");
            out.push_str(&sub.detector.snapshot_json());
            out.push('}');
        }
        out.push_str("],\"firings\":[");
        for (i, f) in self.firings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t\":{},\"label\":\"{}\",\"score\":",
                f.time.as_millis(),
                f.label
            );
            write_f64(&mut out, f.score);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Restores value state into a structurally identical bank: the
    /// snapshot's quorum, subscription count, labels and detector
    /// families must all match this bank's, in order.
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let obj = value.as_object("bank snapshot")?;
        let min_votes = obj.u64_field("min_votes")? as usize;
        if min_votes != self.min_votes {
            return Err(format!(
                "bank min_votes mismatch: snapshot has {min_votes}, bank has {}",
                self.min_votes
            ));
        }
        let subs = obj.arr_field("subs")?;
        if subs.len() != self.subs.len() {
            return Err(format!(
                "bank has {} subscriptions, snapshot has {}",
                self.subs.len(),
                subs.len()
            ));
        }
        for (sub, snap) in self.subs.iter_mut().zip(subs) {
            let sobj = snap.as_object("subscription snapshot")?;
            let label = sobj.str_field("label")?;
            if label != sub.label {
                return Err(format!(
                    "subscription label mismatch: snapshot has {label:?}, bank has {:?}",
                    sub.label
                ));
            }
            sub.detector.restore_snapshot(sobj.field("detector")?)?;
            sub.last = Verdict {
                score: sobj.f64_field_lossy("last_score")?,
                fired: sobj.u64_field("last_fired")? != 0,
            };
            sub.fires = sobj.u64_field("fires")?;
            sub.first_fire = sobj.opt_u64_field("first_fire")?.map(SimTime::from_millis);
        }
        let firings = obj.arr_field("firings")?;
        self.firings.clear();
        for (i, item) in firings.iter().enumerate() {
            let fobj = item.as_object(&format!("firing[{i}]"))?;
            self.firings.push(Firing {
                time: SimTime::from_millis(fobj.u64_field("t")?),
                label: fobj.str_field("label")?.to_string(),
                score: fobj.f64_field_lossy("score")?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(i: u64) -> SimTime {
        SimTime::from_millis(i)
    }

    #[test]
    fn ewma_fires_on_spike_and_freezes_baseline() {
        let mut d = EwmaZScore::new(0.1, 4.0).with_warmup(10).with_min_std(1.0);
        for i in 0..50 {
            let v = 500.0 + if i % 2 == 0 { 2.0 } else { -2.0 };
            assert!(!d.push(ms(i * 100), v).fired, "benign jitter at {i}");
        }
        let hit = d.push(ms(5_000), 900.0);
        assert!(hit.fired, "8σ spike must fire, score {}", hit.score);
        let mean_before = d.mean();
        // The spike must not have been absorbed into the baseline.
        assert!(d.push(ms(5_100), 900.0).fired);
        assert_eq!(d.mean(), mean_before);
        // Recovery: quiet samples resume learning.
        assert!(!d.push(ms(5_200), 501.0).fired);
    }

    #[test]
    fn ewma_is_quiet_on_constant_stream() {
        let mut d = EwmaZScore::new(0.2, 3.0).with_warmup(5);
        for i in 0..1_000 {
            assert!(!d.push(ms(i * 100), 42.0).fired);
        }
    }

    #[test]
    fn cusum_catches_small_sustained_shift() {
        let mut d = Cusum::new(0.5, 8.0).with_warmup(40).with_min_std(0.5);
        for i in 0..40 {
            d.push(ms(i * 100), 100.0 + if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        // +1.5σ shift: never trips a 4σ point test, accumulates here.
        let mut fired_at = None;
        for i in 40..140 {
            if d.push(ms(i * 100), 101.5).fired {
                fired_at = Some(i);
                break;
            }
        }
        assert!(fired_at.is_some(), "sustained shift must accumulate");
    }

    #[test]
    fn cusum_quiet_on_constant_input() {
        let mut d = Cusum::new(0.25, 4.0).with_warmup(1);
        for i in 0..10_000 {
            let v = d.push(ms(i), -17.5);
            assert!(!v.fired && v.score == 0.0, "constant stream at {i}");
        }
    }

    #[test]
    fn spike_train_needs_cadence_not_one_spike() {
        let window = SimDuration::from_secs(120);
        let mut d = SpikeTrainDetector::new(4.0, 2, window).with_min_std(1.0);
        let mut t = 0u64;
        fn feed(d: &mut SpikeTrainDetector, t: &mut u64, v: f64) -> Verdict {
            let verdict = d.push(SimTime::from_millis(*t), v);
            *t += 100;
            verdict
        }
        for _ in 0..100 {
            assert!(!feed(&mut d, &mut t, 500.0).fired);
        }
        // One spike (10 ticks wide): counted, not fired.
        for _ in 0..10 {
            feed(&mut d, &mut t, 900.0);
        }
        assert_eq!(d.spike_count(), 1);
        assert!(!feed(&mut d, &mut t, 500.0).fired);
        // Second spike 30 s later: the train fires.
        for _ in 0..300 {
            feed(&mut d, &mut t, 500.0);
        }
        let mut fired = false;
        for _ in 0..10 {
            fired |= feed(&mut d, &mut t, 900.0).fired;
        }
        assert!(fired, "two spikes inside the window fire");
        assert_eq!(d.spike_count(), 2);
        assert!(d.mean_interval_ms().unwrap() > 29_000.0);
        assert!(d.mean_amplitude().unwrap() > 800.0);
    }

    #[test]
    fn spike_train_forgets_old_spikes() {
        let window = SimDuration::from_secs(10);
        let mut d = SpikeTrainDetector::new(4.0, 2, window).with_min_std(1.0);
        for i in 0..100 {
            d.push(ms(i * 100), 500.0);
        }
        d.push(ms(10_000), 900.0);
        assert_eq!(d.spike_count(), 1);
        // 11 s of quiet: the spike ages out of the window.
        for i in 0..110 {
            d.push(ms(10_100 + i * 100), 500.0);
        }
        assert_eq!(d.spike_count(), 0);
    }

    #[test]
    fn drain_rate_scores_fast_discharge_only() {
        let window = SimDuration::from_secs(60);
        let mut d = DrainRateDetector::new(2.0, window);
        // Constant SOC for 2 minutes: quiet.
        for i in 0..1_200 {
            let v = d.push(ms(i * 100), 0.9);
            assert!(!v.fired && v.score == 0.0);
        }
        // Drain at 0.1%/s = 3.6/hour: nearly double the 2.0 threshold.
        let mut soc = 0.9;
        let mut fired = false;
        for i in 0..600 {
            soc -= 0.0001;
            fired |= d.push(ms(120_000 + i * 100), soc).fired;
        }
        assert!(fired, "fast drain must fire, rate {}", d.rate_per_hour());
        assert!(d.rate_per_hour() > 2.0);
        // Charging back up: once the drain has aged out of the window,
        // the negative rate clamps to score 0.
        for i in 0..1_200 {
            soc = (soc + 0.0001).min(0.95);
            let v = d.push(ms(180_000 + i * 100), soc);
            if i >= 700 {
                assert!(v.score == 0.0, "charging scored {} at {i}", v.score);
            }
        }
    }

    #[test]
    fn bank_fuses_votes_and_records_rising_edges() {
        let mut reg = MetricRegistry::new();
        let draw = reg.register_gauge("rack-00.draw_w");
        let soc = reg.register_gauge("rack-00.soc");
        let mut bank = DetectorBank::new(2);
        bank.subscribe(
            draw,
            "rack-00.draw.ewma",
            Detector::Ewma(EwmaZScore::new(0.1, 4.0).with_warmup(10).with_min_std(1.0)),
        );
        bank.subscribe(
            draw,
            "rack-00.draw.cusum",
            Detector::Cusum(Cusum::new(0.5, 10.0).with_warmup(10).with_min_std(1.0)),
        );
        bank.subscribe(
            soc,
            "rack-00.soc.drain",
            Detector::DrainRate(DrainRateDetector::new(2.0, SimDuration::from_secs(30))),
        );
        for i in 0..60 {
            bank.observe(ms(i * 100), draw, 500.0 + (i % 2) as f64);
            bank.observe(ms(i * 100), soc, 0.9);
        }
        assert!(!bank.fused().fired);
        // A big sustained step: ewma fires instantly, cusum follows.
        let mut fused_fired = false;
        for i in 60..120 {
            bank.observe(ms(i * 100), draw, 1_000.0);
            bank.observe(ms(i * 100), soc, 0.9);
            fused_fired |= bank.fused().fired;
        }
        assert!(fused_fired, "two draw detectors must reach the quorum");
        let fired_labels: Vec<&str> = bank.firings().iter().map(|f| f.label.as_str()).collect();
        assert!(fired_labels.contains(&"rack-00.draw.ewma"));
        assert!(fired_labels.contains(&"rack-00.draw.cusum"));
        let rendered = bank.render_firings();
        assert_eq!(rendered.lines().count(), bank.firings().len());
        assert!(rendered.contains("rack-00.draw.ewma"));
    }

    #[test]
    fn replay_reproduces_live_verdicts() {
        let mut reg = MetricRegistry::new();
        let draw = reg.register_gauge("rack-00.draw_w");
        let build = |reg: &MetricRegistry| {
            let mut bank = DetectorBank::new(1);
            bank.subscribe(
                reg.id("rack-00.draw_w").unwrap(),
                "draw.ewma",
                Detector::Ewma(EwmaZScore::new(0.1, 4.0).with_warmup(10).with_min_std(1.0)),
            );
            bank
        };
        // Live pass, recording the wire trace at the same time.
        let mut live = build(&reg);
        let mut records = Vec::new();
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        for i in 0..400u64 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = (rng_state >> 40) as f64 / (1u64 << 24) as f64 - 0.5;
            let v = 500.0 + 3.0 * noise + if i % 97 == 0 { 400.0 } else { 0.0 };
            let t = ms(i * 100);
            live.observe(t, draw, v);
            records.push(crate::telemetry::Record::Sample(crate::telemetry::Sample {
                time: t,
                metric: draw,
                value: v,
            }));
        }
        assert!(!live.firings().is_empty(), "the periodic surge must fire");
        // Serialize → parse → replay into a fresh bank.
        let wire = crate::telemetry::to_jsonl(&reg, &records);
        let parsed = crate::telemetry::parse(&wire, crate::telemetry::Format::Jsonl).unwrap();
        let mut offline = build(&reg);
        let consumed = offline.replay(&parsed, &reg);
        assert_eq!(consumed, 400);
        assert_eq!(offline.render_firings(), live.render_firings());
        assert_eq!(offline.fused(), live.fused());
    }

    #[test]
    fn fused_severity_maps_strength() {
        let quiet = FusedVerdict::default();
        assert_eq!(quiet.severity(3), Severity::Info);
        let warn = FusedVerdict {
            score: 1.2,
            votes: 2,
            fired: true,
        };
        assert_eq!(warn.severity(3), Severity::Warning);
        let crit = FusedVerdict {
            score: 4.0,
            votes: 3,
            fired: true,
        };
        assert_eq!(crit.severity(3), Severity::Critical);
    }

    #[test]
    #[should_panic(expected = "min_votes")]
    fn bank_rejects_zero_quorum() {
        DetectorBank::new(0);
    }

    #[test]
    fn bank_snapshot_round_trips_mid_stream() {
        let mut reg = MetricRegistry::new();
        let draw = reg.register_gauge("rack-00.draw_w");
        let soc = reg.register_gauge("rack-00.soc");
        let build = |reg: &MetricRegistry| {
            let mut bank = DetectorBank::new(2);
            let draw = reg.id("rack-00.draw_w").unwrap();
            let soc = reg.id("rack-00.soc").unwrap();
            bank.subscribe(
                draw,
                "draw.ewma",
                Detector::Ewma(EwmaZScore::new(0.1, 4.0).with_warmup(10).with_min_std(1.0)),
            );
            bank.subscribe(
                draw,
                "draw.cusum",
                Detector::Cusum(Cusum::new(0.5, 10.0).with_warmup(10).with_min_std(1.0)),
            );
            bank.subscribe(
                draw,
                "draw.spikes",
                Detector::SpikeTrain(
                    SpikeTrainDetector::new(4.0, 2, SimDuration::from_secs(60)).with_min_std(1.0),
                ),
            );
            bank.subscribe(
                soc,
                "soc.drain",
                Detector::DrainRate(DrainRateDetector::new(2.0, SimDuration::from_secs(30))),
            );
            bank
        };
        let feed = |bank: &mut DetectorBank, range: std::ops::Range<u64>| {
            for i in range {
                let surge = if i % 37 == 0 { 400.0 } else { 0.0 };
                bank.observe(ms(i * 100), draw, 500.0 + (i % 3) as f64 + surge);
                bank.observe(ms(i * 100), soc, 0.9 - i as f64 * 0.0002);
            }
        };

        // Uninterrupted reference run.
        let mut full = build(&reg);
        feed(&mut full, 0..300);

        // Interrupted run: snapshot at an arbitrary point, restore into a
        // freshly constructed bank, continue.
        let mut first = build(&reg);
        feed(&mut first, 0..157);
        let snap = first.snapshot_json();
        let doc = crate::jsonio::JsonParser::parse_document(&snap).unwrap();
        let mut resumed = build(&reg);
        resumed.restore_snapshot(&doc).unwrap();
        assert_eq!(resumed, first, "restore must be bit-exact");
        feed(&mut resumed, 157..300);

        assert!(!full.firings().is_empty(), "the stream must fire");
        assert_eq!(resumed.render_firings(), full.render_firings());
        assert_eq!(resumed.fused(), full.fused());
        assert_eq!(resumed, full);
    }

    #[test]
    fn bank_restore_rejects_structural_drift() {
        let mut reg = MetricRegistry::new();
        let draw = reg.register_gauge("d");
        let mut bank = DetectorBank::new(1);
        bank.subscribe(draw, "d.ewma", Detector::Ewma(EwmaZScore::new(0.1, 4.0)));
        let snap = bank.snapshot_json();
        let doc = crate::jsonio::JsonParser::parse_document(&snap).unwrap();

        let mut wrong_label = DetectorBank::new(1);
        wrong_label.subscribe(draw, "other", Detector::Ewma(EwmaZScore::new(0.1, 4.0)));
        assert!(wrong_label
            .restore_snapshot(&doc)
            .unwrap_err()
            .contains("label"));

        let mut wrong_family = DetectorBank::new(1);
        wrong_family.subscribe(draw, "d.ewma", Detector::Cusum(Cusum::new(0.5, 8.0)));
        assert!(wrong_family
            .restore_snapshot(&doc)
            .unwrap_err()
            .contains("family"));

        let mut wrong_quorum = DetectorBank::new(2);
        wrong_quorum.subscribe(draw, "d.ewma", Detector::Ewma(EwmaZScore::new(0.1, 4.0)));
        wrong_quorum.subscribe(draw, "d2", Detector::Ewma(EwmaZScore::new(0.1, 4.0)));
        assert!(wrong_quorum
            .restore_snapshot(&doc)
            .unwrap_err()
            .contains("min_votes"));
    }
}
