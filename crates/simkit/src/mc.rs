//! Bounded exhaustive model checking over small protocol models.
//!
//! A [`McModel`] describes a transition system: an initial state, the
//! actions enabled in each state, and a pure `apply` that produces the
//! successor state. The [`Checker`] explores **every** interleaving of
//! enabled actions up to configurable bounds, deduplicating states by a
//! caller-supplied canonical [fingerprint](McModel::fingerprint) so
//! diamond-shaped interleavings are expanded once.
//!
//! The design follows the dslab-mp style of distributed-system checkers:
//!
//! * **Strategies** — depth-first ([`Strategy::Dfs`], cheap frontier,
//!   deep counterexamples) and breadth-first ([`Strategy::Bfs`],
//!   shortest counterexamples first).
//! * **State hashing** — the model renders each state to a canonical
//!   64-bit fingerprint (see [`Fnv64`]); the visited set prunes revisits
//!   regardless of the path that reached them.
//! * **Pending-event dependency resolution** — models keep their own
//!   pending-message sets and are expected to enumerate actions in a
//!   canonical order (e.g. only the lowest-indexed undecided message per
//!   unit), so commuting deliveries are explored once while genuinely
//!   order-sensitive interleavings remain reachable.
//! * **Pluggable predicates** — [`Property`] values attach named safety
//!   checks (every discovered state) and liveness checks (terminal
//!   states, where no action is enabled) to a run.
//!
//! A violated property yields a [`Violation`] carrying the full action
//! trace from the initial state, suitable for replay through a
//! higher-fidelity simulator.
//!
//! # Example
//!
//! ```
//! use simkit::mc::{Checker, Fnv64, McModel, Property, Strategy};
//!
//! /// A saturating two-bit counter that can step or reset.
//! struct Counter;
//! impl McModel for Counter {
//!     type State = u8;
//!     type Action = &'static str;
//!     fn initial(&self) -> u8 { 0 }
//!     fn actions(&self, s: &u8) -> Vec<&'static str> {
//!         if *s >= 3 { vec![] } else { vec!["inc", "reset"] }
//!     }
//!     fn apply(&self, s: &u8, a: &&'static str) -> u8 {
//!         match *a { "inc" => s + 1, _ => 0 }
//!     }
//!     fn fingerprint(&self, s: &u8) -> u64 {
//!         let mut h = Fnv64::new();
//!         h.write_u8(*s);
//!         h.finish()
//!     }
//!     fn describe(&self, a: &&'static str) -> String { a.to_string() }
//! }
//!
//! let report = Checker::new(Strategy::Bfs).run(
//!     &Counter,
//!     &[Property::safety("bounded", |s: &u8| {
//!         if *s <= 3 { Ok(()) } else { Err(format!("counter at {s}")) }
//!     })],
//! );
//! assert_eq!(report.discovered, 4);
//! assert!(report.violations.is_empty());
//! ```

use std::collections::{HashSet, VecDeque};

/// FNV-1a 64-bit incremental hasher.
///
/// Used for state fingerprints because the algorithm is fully specified
/// and seed-free: the same state renders to the same fingerprint on
/// every platform and every run, which keeps explored-state counts and
/// counterexample traces byte-stable (unlike `DefaultHasher`, whose
/// keys are randomized per process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes a single byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
    }

    /// Mixes an unsigned 64-bit value (little-endian bytes).
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Mixes a `usize` (widened to 64 bits).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Mixes a boolean as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u8(value as u8);
    }

    /// Mixes an `f64` by its bit pattern (`-0.0` and `0.0` hash alike).
    pub fn write_f64(&mut self, value: f64) {
        let bits = if value == 0.0 { 0 } else { value.to_bits() };
        self.write_u64(bits);
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A transition system the checker can explore.
///
/// `apply` must be pure: the successor state may depend only on the
/// given state and action. `actions` must be deterministic and returned
/// in a canonical order — the checker explores them in that order, so a
/// stable order is what makes counterexample traces reproducible.
pub trait McModel {
    /// One global state of the modelled system.
    type State: Clone;
    /// One enabled transition.
    type Action: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All actions enabled in `state`, in canonical order. An empty
    /// vector marks a terminal state (liveness properties are checked
    /// there).
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The successor of `state` under `action` (pure).
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Canonical 64-bit fingerprint of `state` (see [`Fnv64`]). States
    /// with equal fingerprints are treated as identical.
    fn fingerprint(&self, state: &Self::State) -> u64;

    /// Human-readable rendering of `action` for counterexample traces.
    fn describe(&self, action: &Self::Action) -> String;
}

/// When a property is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// Checked on every discovered state.
    Safety,
    /// Checked on terminal states only (no enabled actions).
    Liveness,
}

/// The boxed predicate a [`Property`] evaluates on each state.
type CheckFn<S> = Box<dyn Fn(&S) -> Result<(), String>>;

/// A named predicate over model states. `Ok(())` means the state
/// satisfies the property; `Err(detail)` reports a violation.
pub struct Property<S> {
    /// Property name (used in reports and violation records).
    pub name: String,
    /// Safety (every state) or liveness (terminal states).
    pub kind: PropertyKind,
    check: CheckFn<S>,
}

impl<S> Property<S> {
    /// A safety property: checked on every discovered state.
    pub fn safety(
        name: impl Into<String>,
        check: impl Fn(&S) -> Result<(), String> + 'static,
    ) -> Self {
        Property {
            name: name.into(),
            kind: PropertyKind::Safety,
            check: Box::new(check),
        }
    }

    /// A liveness property: checked on terminal states, where no
    /// further action is enabled.
    pub fn liveness(
        name: impl Into<String>,
        check: impl Fn(&S) -> Result<(), String> + 'static,
    ) -> Self {
        Property {
            name: name.into(),
            kind: PropertyKind::Liveness,
            check: Box::new(check),
        }
    }
}

impl<S> std::fmt::Debug for Property<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Property")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// Exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: cheap frontier, finds deep violations fast.
    Dfs,
    /// Breadth-first: finds a shortest counterexample first.
    Bfs,
}

impl Strategy {
    /// Stable lowercase name (`dfs` / `bfs`).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Dfs => "dfs",
            Strategy::Bfs => "bfs",
        }
    }

    /// Parses [`Strategy::name`] output.
    pub fn from_name(name: &str) -> Option<Strategy> {
        match name {
            "dfs" => Some(Strategy::Dfs),
            "bfs" => Some(Strategy::Bfs),
            _ => None,
        }
    }
}

/// Exploration bounds; exceeding either marks the report truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Maximum states to discover before stopping.
    pub max_states: u64,
    /// Maximum action-trace depth to expand.
    pub max_depth: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_states: 2_000_000,
            max_depth: 10_000,
        }
    }
}

/// One property violation with its full counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// What the predicate reported.
    pub detail: String,
    /// Action descriptions from the initial state to the violating
    /// state, in order.
    pub trace: Vec<String>,
}

impl Violation {
    /// Depth (trace length) of the violating state.
    pub fn depth(&self) -> usize {
        self.trace.len()
    }
}

/// What a checker run found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct McReport {
    /// Unique states discovered (visited-set size).
    pub discovered: u64,
    /// States expanded (popped from the frontier).
    pub expanded: u64,
    /// Revisits avoided by the visited set.
    pub deduped: u64,
    /// Terminal states reached (no enabled action).
    pub terminals: u64,
    /// Deepest expanded trace.
    pub max_depth: usize,
    /// Peak frontier size.
    pub frontier_peak: usize,
    /// `true` when a bound stopped the exploration early.
    pub truncated: bool,
    /// Property violations, in discovery order.
    pub violations: Vec<Violation>,
}

impl McReport {
    /// `true` when every property held over the explored space.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The bounded exhaustive explorer.
#[derive(Debug)]
pub struct Checker {
    strategy: Strategy,
    bounds: Bounds,
    stop_at_first: bool,
}

impl Checker {
    /// A checker with default bounds that stops at the first violation.
    pub fn new(strategy: Strategy) -> Self {
        Checker {
            strategy,
            bounds: Bounds::default(),
            stop_at_first: true,
        }
    }

    /// Overrides the exploration bounds.
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Keep exploring after a violation instead of stopping (collects
    /// every violation the bounds allow).
    pub fn keep_going(mut self) -> Self {
        self.stop_at_first = false;
        self
    }

    /// Explores `model` exhaustively within the bounds, checking every
    /// property, and reports what was found.
    pub fn run<M: McModel>(&self, model: &M, properties: &[Property<M::State>]) -> McReport {
        let mut report = McReport::default();
        // Trace arena: node 0 is the root; every other node records its
        // parent and the action that reached it, so counterexample
        // traces are reconstructed by walking parent links.
        let mut arena: Vec<(usize, String)> = vec![(usize::MAX, String::new())];
        let mut visited: HashSet<u64> = HashSet::new();
        let mut frontier: VecDeque<(M::State, usize, usize)> = VecDeque::new();

        let initial = model.initial();
        visited.insert(model.fingerprint(&initial));
        report.discovered = 1;
        if self.check_state(
            &initial,
            0,
            &arena,
            properties,
            PropertyKind::Safety,
            &mut report,
        ) && self.stop_at_first
        {
            return report;
        }
        frontier.push_back((initial, 0, 0));

        while let Some((state, node, depth)) = match self.strategy {
            Strategy::Dfs => frontier.pop_back(),
            Strategy::Bfs => frontier.pop_front(),
        } {
            report.expanded += 1;
            report.max_depth = report.max_depth.max(depth);
            let actions = model.actions(&state);
            if actions.is_empty() {
                report.terminals += 1;
                if self.check_state(
                    &state,
                    node,
                    &arena,
                    properties,
                    PropertyKind::Liveness,
                    &mut report,
                ) && self.stop_at_first
                {
                    return report;
                }
                continue;
            }
            if depth >= self.bounds.max_depth {
                report.truncated = true;
                continue;
            }
            // DFS pops from the back: push successors in reverse so the
            // first enabled action is expanded first either way.
            let ordered: Vec<&M::Action> = match self.strategy {
                Strategy::Dfs => actions.iter().rev().collect(),
                Strategy::Bfs => actions.iter().collect(),
            };
            for action in ordered {
                let next = model.apply(&state, action);
                let fp = model.fingerprint(&next);
                if !visited.insert(fp) {
                    report.deduped += 1;
                    continue;
                }
                report.discovered += 1;
                arena.push((node, model.describe(action)));
                let next_node = arena.len() - 1;
                if self.check_state(
                    &next,
                    next_node,
                    &arena,
                    properties,
                    PropertyKind::Safety,
                    &mut report,
                ) && self.stop_at_first
                {
                    return report;
                }
                frontier.push_back((next, next_node, depth + 1));
                report.frontier_peak = report.frontier_peak.max(frontier.len());
                if report.discovered >= self.bounds.max_states {
                    report.truncated = true;
                    return report;
                }
            }
        }
        report
    }

    /// Runs every property of `kind` against `state`; returns `true`
    /// if a violation was recorded.
    fn check_state<S>(
        &self,
        state: &S,
        node: usize,
        arena: &[(usize, String)],
        properties: &[Property<S>],
        kind: PropertyKind,
        report: &mut McReport,
    ) -> bool {
        let mut violated = false;
        for property in properties.iter().filter(|p| p.kind == kind) {
            if let Err(detail) = (property.check)(state) {
                report.violations.push(Violation {
                    property: property.name.clone(),
                    detail,
                    trace: trace_to(arena, node),
                });
                violated = true;
            }
        }
        violated
    }
}

/// Reconstructs the root→node action trace from the arena.
fn trace_to(arena: &[(usize, String)], mut node: usize) -> Vec<String> {
    let mut trace = Vec::new();
    while node != 0 {
        let (parent, ref action) = arena[node];
        trace.push(action.clone());
        node = parent;
    }
    trace.reverse();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokens move one at a time from a shared pool to two cells; the
    /// state space is the grid of (cell0, cell1) splits.
    struct TokenGrid {
        tokens: u8,
    }

    impl McModel for TokenGrid {
        type State = (u8, u8);
        type Action = u8;

        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }

        fn actions(&self, s: &(u8, u8)) -> Vec<u8> {
            if s.0 + s.1 >= self.tokens {
                vec![]
            } else {
                vec![0, 1]
            }
        }

        fn apply(&self, s: &(u8, u8), a: &u8) -> (u8, u8) {
            match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            }
        }

        fn fingerprint(&self, s: &(u8, u8)) -> u64 {
            let mut h = Fnv64::new();
            h.write_u8(s.0);
            h.write_u8(s.1);
            h.finish()
        }

        fn describe(&self, a: &u8) -> String {
            format!("cell{a}")
        }
    }

    #[test]
    fn dedup_collapses_commuting_interleavings() {
        // 4 tokens over 2 cells: the reachable states are the lattice
        // points with sum <= 4, i.e. 15 states — not the 2^4 = 16 paths.
        let report = Checker::new(Strategy::Bfs).run(&TokenGrid { tokens: 4 }, &[]);
        assert_eq!(report.discovered, 15);
        assert_eq!(report.terminals, 5, "five ways to split 4 tokens");
        assert!(report.deduped > 0, "diamonds must be pruned");
        assert!(!report.truncated);
        assert_eq!(report.max_depth, 4);
    }

    #[test]
    fn dfs_and_bfs_discover_the_same_space() {
        let dfs = Checker::new(Strategy::Dfs).run(&TokenGrid { tokens: 5 }, &[]);
        let bfs = Checker::new(Strategy::Bfs).run(&TokenGrid { tokens: 5 }, &[]);
        assert_eq!(dfs.discovered, bfs.discovered);
        assert_eq!(dfs.terminals, bfs.terminals);
    }

    #[test]
    fn bfs_finds_a_shortest_counterexample() {
        let bad = Property::safety("cell0-cap", |s: &(u8, u8)| {
            if s.0 < 2 {
                Ok(())
            } else {
                Err(format!("cell0 reached {}", s.0))
            }
        });
        let report = Checker::new(Strategy::Bfs).run(&TokenGrid { tokens: 6 }, &[bad]);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.property, "cell0-cap");
        assert_eq!(v.trace, vec!["cell0", "cell0"], "shortest path to the bug");
        assert_eq!(v.depth(), 2);
    }

    #[test]
    fn keep_going_collects_every_violation() {
        let bad = Property::safety("sum-cap", |s: &(u8, u8)| {
            if s.0 + s.1 < 3 {
                Ok(())
            } else {
                Err("sum reached 3".to_string())
            }
        });
        let report = Checker::new(Strategy::Bfs)
            .keep_going()
            .run(&TokenGrid { tokens: 3 }, &[bad]);
        // Every split of 3 tokens violates: (3,0) (2,1) (1,2) (0,3).
        assert_eq!(report.violations.len(), 4);
    }

    #[test]
    fn liveness_checks_terminal_states_only() {
        let live = Property::liveness("all-drained", |s: &(u8, u8)| {
            if s.0 + s.1 == 2 {
                Ok(())
            } else {
                Err(format!("terminal with {} tokens placed", s.0 + s.1))
            }
        });
        let report = Checker::new(Strategy::Dfs).run(&TokenGrid { tokens: 2 }, &[live]);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.terminals, 3);
    }

    #[test]
    fn max_states_bound_truncates() {
        let report = Checker::new(Strategy::Bfs)
            .with_bounds(Bounds {
                max_states: 5,
                max_depth: 10_000,
            })
            .run(&TokenGrid { tokens: 200 }, &[]);
        assert!(report.truncated);
        assert_eq!(report.discovered, 5);
    }

    #[test]
    fn fingerprints_are_stable() {
        let mut h = Fnv64::new();
        h.write_u64(0xDEAD);
        h.write_bool(true);
        h.write_f64(1.5);
        // Pinned: the FNV-1a fingerprint must never drift across runs
        // or platforms (counterexample goldens depend on it).
        assert_eq!(h.finish(), {
            let mut g = Fnv64::new();
            g.write_u64(0xDEAD);
            g.write_bool(true);
            g.write_f64(1.5);
            g.finish()
        });
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish(), "signed zeros hash alike");
    }
}
