//! Parallel scenario sweeps with deterministic, submission-ordered
//! results.
//!
//! Experiment harnesses on top of `simkit` spend almost all of their
//! wall-clock time running many *independent* scenarios — grid sweeps
//! over configurations, seeds, attack shapes. [`SweepRunner`] fans such a
//! grid out across a scoped worker pool ([`std::thread::scope`], so jobs
//! may borrow from the caller) and collects results **in submission
//! order**, regardless of which worker finished first.
//!
//! # Determinism contract
//!
//! Parallel execution must be *bit-identical* to serial execution. The
//! runner guarantees its half of the contract structurally: results come
//! back in submission order and workers share no state. The job's half is
//! that any randomness must derive from a stable `(seed, scenario_index)`
//! key — use [`scenario_stream`] (or [`scenario_seed`]) with the index the
//! runner passes to the job, never from a shared or thread-local stream:
//!
//! ```
//! use simkit::sweep::{scenario_stream, SweepRunner};
//!
//! let runner = SweepRunner::new(4);
//! let outputs = runner.run((0..8).collect(), |index, x: u64| {
//!     let mut rng = scenario_stream(42, index);
//!     x * 1000 + rng.next_u64() % 1000
//! });
//! let serial = SweepRunner::serial().run((0..8).collect(), |index, x: u64| {
//!     let mut rng = scenario_stream(42, index);
//!     x * 1000 + rng.next_u64() % 1000
//! });
//! assert_eq!(outputs, serial);
//! ```

use std::sync::Mutex;
use std::time::Instant;

use crate::rng::RngStream;
use crate::stats::ScenarioCost;

/// Derives the random stream for scenario `index` of a sweep under
/// `seed`.
///
/// This is *the* RNG derivation contract for sweeps: the stream depends
/// only on the stable `(seed, scenario_index)` key, so a scenario draws
/// the same numbers whether the sweep runs serially, on four workers, or
/// re-ordered — and adding scenarios never perturbs existing ones.
pub fn scenario_stream(seed: u64, index: usize) -> RngStream {
    RngStream::new(seed).fork_indexed("sweep-scenario", index)
}

/// A plain `u64` seed derived from the `(seed, scenario_index)` key, for
/// components that are reseeded by integer rather than by stream.
pub fn scenario_seed(seed: u64, index: usize) -> u64 {
    scenario_stream(seed, index).next_u64()
}

/// One sweep result together with its execution counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Metered<R> {
    /// The job's output.
    pub value: R,
    /// Wall-clock and steps-simulated counters for this scenario.
    pub cost: ScenarioCost,
}

/// Execution profile of one worker across a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// How many scenarios this worker executed.
    pub scenarios: u64,
    /// Total time this worker spent running jobs.
    pub busy: std::time::Duration,
    /// Total time this worker spent depositing results into the
    /// submission-order slot table (mostly slot-lock acquisition).
    pub merge: std::time::Duration,
}

impl WorkerProfile {
    fn absorb_scenario(&mut self, cost: &ScenarioCost) {
        self.scenarios += 1;
        self.busy += cost.wall_clock;
        self.merge += cost.merge;
    }
}

/// Execution profile of a whole sweep: one entry per worker plus the
/// sweep's wall-clock span.
///
/// Profiles are bookkeeping, like [`ScenarioCost`] — they carry
/// wall-clock durations and are **not** part of the determinism
/// contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepProfile {
    /// Per-worker counters, indexed by spawn order.
    pub workers: Vec<WorkerProfile>,
    /// Wall-clock time from sweep start to the last worker joining.
    pub wall_clock: std::time::Duration,
}

impl SweepProfile {
    /// Sum of job-execution time across workers.
    pub fn total_busy(&self) -> std::time::Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// Sum of result-merge time across workers.
    pub fn total_merge(&self) -> std::time::Duration {
        self.workers.iter().map(|w| w.merge).sum()
    }

    /// Total scenarios executed.
    pub fn scenarios(&self) -> u64 {
        self.workers.iter().map(|w| w.scenarios).sum()
    }

    /// Fraction of `workers × wall_clock` spent running jobs — 1.0 means
    /// perfectly load-balanced workers that never idled.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_clock.as_secs_f64() * self.workers.len() as f64;
        if capacity > 0.0 {
            self.total_busy().as_secs_f64() / capacity
        } else {
            0.0
        }
    }
}

/// A worker pool for scenario grids.
///
/// The pool is created per sweep call; `SweepRunner` itself only holds the
/// parallelism degree, so it is `Copy` and cheap to thread through
/// experiment APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A single-worker runner: scenarios run inline, in order.
    pub fn serial() -> Self {
        SweepRunner { jobs: 1 }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn from_available_parallelism() -> Self {
        SweepRunner::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `job` over every item, fanning out across the worker pool,
    /// and returns the results **in submission order**.
    ///
    /// The job receives `(scenario_index, item)`; derive any randomness
    /// from that index via [`scenario_stream`] so parallel and serial
    /// runs are bit-identical.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic propagates to the caller once the pool
    /// has been joined (the remaining queued scenarios are abandoned).
    pub fn run<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(index, item)| job(index, item))
                .collect();
        }
        // Shared pull queue: workers claim the next scenario as they free
        // up (dynamic load balancing — scenario runtimes vary wildly), and
        // deposit results into the submission-indexed slot table.
        let queue = Mutex::new(items.into_iter().enumerate());
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let next = queue
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .next();
                    match next {
                        Some((index, item)) => {
                            let result = job(index, item);
                            *slots[index]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                        }
                        None => break,
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("scoped workers completed every claimed scenario")
            })
            .collect()
    }

    /// Like [`SweepRunner::run`], but the job also reports how many
    /// simulation steps it executed; the runner stamps each result with
    /// wall-clock and step counters ([`ScenarioCost`]).
    ///
    /// Only `value` participates in the determinism contract — `cost`
    /// carries wall-clock time, which naturally varies between runs.
    pub fn run_metered<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<Metered<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> (R, u64) + Sync,
    {
        self.run_metered_profiled(items, job).0
    }

    /// Like [`SweepRunner::run_metered`], but also profiles the sweep
    /// itself: per-scenario queue wait and merge time land in each
    /// [`ScenarioCost`], and per-worker busy/merge totals come back as a
    /// [`SweepProfile`].
    ///
    /// Only each `Metered::value` participates in the determinism
    /// contract; costs and the profile carry wall-clock durations.
    pub fn run_metered_profiled<T, R, F>(
        &self,
        items: Vec<T>,
        job: F,
    ) -> (Vec<Metered<R>>, SweepProfile)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> (R, u64) + Sync,
    {
        let sweep_started = Instant::now();
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            let mut worker = WorkerProfile::default();
            let results = items
                .into_iter()
                .enumerate()
                .map(|(index, item)| {
                    let claimed = Instant::now();
                    let (value, steps) = job(index, item);
                    let cost = ScenarioCost {
                        wall_clock: claimed.elapsed(),
                        steps,
                        queue_wait: claimed.duration_since(sweep_started),
                        merge: std::time::Duration::ZERO,
                    };
                    worker.absorb_scenario(&cost);
                    Metered { value, cost }
                })
                .collect();
            let profile = SweepProfile {
                workers: vec![worker],
                wall_clock: sweep_started.elapsed(),
            };
            return (results, profile);
        }
        let workers = self.jobs.min(n);
        let queue = Mutex::new(items.into_iter().enumerate());
        let slots: Vec<Mutex<Option<Metered<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let profiles: Vec<Mutex<WorkerProfile>> = (0..workers)
            .map(|_| Mutex::new(WorkerProfile::default()))
            .collect();
        std::thread::scope(|scope| {
            for profile_slot in &profiles {
                let queue = &queue;
                let slots = &slots;
                let job = &job;
                scope.spawn(move || {
                    let mut worker = WorkerProfile::default();
                    loop {
                        let next = queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .next();
                        match next {
                            Some((index, item)) => {
                                let claimed = Instant::now();
                                let (value, steps) = job(index, item);
                                let ran = claimed.elapsed();
                                let merge_started = Instant::now();
                                let mut slot = slots[index]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                let cost = ScenarioCost {
                                    wall_clock: ran,
                                    steps,
                                    queue_wait: claimed.duration_since(sweep_started),
                                    merge: merge_started.elapsed(),
                                };
                                worker.absorb_scenario(&cost);
                                *slot = Some(Metered { value, cost });
                            }
                            None => break,
                        }
                    }
                    *profile_slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = worker;
                });
            }
        });
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("scoped workers completed every claimed scenario")
            })
            .collect();
        let profile = SweepProfile {
            workers: profiles
                .into_iter()
                .map(|p| {
                    p.into_inner()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                })
                .collect(),
            wall_clock: sweep_started.elapsed(),
        };
        (results, profile)
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::from_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let runner = SweepRunner::new(4);
        let items: Vec<u64> = (0..32).collect();
        // Make early scenarios the slowest so completion order inverts
        // submission order under any scheduling.
        let out = runner.run(items, |index, x| {
            if index < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * 2
        });
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let job = |index: usize, x: u64| {
            let mut rng = scenario_stream(7, index);
            (x, rng.next_u64(), rng.next_f64())
        };
        let serial = SweepRunner::serial().run((0..16).collect(), job);
        let parallel = SweepRunner::new(4).run((0..16).collect(), job);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn scenario_streams_are_independent_and_stable() {
        let mut a = scenario_stream(1, 0);
        let mut b = scenario_stream(1, 1);
        assert_ne!(a.next_u64(), b.next_u64());
        assert_eq!(scenario_seed(1, 5), scenario_seed(1, 5));
        assert_ne!(scenario_seed(1, 5), scenario_seed(2, 5));
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let runner = SweepRunner::new(8);
        let empty: Vec<u32> = runner.run(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(runner.run(vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn metered_run_counts_steps() {
        let out = SweepRunner::new(2).run_metered((0..4).collect(), |_, x: u64| (x, x * 10));
        assert_eq!(out.len(), 4);
        for (i, m) in out.iter().enumerate() {
            assert_eq!(m.value, i as u64);
            assert_eq!(m.cost.steps, i as u64 * 10);
        }
    }

    #[test]
    fn profiled_run_accounts_every_scenario() {
        for jobs in [1, 3] {
            let (out, profile) =
                SweepRunner::new(jobs).run_metered_profiled((0..10).collect(), |_, x: u64| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    (x, 1)
                });
            assert_eq!(out.len(), 10);
            assert_eq!(profile.workers.len(), jobs);
            assert_eq!(
                profile.scenarios(),
                10,
                "every scenario attributed to a worker"
            );
            assert!(profile.total_busy() >= std::time::Duration::from_millis(10));
            assert!(profile.wall_clock >= std::time::Duration::from_millis(1));
            let values: Vec<u64> = out.iter().map(|m| m.value).collect();
            assert_eq!(values, (0..10).collect::<Vec<u64>>(), "order preserved");
        }
    }

    #[test]
    fn profiled_matches_serial_values_bit_for_bit() {
        let job = |index: usize, x: u64| {
            let mut rng = scenario_stream(11, index);
            ((x, rng.next_u64()), 1)
        };
        let (serial, _) = SweepRunner::serial().run_metered_profiled((0..12).collect(), job);
        let (parallel, _) = SweepRunner::new(4).run_metered_profiled((0..12).collect(), job);
        let sv: Vec<_> = serial.into_iter().map(|m| m.value).collect();
        let pv: Vec<_> = parallel.into_iter().map(|m| m.value).collect();
        assert_eq!(sv, pv);
    }

    #[test]
    fn cost_accumulate_sums_profiling_spans() {
        let mut total = ScenarioCost::default();
        let cost = ScenarioCost {
            wall_clock: std::time::Duration::from_millis(5),
            steps: 100,
            queue_wait: std::time::Duration::from_millis(2),
            merge: std::time::Duration::from_micros(10),
        };
        total.accumulate(&cost);
        total.accumulate(&cost);
        assert_eq!(total.steps, 200);
        assert_eq!(total.queue_wait, std::time::Duration::from_millis(4));
        assert_eq!(total.merge, std::time::Duration::from_micros(20));
    }

    #[test]
    fn jobs_clamp_to_at_least_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
        assert!(SweepRunner::from_available_parallelism().jobs() >= 1);
    }
}
