//! Parallel scenario sweeps with deterministic, submission-ordered
//! results.
//!
//! Experiment harnesses on top of `simkit` spend almost all of their
//! wall-clock time running many *independent* scenarios — grid sweeps
//! over configurations, seeds, attack shapes. [`SweepRunner`] fans such a
//! grid out across a scoped worker pool ([`std::thread::scope`], so jobs
//! may borrow from the caller) and collects results **in submission
//! order**, regardless of which worker finished first.
//!
//! # Determinism contract
//!
//! Parallel execution must be *bit-identical* to serial execution. The
//! runner guarantees its half of the contract structurally: results come
//! back in submission order and workers share no state. The job's half is
//! that any randomness must derive from a stable `(seed, scenario_index)`
//! key — use [`scenario_stream`] (or [`scenario_seed`]) with the index the
//! runner passes to the job, never from a shared or thread-local stream:
//!
//! ```
//! use simkit::sweep::{scenario_stream, SweepRunner};
//!
//! let runner = SweepRunner::new(4);
//! let outputs = runner.run((0..8).collect(), |index, x: u64| {
//!     let mut rng = scenario_stream(42, index);
//!     x * 1000 + rng.next_u64() % 1000
//! });
//! let serial = SweepRunner::serial().run((0..8).collect(), |index, x: u64| {
//!     let mut rng = scenario_stream(42, index);
//!     x * 1000 + rng.next_u64() % 1000
//! });
//! assert_eq!(outputs, serial);
//! ```

use std::sync::Mutex;
use std::time::Instant;

use crate::rng::RngStream;
use crate::stats::ScenarioCost;

/// Derives the random stream for scenario `index` of a sweep under
/// `seed`.
///
/// This is *the* RNG derivation contract for sweeps: the stream depends
/// only on the stable `(seed, scenario_index)` key, so a scenario draws
/// the same numbers whether the sweep runs serially, on four workers, or
/// re-ordered — and adding scenarios never perturbs existing ones.
pub fn scenario_stream(seed: u64, index: usize) -> RngStream {
    RngStream::new(seed).fork_indexed("sweep-scenario", index)
}

/// A plain `u64` seed derived from the `(seed, scenario_index)` key, for
/// components that are reseeded by integer rather than by stream.
pub fn scenario_seed(seed: u64, index: usize) -> u64 {
    scenario_stream(seed, index).next_u64()
}

/// One sweep result together with its execution counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Metered<R> {
    /// The job's output.
    pub value: R,
    /// Wall-clock and steps-simulated counters for this scenario.
    pub cost: ScenarioCost,
}

/// A worker pool for scenario grids.
///
/// The pool is created per sweep call; `SweepRunner` itself only holds the
/// parallelism degree, so it is `Copy` and cheap to thread through
/// experiment APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A single-worker runner: scenarios run inline, in order.
    pub fn serial() -> Self {
        SweepRunner { jobs: 1 }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn from_available_parallelism() -> Self {
        SweepRunner::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `job` over every item, fanning out across the worker pool,
    /// and returns the results **in submission order**.
    ///
    /// The job receives `(scenario_index, item)`; derive any randomness
    /// from that index via [`scenario_stream`] so parallel and serial
    /// runs are bit-identical.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic propagates to the caller once the pool
    /// has been joined (the remaining queued scenarios are abandoned).
    pub fn run<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(index, item)| job(index, item))
                .collect();
        }
        // Shared pull queue: workers claim the next scenario as they free
        // up (dynamic load balancing — scenario runtimes vary wildly), and
        // deposit results into the submission-indexed slot table.
        let queue = Mutex::new(items.into_iter().enumerate());
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let next = queue
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .next();
                    match next {
                        Some((index, item)) => {
                            let result = job(index, item);
                            *slots[index]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                        }
                        None => break,
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("scoped workers completed every claimed scenario")
            })
            .collect()
    }

    /// Like [`SweepRunner::run`], but the job also reports how many
    /// simulation steps it executed; the runner stamps each result with
    /// wall-clock and step counters ([`ScenarioCost`]).
    ///
    /// Only `value` participates in the determinism contract — `cost`
    /// carries wall-clock time, which naturally varies between runs.
    pub fn run_metered<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<Metered<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> (R, u64) + Sync,
    {
        self.run(items, |index, item| {
            let started = Instant::now();
            let (value, steps) = job(index, item);
            Metered {
                value,
                cost: ScenarioCost {
                    wall_clock: started.elapsed(),
                    steps,
                },
            }
        })
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::from_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let runner = SweepRunner::new(4);
        let items: Vec<u64> = (0..32).collect();
        // Make early scenarios the slowest so completion order inverts
        // submission order under any scheduling.
        let out = runner.run(items, |index, x| {
            if index < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * 2
        });
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let job = |index: usize, x: u64| {
            let mut rng = scenario_stream(7, index);
            (x, rng.next_u64(), rng.next_f64())
        };
        let serial = SweepRunner::serial().run((0..16).collect(), job);
        let parallel = SweepRunner::new(4).run((0..16).collect(), job);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn scenario_streams_are_independent_and_stable() {
        let mut a = scenario_stream(1, 0);
        let mut b = scenario_stream(1, 1);
        assert_ne!(a.next_u64(), b.next_u64());
        assert_eq!(scenario_seed(1, 5), scenario_seed(1, 5));
        assert_ne!(scenario_seed(1, 5), scenario_seed(2, 5));
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let runner = SweepRunner::new(8);
        let empty: Vec<u32> = runner.run(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(runner.run(vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn metered_run_counts_steps() {
        let out = SweepRunner::new(2).run_metered((0..4).collect(), |_, x: u64| (x, x * 10));
        assert_eq!(out.len(), 4);
        for (i, m) in out.iter().enumerate() {
            assert_eq!(m.value, i as u64);
            assert_eq!(m.cost.steps, i as u64 * 10);
        }
    }

    #[test]
    fn jobs_clamp_to_at_least_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
        assert!(SweepRunner::from_available_parallelism().jobs() >= 1);
    }
}
