//! Minimal JSON value model, parser and rendering helpers for the
//! workspace's line-oriented wire formats.
//!
//! Every codec in this workspace (fault plans, alert rules, snapshots,
//! chaos plans, checkpoints) shares one deliberately small JSON
//! vocabulary: strings, numbers, arrays and objects. Strings follow the
//! telemetry codecs' *no-escaping convention* — the charset is
//! restricted (`[A-Za-z0-9._\- ]` in practice) so rendered documents
//! never need escape sequences and [`JsonParser`] rejects them
//! outright. Numbers use Rust's shortest-round-trip `f64` formatting,
//! which makes every rendered document deterministic across platforms
//! and every parsed `f64` bit-exact with the value that was written.
//!
//! Non-finite floats (`inf`, `-inf`, `nan`) have no JSON literal; the
//! snapshot codecs that must round-trip them (e.g. the `±inf` min/max
//! of an empty [`OnlineStats`](crate::stats::OnlineStats)) write them
//! as tagged strings via [`write_f64`] and read them back with
//! [`ObjFields::f64_field_lossy`].
//!
//! # Example
//!
//! ```
//! use simkit::jsonio::{Json, JsonParser, ObjFields};
//!
//! let doc = JsonParser::parse_document("{\"count\":3,\"name\":\"acme\"}").unwrap();
//! let obj = doc.as_object("doc").unwrap();
//! assert_eq!(obj.u64_field("count").unwrap(), 3);
//! assert_eq!(obj.str_field("name").unwrap(), "acme");
//! ```

use std::fmt::Write as _;

/// Minimal JSON value: strings, numbers, arrays, objects — the whole
/// vocabulary the workspace wire formats use. Booleans and `null` are
/// deliberately absent; codecs encode flags as `0`/`1` numbers and
/// optionality as field presence.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (no-escape charset; see the module docs).
    Str(String),
    /// A number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as an ordered field list (duplicate keys unsupported;
    /// lookups take the first match).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Views this value as an object's field list, or explains (using
    /// `what` as the subject) why it is not one.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(format!("expected {what} to be a JSON object")),
        }
    }

    /// Views this value as an array, or explains why it is not one.
    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("expected {what} to be a JSON array")),
        }
    }

    /// Views this value as a number, or explains why it is not one.
    /// Accepts the tagged non-finite strings written by [`write_f64`].
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            Json::Str(s) => parse_tagged_f64(s)
                .ok_or_else(|| format!("expected {what} to be a number, got string {s:?}")),
            _ => Err(format!("expected {what} to be a number")),
        }
    }

    /// Views this value as a non-negative integer, or explains why it
    /// is not one.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
            _ => Err(format!("expected {what} to be a non-negative integer")),
        }
    }
}

/// Writes `value` into `out` as a JSON number — or, when it is not
/// finite, as one of the tagged strings `"inf"`, `"-inf"`, `"nan"`
/// (JSON has no literal for these). Finite values use Rust's shortest
/// round-trip formatting, so `write_f64` → parse → `f64` is bit-exact.
pub fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else if value.is_nan() {
        out.push_str("\"nan\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn parse_tagged_f64(s: &str) -> Option<f64> {
    match s {
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        "nan" => Some(f64::NAN),
        _ => None,
    }
}

/// Field lookups over a parsed object, with typed errors.
pub trait ObjFields {
    /// The raw value of field `key`, or a missing-field error.
    fn field(&self, key: &str) -> Result<&Json, String>;
    /// The raw value of field `key`, or `None` when absent.
    fn opt_field(&self, key: &str) -> Option<&Json>;
    /// Field `key` as a string.
    fn str_field(&self, key: &str) -> Result<&str, String>;
    /// Field `key` as a number (strict: tagged non-finite strings are
    /// rejected — use [`ObjFields::f64_field_lossy`] for those).
    fn f64_field(&self, key: &str) -> Result<f64, String>;
    /// Field `key` as a number, also accepting the tagged non-finite
    /// strings written by [`write_f64`].
    fn f64_field_lossy(&self, key: &str) -> Result<f64, String>;
    /// Field `key` as a non-negative integer.
    fn u64_field(&self, key: &str) -> Result<u64, String>;
    /// Field `key` as a non-negative integer, or `None` when absent.
    fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, String>;
    /// Field `key` as an array.
    fn arr_field(&self, key: &str) -> Result<&[Json], String>;
    /// Field `key` as an object's field list.
    fn obj_field(&self, key: &str) -> Result<&[(String, Json)], String>;
}

impl ObjFields for &[(String, Json)] {
    fn field(&self, key: &str) -> Result<&Json, String> {
        self.opt_field(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn opt_field(&self, key: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.field(key)? {
            Json::Str(s) => Ok(s),
            _ => Err(format!("field {key:?} must be a string")),
        }
    }

    fn f64_field(&self, key: &str) -> Result<f64, String> {
        match self.field(key)? {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("field {key:?} must be a number")),
        }
    }

    fn f64_field_lossy(&self, key: &str) -> Result<f64, String> {
        self.field(key)?.as_f64(&format!("field {key:?}"))
    }

    fn u64_field(&self, key: &str) -> Result<u64, String> {
        let n = self.f64_field(key)?;
        if n.fract() != 0.0 || n < 0.0 || n > u64::MAX as f64 {
            return Err(format!(
                "field {key:?} must be a non-negative integer, got {n}"
            ));
        }
        Ok(n as u64)
    }

    fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, String> {
        match self.opt_field(key) {
            None => Ok(None),
            Some(v) => v.as_u64(&format!("field {key:?}")).map(Some),
        }
    }

    fn arr_field(&self, key: &str) -> Result<&[Json], String> {
        match self.field(key)? {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("field {key:?} must be an array")),
        }
    }

    fn obj_field(&self, key: &str) -> Result<&[(String, Json)], String> {
        self.field(key)?.as_object(&format!("field {key:?}"))
    }
}

/// Hand-rolled recursive-descent parser for the workspace wire formats.
/// Strings are unescaped-charset only (`[A-Za-z0-9._\- ]` in practice),
/// matching the telemetry codecs' no-escaping convention.
pub struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    /// Parses `text` as one complete JSON document (whitespace-tolerant,
    /// trailing garbage rejected).
    pub fn parse_document(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                if s.contains('\\') {
                    return Err("escaped strings are not supported".to_string());
                }
                self.pos += 1;
                return Ok(s.to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trips_typed_fields() {
        let doc = JsonParser::parse_document("{\"n\":1.5,\"s\":\"x\",\"a\":[1,2],\"o\":{\"k\":3}}")
            .unwrap();
        let obj = doc.as_object("doc").unwrap();
        assert_eq!(obj.f64_field("n").unwrap(), 1.5);
        assert_eq!(obj.str_field("s").unwrap(), "x");
        assert_eq!(obj.arr_field("a").unwrap().len(), 2);
        assert_eq!(obj.obj_field("o").unwrap().u64_field("k").unwrap(), 3);
        assert!(obj.opt_field("missing").is_none());
        assert_eq!(obj.opt_u64_field("missing").unwrap(), None);
        assert!(obj.opt_u64_field("n").unwrap_err().contains("integer"));
    }

    #[test]
    fn non_finite_floats_round_trip_as_tagged_strings() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1.25, -0.0] {
            let mut out = String::from("{\"v\":");
            write_f64(&mut out, v);
            out.push('}');
            let doc = JsonParser::parse_document(&out).unwrap();
            let got = doc.as_object("doc").unwrap().f64_field_lossy("v").unwrap();
            if v.is_nan() {
                assert!(got.is_nan());
            } else {
                assert_eq!(got, v, "round-trip of {v}");
            }
        }
    }

    #[test]
    fn strict_f64_field_rejects_tagged_strings() {
        let doc = JsonParser::parse_document("{\"v\":\"inf\"}").unwrap();
        let obj = doc.as_object("doc").unwrap();
        assert!(obj.f64_field("v").is_err());
        assert_eq!(obj.f64_field_lossy("v").unwrap(), f64::INFINITY);
    }

    #[test]
    fn parser_rejects_escapes_and_trailing_garbage() {
        assert!(JsonParser::parse_document("{\"a\\n\":1}")
            .unwrap_err()
            .contains("escaped"));
        assert!(JsonParser::parse_document("{} junk")
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn shortest_round_trip_formatting_is_exact() {
        let v = 0.123_456_789_012_345_68_f64;
        let mut out = String::new();
        write_f64(&mut out, v);
        let doc = JsonParser::parse_document(&out).unwrap();
        assert_eq!(doc.as_f64("v").unwrap().to_bits(), v.to_bits());
    }
}
