//! Deterministic, splittable random streams.
//!
//! Every stochastic component in the simulator (trace generator, attacker
//! jitter, load noise…) owns its own [`RngStream`], forked from a single
//! experiment seed by a string label. This makes experiments reproducible
//! *and* insensitive to the order in which components draw numbers — adding
//! a consumer never perturbs the streams of existing ones.
//!
//! The generator is xoshiro256\*\* (public domain, Blackman & Vigna) seeded
//! through SplitMix64, a standard combination with excellent statistical
//! quality and a 2^256−1 period.

/// SplitMix64 step; used for seeding and label hashing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream (xoshiro256\*\*).
///
/// # Example
///
/// ```
/// use simkit::rng::RngStream;
///
/// let root = RngStream::new(42);
/// let mut a = root.fork("rack-0");
/// let mut b = root.fork("rack-1");
/// // Independent streams from the same root seed.
/// assert_ne!(a.next_u64(), b.next_u64());
/// // Reproducible: same seed + label => same sequence.
/// let mut a2 = RngStream::new(42).fork("rack-0");
/// let mut a3 = RngStream::new(42).fork("rack-0");
/// assert_eq!(a2.next_u64(), a3.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RngStream {
    s: [u64; 4],
    /// Immutable seed fingerprint used by `fork`, fixed at construction so
    /// drawing numbers never perturbs child streams.
    fork_base: u64,
    /// Cached second normal deviate from Box–Muller.
    spare_normal: Option<f64>,
}

impl RngStream {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RngStream {
            s,
            fork_base: s[0] ^ s[2].rotate_left(31),
            spare_normal: None,
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Forking does not consume state from `self`, so the set of forks is
    /// stable no matter how much the parent has been used.
    pub fn fork(&self, label: &str) -> RngStream {
        // FNV-1a over the label, mixed with the parent's seed block.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ self.fork_base;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RngStream {
            s,
            fork_base: s[0] ^ s[2].rotate_left(31),
            spare_normal: None,
        }
    }

    /// Derives a child stream from an integer index (convenience for
    /// per-machine / per-rack streams).
    pub fn fork_indexed(&self, label: &str, index: usize) -> RngStream {
        self.fork(&format!("{label}#{index}"))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`, 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) has no valid output");
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for simulation-sized n (< 2^32).
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate (Box–Muller, cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln is finite.
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.next_f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = std::f64::consts::TAU * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential deviate with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Poisson deviate with the given mean (Knuth for small means,
    /// normal approximation above 30 — plenty for job-arrival counts).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "invalid poisson mean {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let z = self.normal_with(mean, mean.sqrt());
            return z.max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Pareto deviate with scale `x_min` and shape `alpha` (heavy-tailed
    /// task durations).
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "invalid pareto parameters");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::new(7);
        let mut b = RngStream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::new(1);
        let mut b = RngStream::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_stable_regardless_of_parent_use() {
        let mut parent = RngStream::new(99);
        let fork_before = parent.fork("child");
        for _ in 0..1000 {
            parent.next_u64();
        }
        let fork_after = parent.fork("child");
        assert_eq!(fork_before, fork_after);
    }

    #[test]
    fn fork_labels_are_independent() {
        let root = RngStream::new(5);
        let mut x = root.fork("a");
        let mut y = root.fork("b");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = RngStream::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut r = RngStream::new(11);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let v = r.uniform(10.0, 20.0);
            assert!((10.0..20.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 15.0).abs() < 0.1, "mean {mean} too far from 15");
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut r = RngStream::new(21);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.below(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "bucket {i} undersampled: {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::new(17);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal variance {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = RngStream::new(23);
        let n = 50_000;
        let lambda = 4.0;
        let mean: f64 = (0..n).map(|_| r.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "exp mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_small_and_large() {
        let mut r = RngStream::new(29);
        for &m in &[0.5, 3.0, 80.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| r.poisson(m) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - m).abs() < 0.1 * m.max(1.0),
                "poisson({m}) sample mean {mean}"
            );
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = RngStream::new(31);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::new(37);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::new(41);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = RngStream::new(43);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert!(r.choose(&[1, 2, 3]).is_some());
    }
}
