//! A deterministic alerting rule engine over a [`MetricRegistry`].
//!
//! The daemon's detectors answer "is this telemetry an attack?"; this
//! module answers the operational question one level up — "is the
//! *pipeline itself* healthy, and did anyone notice?" An
//! [`AlertEngine`] holds a list of [`AlertRule`]s (threshold,
//! rate-of-change, and deadman/staleness) and is evaluated explicitly,
//! at caller-chosen instants, against any metric registry. Rules
//! support a `for`-duration hold (a condition must persist before
//! firing), a minimum hold time once fired, and hysteresis (a separate
//! clear threshold) so a value oscillating around the trigger doesn't
//! flap the alert.
//!
//! # Determinism contract
//!
//! The engine has no clock: `now` is an argument to
//! [`eval`](AlertEngine::eval) and every recorded transition carries
//! that caller-supplied timestamp. Feeding the same registry states at
//! the same `now` values produces the same transitions, states, and
//! rendered bytes — which is how the daemon can promise byte-identical
//! `/alerts` documents across runs and arrival interleavings: it
//! evaluates on **simulation** time from the recorded telemetry, never
//! wall-clock.
//!
//! # Deadman semantics
//!
//! A [`Deadman`](AlertKind::Deadman) rule watches a metric's *update
//! beat*, learns the median gap between beats, and fires when a gap
//! exceeds `factor ×` that median (with a floor of `min_gap_ms`).
//! Because the engine only runs when the caller evaluates it, a silent
//! stream is detected **retroactively, at the next evaluation after
//! the silence** — for a tick-driven caller that is the moment the
//! stream resumes. The rule arms only after [`DEADMAN_MIN_GAPS`]
//! observed gaps, so a stream's first wobbly intervals can't fire it.

use crate::jsonio::{Json, JsonParser, ObjFields};
use crate::stats::Summary;
use crate::telemetry::{MetricKind, MetricRegistry};

/// Gaps a deadman rule must observe before it arms — a median over
/// fewer samples would let the very first interval define "normal".
pub const DEADMAN_MIN_GAPS: usize = 4;

/// Transitions retained in the engine's event log; later transitions
/// are counted in [`AlertEngine::events_dropped`] but not stored.
const EVENT_CAP: usize = 4096;

/// How urgent a firing rule is, mirrored into rendered documents and
/// `ALERTS{severity="..."}` labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational — worth a dashboard, not a human.
    Info,
    /// Degraded — a human should look during working hours.
    Warn,
    /// Critical — wake someone up.
    Page,
}

impl Severity {
    /// Lower-case wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Page => "page",
        }
    }

    /// Parses a wire label.
    pub fn from_label(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "page" => Some(Severity::Page),
            _ => None,
        }
    }
}

/// Comparison operator for threshold rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compare {
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl Compare {
    /// Wire spelling (`>`, `>=`, `<`, `<=`).
    pub fn as_str(self) -> &'static str {
        match self {
            Compare::Gt => ">",
            Compare::Ge => ">=",
            Compare::Lt => "<",
            Compare::Le => "<=",
        }
    }

    /// Parses a wire spelling.
    pub fn from_label(s: &str) -> Option<Compare> {
        match s {
            ">" => Some(Compare::Gt),
            ">=" => Some(Compare::Ge),
            "<" => Some(Compare::Lt),
            "<=" => Some(Compare::Le),
            _ => None,
        }
    }

    /// Applies the comparison.
    pub fn compare(self, value: f64, threshold: f64) -> bool {
        match self {
            Compare::Gt => value > threshold,
            Compare::Ge => value >= threshold,
            Compare::Lt => value < threshold,
            Compare::Le => value <= threshold,
        }
    }
}

/// What condition a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// Fires while `metric <op> value` holds. With `clear` set, the
    /// alert only resolves once the value fails `<op>` against `clear`
    /// instead of `value` — hysteresis for values that hover near the
    /// trigger.
    Threshold {
        /// Registry metric name (counter total, gauge value, or
        /// histogram observation count).
        metric: String,
        /// Trigger comparison.
        op: Compare,
        /// Trigger threshold.
        value: f64,
        /// Optional resolve threshold (hysteresis).
        clear: Option<f64>,
    },
    /// Fires when the metric's change per second between consecutive
    /// evaluations exceeds `max_per_sec`.
    Rate {
        /// Registry metric name.
        metric: String,
        /// Maximum tolerated change per second.
        max_per_sec: f64,
    },
    /// Fires when the gap between the metric's updates exceeds
    /// `factor ×` the median observed gap (floored at `min_gap_ms`).
    Deadman {
        /// Registry metric name whose update beat is watched.
        metric: String,
        /// Multiple of the median gap that counts as silence.
        factor: f64,
        /// Absolute floor under which a gap is never silence, in ms.
        min_gap_ms: u64,
    },
}

impl AlertKind {
    /// Wire tag (`threshold`, `rate`, `deadman`).
    pub fn kind_str(&self) -> &'static str {
        match self {
            AlertKind::Threshold { .. } => "threshold",
            AlertKind::Rate { .. } => "rate",
            AlertKind::Deadman { .. } => "deadman",
        }
    }

    /// The watched metric's registry name.
    pub fn metric(&self) -> &str {
        match self {
            AlertKind::Threshold { metric, .. }
            | AlertKind::Rate { metric, .. }
            | AlertKind::Deadman { metric, .. } => metric,
        }
    }
}

/// One alerting rule: a named, severity-tagged condition with firing
/// dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name (`[A-Za-z0-9._-]`, embeds in labels unescaped).
    pub name: String,
    /// Urgency when firing.
    pub severity: Severity,
    /// How long the condition must hold before firing, in ms (0 fires
    /// on the first evaluation that sees it). Ignored by deadman rules,
    /// whose observed gap already *is* a duration.
    pub for_ms: u64,
    /// Minimum time a fired alert stays firing before it may resolve,
    /// in ms.
    pub hold_ms: u64,
    /// The watched condition.
    pub kind: AlertKind,
}

impl AlertRule {
    /// Checks the rule's name and metric against the charset both the
    /// registry and the label renderers assume.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        };
        if !ok(&self.name) {
            return Err(format!(
                "rule name {:?} must be non-empty [A-Za-z0-9._-]",
                self.name
            ));
        }
        if !ok(self.kind.metric()) {
            return Err(format!(
                "rule {:?} metric {:?} must be non-empty [A-Za-z0-9._-]",
                self.name,
                self.kind.metric()
            ));
        }
        Ok(())
    }
}

/// One rule state transition: fired or resolved, at a caller-supplied
/// evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Evaluation time the transition happened at, in ms.
    pub time_ms: u64,
    /// The rule's name.
    pub rule: String,
    /// `true` for fired, `false` for resolved.
    pub fired: bool,
    /// The value that drove the transition (threshold value, rate per
    /// second, or the silent gap in ms).
    pub value: f64,
}

/// A rule's current position in the firing state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RuleState {
    Ok,
    /// Condition active since `since_ms`, waiting out `for_ms`.
    Pending {
        since_ms: u64,
    },
    /// Fired at `since_ms` with `value`.
    Firing {
        since_ms: u64,
        value: f64,
    },
}

/// Per-rule mutable evaluation state.
#[derive(Debug, Clone, Default)]
struct Runtime {
    state: Option<RuleState>,
    /// Rate rules: previous `(now, value)` observation.
    last_sample: Option<(u64, f64)>,
    /// Deadman rules: `(now, marker)` of the last observed update.
    last_beat: Option<(u64, f64)>,
    /// Deadman rules: observed inter-beat gaps, for the median.
    gaps: Summary,
}

impl Runtime {
    fn state(&self) -> RuleState {
        self.state.unwrap_or(RuleState::Ok)
    }
}

/// A point-in-time view of one rule for renderers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleSnapshot<'a> {
    /// The rule definition.
    pub rule: &'a AlertRule,
    /// `"ok"`, `"pending"`, or `"firing"`.
    pub state: &'static str,
    /// When the current pending/firing state began, if not ok.
    pub since_ms: Option<u64>,
    /// The value that drove the fire, while firing.
    pub value: Option<f64>,
}

/// Deterministic rule evaluator with a bounded transition log. See the
/// [module docs](self) for the evaluation and determinism contract.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    runtimes: Vec<Runtime>,
    events: Vec<AlertEvent>,
    events_dropped: u64,
    /// Transitions since the last [`take_transitions`](Self::take_transitions)
    /// drain — the ops-log feed, independent of the retained history.
    fresh: Vec<AlertEvent>,
}

impl AlertEngine {
    /// Builds an engine over `rules`.
    ///
    /// # Panics
    ///
    /// Panics if any rule fails [`AlertRule::validate`].
    pub fn new(rules: Vec<AlertRule>) -> Self {
        for rule in &rules {
            if let Err(e) = rule.validate() {
                panic!("invalid alert rule: {e}");
            }
        }
        let runtimes = vec![Runtime::default(); rules.len()];
        AlertEngine {
            rules,
            runtimes,
            events: Vec::new(),
            events_dropped: 0,
            fresh: Vec::new(),
        }
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates every rule against `reg` at time `now_ms`. Rules whose
    /// metric is absent from the registry stay in their current state.
    pub fn eval(&mut self, reg: &MetricRegistry, now_ms: u64) {
        for i in 0..self.rules.len() {
            self.eval_rule(i, reg, now_ms);
        }
    }

    fn eval_rule(&mut self, i: usize, reg: &MetricRegistry, now: u64) {
        match &self.rules[i].kind {
            AlertKind::Threshold {
                metric,
                op,
                value,
                clear,
            } => {
                let Some(v) = metric_value(reg, metric) else {
                    return;
                };
                let (op, value, clear) = (*op, *value, *clear);
                let active = op.compare(v, value);
                let cleared = match clear {
                    Some(c) => !op.compare(v, c),
                    None => !active,
                };
                self.step_condition(i, now, active, cleared, v);
            }
            AlertKind::Rate {
                metric,
                max_per_sec,
            } => {
                let Some(v) = metric_value(reg, metric) else {
                    return;
                };
                let max_per_sec = *max_per_sec;
                let prev = self.runtimes[i].last_sample.replace((now, v));
                let Some((t0, v0)) = prev else {
                    return;
                };
                if now <= t0 {
                    return;
                }
                let rate = (v - v0) / ((now - t0) as f64 / 1000.0);
                let active = rate > max_per_sec;
                self.step_condition(i, now, active, !active, rate);
            }
            AlertKind::Deadman {
                metric,
                factor,
                min_gap_ms,
            } => {
                let Some(marker) = metric_marker(reg, metric) else {
                    return;
                };
                let (factor, min_gap_ms) = (*factor, *min_gap_ms);
                let rt = &mut self.runtimes[i];
                let Some((t_last, m_last)) = rt.last_beat else {
                    rt.last_beat = Some((now, marker));
                    return;
                };
                let silence_over = |gaps: &Summary, gap: f64| {
                    gaps.count() >= DEADMAN_MIN_GAPS
                        && gap > (factor * gaps.median()).max(min_gap_ms as f64)
                };
                if marker != m_last {
                    let gap = now.saturating_sub(t_last) as f64;
                    let late = silence_over(&rt.gaps, gap);
                    rt.gaps.push(gap);
                    rt.last_beat = Some((now, marker));
                    if late {
                        self.fire(i, now, gap);
                    } else {
                        self.try_resolve(i, now, gap);
                    }
                } else {
                    // No update since the last evaluation — mid-silence.
                    let silent = now.saturating_sub(t_last) as f64;
                    if silence_over(&rt.gaps, silent) {
                        self.fire(i, now, silent);
                    }
                }
            }
        }
    }

    /// Shared pending/firing machinery for threshold and rate rules.
    fn step_condition(&mut self, i: usize, now: u64, active: bool, cleared: bool, value: f64) {
        let for_ms = self.rules[i].for_ms;
        match self.runtimes[i].state() {
            RuleState::Ok => {
                if active {
                    if for_ms == 0 {
                        self.fire(i, now, value);
                    } else {
                        self.runtimes[i].state = Some(RuleState::Pending { since_ms: now });
                    }
                }
            }
            RuleState::Pending { since_ms } => {
                if !active {
                    self.runtimes[i].state = Some(RuleState::Ok);
                } else if now.saturating_sub(since_ms) >= for_ms {
                    self.fire(i, now, value);
                }
            }
            RuleState::Firing { .. } => {
                if cleared {
                    self.try_resolve(i, now, value);
                }
            }
        }
    }

    /// Moves rule `i` to firing, recording the transition (no-op while
    /// already firing).
    fn fire(&mut self, i: usize, now: u64, value: f64) {
        if matches!(self.runtimes[i].state(), RuleState::Firing { .. }) {
            return;
        }
        self.runtimes[i].state = Some(RuleState::Firing {
            since_ms: now,
            value,
        });
        self.record(i, now, true, value);
    }

    /// Resolves rule `i` if it is firing and its hold time has passed.
    fn try_resolve(&mut self, i: usize, now: u64, value: f64) {
        let RuleState::Firing { since_ms, .. } = self.runtimes[i].state() else {
            return;
        };
        if now.saturating_sub(since_ms) < self.rules[i].hold_ms {
            return;
        }
        self.runtimes[i].state = Some(RuleState::Ok);
        self.record(i, now, false, value);
    }

    fn record(&mut self, i: usize, now: u64, fired: bool, value: f64) {
        let event = AlertEvent {
            time_ms: now,
            rule: self.rules[i].name.clone(),
            fired,
            value,
        };
        if self.events.len() < EVENT_CAP {
            self.events.push(event.clone());
        } else {
            self.events_dropped += 1;
        }
        self.fresh.push(event);
    }

    /// All retained transitions, oldest first.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Transitions beyond the retained-event cap.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Drains the transitions recorded since the previous drain —
    /// the feed a caller forwards to its ops log. The retained history
    /// in [`events`](Self::events) is unaffected.
    pub fn take_transitions(&mut self) -> Vec<AlertEvent> {
        std::mem::take(&mut self.fresh)
    }

    /// How many rules are currently firing.
    pub fn firing_count(&self) -> usize {
        self.runtimes
            .iter()
            .filter(|rt| matches!(rt.state(), RuleState::Firing { .. }))
            .count()
    }

    /// Serializes the engine's mutable state — per-rule runtime
    /// machinery, the retained transition log, and any not-yet-drained
    /// fresh transitions — keyed by rule name for structural
    /// validation on restore. Rule definitions themselves are
    /// configuration and are rebuilt by the caller.
    pub fn snapshot_json(&self) -> String {
        use crate::jsonio::write_f64;
        use std::fmt::Write as _;
        let write_events = |out: &mut String, events: &[AlertEvent]| {
            out.push('[');
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"t\":{},\"rule\":\"{}\",\"fired\":{},\"value\":",
                    ev.time_ms,
                    ev.rule,
                    u8::from(ev.fired)
                );
                write_f64(out, ev.value);
                out.push('}');
            }
            out.push(']');
        };
        let mut out = String::from("{\"rules\":[");
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", rule.name);
        }
        out.push_str("],\"runtimes\":[");
        for (i, rt) in self.runtimes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match rt.state() {
                RuleState::Ok => out.push_str("{\"state\":\"ok\""),
                RuleState::Pending { since_ms } => {
                    let _ = write!(out, "{{\"state\":\"pending\",\"since\":{since_ms}");
                }
                RuleState::Firing { since_ms, value } => {
                    let _ = write!(
                        out,
                        "{{\"state\":\"firing\",\"since\":{since_ms},\"value\":"
                    );
                    write_f64(&mut out, value);
                }
            }
            if let Some((t, v)) = rt.last_sample {
                let _ = write!(out, ",\"last_sample\":[{t},");
                write_f64(&mut out, v);
                out.push(']');
            }
            if let Some((t, v)) = rt.last_beat {
                let _ = write!(out, ",\"last_beat\":[{t},");
                write_f64(&mut out, v);
                out.push(']');
            }
            out.push_str(",\"gaps\":");
            out.push_str(&rt.gaps.snapshot_json());
            out.push('}');
        }
        out.push_str("],\"events\":");
        write_events(&mut out, &self.events);
        let _ = write!(
            out,
            ",\"events_dropped\":{},\"fresh\":",
            self.events_dropped
        );
        write_events(&mut out, &self.fresh);
        out.push('}');
        out
    }

    /// Restores mutable state from a [`snapshot_json`](Self::snapshot_json)
    /// document into an engine built over the same rules (names are
    /// validated in order).
    pub fn restore_snapshot(&mut self, value: &Json) -> Result<(), String> {
        let read_events = |items: &[Json], what: &str| -> Result<Vec<AlertEvent>, String> {
            items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let obj = item.as_object(&format!("{what}[{i}]"))?;
                    Ok(AlertEvent {
                        time_ms: obj.u64_field("t")?,
                        rule: obj.str_field("rule")?.to_string(),
                        fired: obj.u64_field("fired")? != 0,
                        value: obj.f64_field_lossy("value")?,
                    })
                })
                .collect()
        };
        let obj = value.as_object("alert engine snapshot")?;
        let names = obj.arr_field("rules")?;
        if names.len() != self.rules.len() {
            return Err(format!(
                "engine has {} rules, snapshot has {}",
                self.rules.len(),
                names.len()
            ));
        }
        for (rule, name) in self.rules.iter().zip(names) {
            let name = match name {
                Json::Str(s) => s.as_str(),
                _ => return Err("rule names must be strings".to_string()),
            };
            if name != rule.name {
                return Err(format!(
                    "rule name mismatch: snapshot has {name:?}, engine has {:?}",
                    rule.name
                ));
            }
        }
        let runtimes = obj.arr_field("runtimes")?;
        if runtimes.len() != self.rules.len() {
            return Err("runtime count must match rule count".to_string());
        }
        let mut restored = Vec::with_capacity(runtimes.len());
        for (i, item) in runtimes.iter().enumerate() {
            let robj = item.as_object(&format!("runtime[{i}]"))?;
            let state = match robj.str_field("state")? {
                "ok" => RuleState::Ok,
                "pending" => RuleState::Pending {
                    since_ms: robj.u64_field("since")?,
                },
                "firing" => RuleState::Firing {
                    since_ms: robj.u64_field("since")?,
                    value: robj.f64_field_lossy("value")?,
                },
                other => return Err(format!("unknown rule state {other:?}")),
            };
            let pair = |key: &str| -> Result<Option<(u64, f64)>, String> {
                match robj.opt_field(key) {
                    None => Ok(None),
                    Some(v) => {
                        let arr = v.as_array(&format!("runtime {key}"))?;
                        if arr.len() != 2 {
                            return Err(format!("runtime {key} must be a [t, value] pair"));
                        }
                        Ok(Some((
                            arr[0].as_u64(&format!("{key} time"))?,
                            arr[1].as_f64(&format!("{key} value"))?,
                        )))
                    }
                }
            };
            restored.push(Runtime {
                state: Some(state),
                last_sample: pair("last_sample")?,
                last_beat: pair("last_beat")?,
                gaps: Summary::from_snapshot(robj.field("gaps")?)?,
            });
        }
        self.runtimes = restored;
        self.events = read_events(obj.arr_field("events")?, "events")?;
        self.events_dropped = obj.u64_field("events_dropped")?;
        self.fresh = read_events(obj.arr_field("fresh")?, "fresh")?;
        Ok(())
    }

    /// Point-in-time state of every rule, in rule order.
    pub fn snapshots(&self) -> Vec<RuleSnapshot<'_>> {
        self.rules
            .iter()
            .zip(&self.runtimes)
            .map(|(rule, rt)| match rt.state() {
                RuleState::Ok => RuleSnapshot {
                    rule,
                    state: "ok",
                    since_ms: None,
                    value: None,
                },
                RuleState::Pending { since_ms } => RuleSnapshot {
                    rule,
                    state: "pending",
                    since_ms: Some(since_ms),
                    value: None,
                },
                RuleState::Firing { since_ms, value } => RuleSnapshot {
                    rule,
                    state: "firing",
                    since_ms: Some(since_ms),
                    value: Some(value),
                },
            })
            .collect()
    }
}

/// The value a threshold/rate rule reads: a counter's total, a gauge's
/// last value, or a histogram's observation count.
fn metric_value(reg: &MetricRegistry, name: &str) -> Option<f64> {
    let id = reg.id(name)?;
    Some(match reg.kind(id) {
        MetricKind::Counter => reg.counter(id) as f64,
        MetricKind::Gauge => reg.gauge(id),
        MetricKind::Histogram => reg.stats(id).count() as f64,
    })
}

/// The update marker a deadman rule watches: any change means the
/// metric was touched since the last evaluation.
fn metric_marker(reg: &MetricRegistry, name: &str) -> Option<f64> {
    let id = reg.id(name)?;
    Some(match reg.kind(id) {
        MetricKind::Counter => reg.counter(id) as f64,
        MetricKind::Gauge | MetricKind::Histogram => reg.stats(id).count() as f64,
    })
}

/// Parses a rules document:
/// `{"rules":[{"name":...,"severity":...,"kind":...,...}]}`. Kind
/// fields: `threshold` takes `metric`, `op`, `value`, optional
/// `clear`; `rate` takes `metric`, `max_per_sec`; `deadman` takes
/// `metric`, `factor`, `min_gap_ms`. Every rule accepts optional
/// `for_ms` and `hold_ms` (default 0).
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let doc = JsonParser::parse_document(text)?;
    let doc = doc.as_object("rules document")?;
    let mut rules = Vec::new();
    for (idx, item) in doc.arr_field("rules")?.iter().enumerate() {
        let obj = item.as_object(&format!("rule #{idx}"))?;
        let name = obj.str_field("name")?.to_string();
        let severity = obj
            .str_field("severity")
            .ok()
            .map_or(Ok(Severity::Warn), |s| {
                Severity::from_label(s)
                    .ok_or_else(|| format!("rule {name:?}: unknown severity {s:?}"))
            })?;
        let metric = obj.str_field("metric")?.to_string();
        let kind = match obj.str_field("kind")? {
            "threshold" => AlertKind::Threshold {
                metric,
                op: {
                    let op = obj.str_field("op")?;
                    Compare::from_label(op)
                        .ok_or_else(|| format!("rule {name:?}: unknown op {op:?}"))?
                },
                value: obj.f64_field("value")?,
                clear: match obj.field("clear") {
                    Ok(Json::Num(n)) => Some(*n),
                    Ok(_) => return Err(format!("rule {name:?}: clear must be a number")),
                    Err(_) => None,
                },
            },
            "rate" => AlertKind::Rate {
                metric,
                max_per_sec: obj.f64_field("max_per_sec")?,
            },
            "deadman" => AlertKind::Deadman {
                metric,
                factor: obj.f64_field("factor")?,
                min_gap_ms: obj.u64_field("min_gap_ms")?,
            },
            other => return Err(format!("rule {name:?}: unknown kind {other:?}")),
        };
        let rule = AlertRule {
            name,
            severity,
            for_ms: obj.u64_field("for_ms").unwrap_or(0),
            hold_ms: obj.u64_field("hold_ms").unwrap_or(0),
            kind,
        };
        rule.validate()?;
        rules.push(rule);
    }
    Ok(rules)
}

/// Renders rules back to the document [`parse_rules`] reads — the
/// scaffold `padsimd serve --alerts` consumes, and a round-trip check.
pub fn render_rules_json(rules: &[AlertRule]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"rules\":[");
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"severity\":\"{}\",\"kind\":\"{}\",\"metric\":\"{}\"",
            rule.name,
            rule.severity.as_str(),
            rule.kind.kind_str(),
            rule.kind.metric()
        );
        match &rule.kind {
            AlertKind::Threshold {
                op, value, clear, ..
            } => {
                let _ = write!(out, ",\"op\":\"{}\",\"value\":{}", op.as_str(), value);
                if let Some(clear) = clear {
                    let _ = write!(out, ",\"clear\":{clear}");
                }
            }
            AlertKind::Rate { max_per_sec, .. } => {
                let _ = write!(out, ",\"max_per_sec\":{max_per_sec}");
            }
            AlertKind::Deadman {
                factor, min_gap_ms, ..
            } => {
                let _ = write!(out, ",\"factor\":{factor},\"min_gap_ms\":{min_gap_ms}");
            }
        }
        let _ = write!(
            out,
            ",\"for_ms\":{},\"hold_ms\":{}}}",
            rule.for_ms, rule.hold_ms
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Renders an engine's full state as the newline-terminated `/alerts`
/// JSON document: every rule with its current state, the firing count,
/// and the retained transition log. Field order is fixed and values
/// use `f64`/integer `Display`, so identical evaluations render
/// byte-identically.
pub fn render_alerts_json(engine: &AlertEngine) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"rules\":[");
    for (i, snap) in engine.snapshots().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"kind\":\"{}\",\"metric\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\"",
            snap.rule.name,
            snap.rule.kind.kind_str(),
            snap.rule.kind.metric(),
            snap.rule.severity.as_str(),
            snap.state
        );
        match snap.since_ms {
            Some(since) => {
                let _ = write!(out, ",\"since_ms\":{since}");
            }
            None => out.push_str(",\"since_ms\":null"),
        }
        match snap.value {
            Some(value) => {
                let _ = write!(out, ",\"value\":{value}");
            }
            None => out.push_str(",\"value\":null"),
        }
        out.push('}');
    }
    if !engine.rules().is_empty() {
        out.push('\n');
    }
    let _ = write!(out, "],\"firing\":{},\"events\":[", engine.firing_count());
    for (i, ev) in engine.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"t\":{},\"rule\":\"{}\",\"event\":\"{}\",\"value\":{}}}",
            ev.time_ms,
            ev.rule,
            if ev.fired { "fired" } else { "resolved" },
            ev.value
        );
    }
    if !engine.events().is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "],\"events_dropped\":{}}}", engine.events_dropped());
    out
}

/// Renders active (pending or firing) alerts across engines as a
/// Prometheus `ALERTS{...}` gauge family — the convention Prometheus
/// itself uses for alert state. One HELP/TYPE block, then one series
/// per active rule per instance, tagged with that instance's label
/// block (empty for an unlabeled singleton).
pub fn render_alerts_prom(instances: &[(&str, &AlertEngine)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# HELP ALERTS active alerts by rule\n# TYPE ALERTS gauge\n");
    for (label, engine) in instances {
        for snap in engine.snapshots() {
            if snap.state == "ok" {
                continue;
            }
            let sep = if label.is_empty() { "" } else { "," };
            let _ = writeln!(
                out,
                "ALERTS{{alertname=\"{}\",severity=\"{}\",alertstate=\"{}\"{sep}{label}}} 1",
                snap.rule.name,
                snap.rule.severity.as_str(),
                snap.state
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_gauge(value: f64) -> (MetricRegistry, crate::telemetry::MetricId) {
        let mut reg = MetricRegistry::new();
        let id = reg.register_gauge("policy.level");
        reg.set_gauge(id, value);
        (reg, id)
    }

    fn threshold_rule(for_ms: u64, hold_ms: u64, clear: Option<f64>) -> AlertRule {
        AlertRule {
            name: "level-high".to_string(),
            severity: Severity::Page,
            for_ms,
            hold_ms,
            kind: AlertKind::Threshold {
                metric: "policy.level".to_string(),
                op: Compare::Ge,
                value: 3.0,
                clear,
            },
        }
    }

    #[test]
    fn threshold_fires_and_resolves() {
        let (mut reg, id) = reg_with_gauge(1.0);
        let mut engine = AlertEngine::new(vec![threshold_rule(0, 0, None)]);
        engine.eval(&reg, 100);
        assert_eq!(engine.firing_count(), 0);
        reg.set_gauge(id, 3.0);
        engine.eval(&reg, 200);
        assert_eq!(engine.firing_count(), 1);
        assert_eq!(engine.snapshots()[0].state, "firing");
        reg.set_gauge(id, 1.0);
        engine.eval(&reg, 300);
        assert_eq!(engine.firing_count(), 0);
        let events = engine.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].fired && !events[1].fired);
        assert_eq!(events[0].time_ms, 200);
        assert_eq!(events[1].time_ms, 300);
    }

    #[test]
    fn for_duration_requires_persistence() {
        let (mut reg, id) = reg_with_gauge(3.0);
        let mut engine = AlertEngine::new(vec![threshold_rule(500, 0, None)]);
        engine.eval(&reg, 0);
        assert_eq!(engine.snapshots()[0].state, "pending");
        // A dip back below the trigger resets the pending clock.
        reg.set_gauge(id, 1.0);
        engine.eval(&reg, 400);
        assert_eq!(engine.snapshots()[0].state, "ok");
        reg.set_gauge(id, 3.0);
        engine.eval(&reg, 500);
        engine.eval(&reg, 900);
        assert_eq!(engine.snapshots()[0].state, "pending", "only 400ms held");
        engine.eval(&reg, 1000);
        assert_eq!(engine.snapshots()[0].state, "firing");
        assert_eq!(engine.events()[0].time_ms, 1000);
    }

    #[test]
    fn hysteresis_resolves_at_clear_not_trigger() {
        let (mut reg, id) = reg_with_gauge(3.0);
        let mut engine = AlertEngine::new(vec![threshold_rule(0, 0, Some(2.0))]);
        engine.eval(&reg, 0);
        assert_eq!(engine.firing_count(), 1);
        // Below the trigger but still at/above clear: stays firing.
        reg.set_gauge(id, 2.5);
        engine.eval(&reg, 100);
        assert_eq!(engine.firing_count(), 1, "hovering must not flap");
        reg.set_gauge(id, 1.0);
        engine.eval(&reg, 200);
        assert_eq!(engine.firing_count(), 0);
    }

    #[test]
    fn hold_keeps_an_alert_firing() {
        let (mut reg, id) = reg_with_gauge(3.0);
        let mut engine = AlertEngine::new(vec![threshold_rule(0, 1000, None)]);
        engine.eval(&reg, 0);
        reg.set_gauge(id, 1.0);
        engine.eval(&reg, 500);
        assert_eq!(engine.firing_count(), 1, "hold_ms not yet served");
        engine.eval(&reg, 1000);
        assert_eq!(engine.firing_count(), 0);
    }

    #[test]
    fn rate_rule_watches_counter_slope() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("ingest.parse_errors_total");
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "errors".to_string(),
            severity: Severity::Warn,
            for_ms: 0,
            hold_ms: 0,
            kind: AlertKind::Rate {
                metric: "ingest.parse_errors_total".to_string(),
                max_per_sec: 1.0,
            },
        }]);
        engine.eval(&reg, 0);
        reg.inc(c, 1); // 1 error over 1s = 1.0/s, at the limit
        engine.eval(&reg, 1000);
        assert_eq!(engine.firing_count(), 0);
        reg.inc(c, 5); // 5 errors over 1s
        engine.eval(&reg, 2000);
        assert_eq!(engine.firing_count(), 1);
        assert_eq!(engine.events()[0].value, 5.0);
        engine.eval(&reg, 3000); // no new errors
        assert_eq!(engine.firing_count(), 0);
    }

    fn deadman_rule(hold_ms: u64) -> AlertRule {
        AlertRule {
            name: "silent".to_string(),
            severity: Severity::Page,
            for_ms: 0,
            hold_ms,
            kind: AlertKind::Deadman {
                metric: "ingest.ticks_total".to_string(),
                factor: 3.0,
                min_gap_ms: 150,
            },
        }
    }

    #[test]
    fn deadman_fires_retroactively_after_a_gap() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("ingest.ticks_total");
        let mut engine = AlertEngine::new(vec![deadman_rule(0)]);
        // A steady 100ms beat arms the median.
        let mut t = 0;
        for _ in 0..6 {
            reg.inc(c, 1);
            engine.eval(&reg, t);
            t += 100;
        }
        assert_eq!(engine.firing_count(), 0);
        // Silence: the next beat lands 2000ms after the previous one.
        reg.inc(c, 1);
        engine.eval(&reg, 2500);
        assert_eq!(engine.firing_count(), 1);
        let fired = &engine.events()[0];
        assert!(fired.fired);
        assert_eq!(fired.time_ms, 2500);
        assert_eq!(fired.value, 2000.0);
        // The next on-time beat resolves it.
        reg.inc(c, 1);
        engine.eval(&reg, 2600);
        assert_eq!(engine.firing_count(), 0);
    }

    #[test]
    fn deadman_needs_enough_gaps_to_arm() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("ingest.ticks_total");
        let mut engine = AlertEngine::new(vec![deadman_rule(0)]);
        reg.inc(c, 1);
        engine.eval(&reg, 0);
        reg.inc(c, 1);
        engine.eval(&reg, 100);
        // A huge gap with only one observed gap: not armed, no fire.
        reg.inc(c, 1);
        engine.eval(&reg, 60_000);
        assert_eq!(engine.firing_count(), 0);
    }

    #[test]
    fn deadman_sees_mid_silence_at_evaluation_time() {
        let mut reg = MetricRegistry::new();
        let c = reg.register_counter("ingest.ticks_total");
        let g = reg.register_gauge("other");
        let mut engine = AlertEngine::new(vec![deadman_rule(0)]);
        let mut t = 0;
        for _ in 0..6 {
            reg.inc(c, 1);
            engine.eval(&reg, t);
            t += 100;
        }
        // The beat stops but something else drives evaluations.
        reg.set_gauge(g, 1.0);
        engine.eval(&reg, 5000);
        assert_eq!(engine.firing_count(), 1, "silence visible without a resume");
    }

    #[test]
    fn missing_metric_leaves_rules_ok() {
        let reg = MetricRegistry::new();
        let mut engine = AlertEngine::new(vec![threshold_rule(0, 0, None), deadman_rule(0)]);
        engine.eval(&reg, 100);
        assert_eq!(engine.firing_count(), 0);
        assert!(engine.events().is_empty());
    }

    #[test]
    fn identical_histories_render_identical_documents() {
        let run = || {
            let (mut reg, id) = reg_with_gauge(1.0);
            let mut engine = AlertEngine::new(vec![threshold_rule(0, 0, Some(2.0))]);
            for (t, v) in [(0, 1.0), (100, 3.5), (200, 2.5), (300, 0.5), (400, 4.0)] {
                reg.set_gauge(id, v);
                engine.eval(&reg, t);
            }
            render_alerts_json(&engine)
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "two identical runs must render identically");
        assert!(a.contains("\"event\":\"fired\""));
        assert!(a.contains("\"event\":\"resolved\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn take_transitions_drains_without_touching_history() {
        let (mut reg, id) = reg_with_gauge(3.0);
        let mut engine = AlertEngine::new(vec![threshold_rule(0, 0, None)]);
        engine.eval(&reg, 0);
        let fresh = engine.take_transitions();
        assert_eq!(fresh.len(), 1);
        assert!(engine.take_transitions().is_empty(), "drained");
        assert_eq!(engine.events().len(), 1, "history retained");
        reg.set_gauge(id, 0.0);
        engine.eval(&reg, 100);
        assert_eq!(engine.take_transitions().len(), 1);
        assert_eq!(engine.events().len(), 2);
    }

    #[test]
    fn rules_json_round_trips() {
        let rules = vec![
            threshold_rule(250, 1000, Some(2.0)),
            deadman_rule(500),
            AlertRule {
                name: "err-rate".to_string(),
                severity: Severity::Info,
                for_ms: 0,
                hold_ms: 0,
                kind: AlertKind::Rate {
                    metric: "ingest.parse_errors_total".to_string(),
                    max_per_sec: 2.5,
                },
            },
        ];
        let text = render_rules_json(&rules);
        assert_eq!(parse_rules(&text).unwrap(), rules);
    }

    #[test]
    fn parse_rules_rejects_bad_documents() {
        assert!(parse_rules("{}").is_err(), "missing rules array");
        assert!(
            parse_rules("{\"rules\":[{\"name\":\"x\"}]}").is_err(),
            "missing kind"
        );
        let bad_kind = "{\"rules\":[{\"name\":\"x\",\"kind\":\"magic\",\"metric\":\"m\"}]}";
        assert!(parse_rules(bad_kind).unwrap_err().contains("unknown kind"));
        let bad_name =
            "{\"rules\":[{\"name\":\"has space\",\"kind\":\"rate\",\"metric\":\"m\",\"max_per_sec\":1}]}";
        assert!(parse_rules(bad_name).unwrap_err().contains("A-Za-z0-9"));
        let bad_sev =
            "{\"rules\":[{\"name\":\"x\",\"severity\":\"shrug\",\"kind\":\"rate\",\"metric\":\"m\",\"max_per_sec\":1}]}";
        assert!(parse_rules(bad_sev).unwrap_err().contains("severity"));
    }

    #[test]
    fn engine_snapshot_round_trips_mid_history() {
        let rules = || {
            vec![
                threshold_rule(0, 0, Some(2.0)),
                deadman_rule(0),
                AlertRule {
                    name: "err-rate".to_string(),
                    severity: Severity::Info,
                    for_ms: 0,
                    hold_ms: 0,
                    kind: AlertKind::Rate {
                        metric: "ingest.ticks_total".to_string(),
                        max_per_sec: 50.0,
                    },
                },
            ]
        };
        let mut reg = MetricRegistry::new();
        let level = reg.register_gauge("policy.level");
        let ticks = reg.register_counter("ingest.ticks_total");
        let drive =
            |engine: &mut AlertEngine, reg: &mut MetricRegistry, range: std::ops::Range<u64>| {
                for i in range {
                    reg.set_gauge(level, if i % 7 == 3 { 3.5 } else { 1.0 });
                    reg.inc(ticks, if i % 11 == 5 { 200 } else { 1 });
                    engine.eval(reg, i * 100);
                }
            };

        let mut full = AlertEngine::new(rules());
        let mut full_reg = MetricRegistry::new();
        let fl = full_reg.register_gauge("policy.level");
        let ft = full_reg.register_counter("ingest.ticks_total");
        assert_eq!((fl, ft), (level, ticks));
        drive(&mut full, &mut full_reg, 0..40);

        let mut first = AlertEngine::new(rules());
        drive(&mut first, &mut reg, 0..23);
        let doc = JsonParser::parse_document(&first.snapshot_json()).unwrap();
        let mut resumed = AlertEngine::new(rules());
        resumed.restore_snapshot(&doc).unwrap();
        drive(&mut resumed, &mut reg, 23..40);

        assert!(
            !full.events().is_empty(),
            "the drive must produce transitions"
        );
        assert_eq!(render_alerts_json(&resumed), render_alerts_json(&full));
        assert_eq!(
            resumed.take_transitions().len(),
            full.take_transitions().len()
        );
    }

    #[test]
    fn engine_restore_rejects_rule_drift() {
        let engine = AlertEngine::new(vec![threshold_rule(0, 0, None)]);
        let doc = JsonParser::parse_document(&engine.snapshot_json()).unwrap();
        let mut renamed = AlertEngine::new(vec![deadman_rule(0)]);
        assert!(renamed
            .restore_snapshot(&doc)
            .unwrap_err()
            .contains("mismatch"));
        let mut fewer = AlertEngine::new(vec![]);
        assert!(fewer.restore_snapshot(&doc).unwrap_err().contains("rules"));
    }

    #[test]
    fn alerts_prom_renders_active_series_only() {
        let (reg, _) = reg_with_gauge(3.0);
        let mut engine = AlertEngine::new(vec![threshold_rule(0, 0, None), deadman_rule(0)]);
        engine.eval(&reg, 0);
        let text = render_alerts_prom(&[("tenant=\"acme\"", &engine)]);
        assert!(text.starts_with("# HELP ALERTS"));
        assert!(text.contains(
            "ALERTS{alertname=\"level-high\",severity=\"page\",alertstate=\"firing\",tenant=\"acme\"} 1\n"
        ));
        assert!(
            !text.contains("alertname=\"silent\""),
            "ok rules are omitted"
        );
        let solo = render_alerts_prom(&[("", &engine)]);
        assert!(solo.contains("alertstate=\"firing\"} 1\n"));
    }
}
