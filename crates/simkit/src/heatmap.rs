//! Plain-text heatmap rendering.
//!
//! Figures 13 and 14 of the paper are rack-by-time heatmaps of battery
//! state of charge. [`Heatmap`] renders a matrix of values in `[0, 1]` as
//! shaded ASCII, one row per rack, so "blue strips" (vulnerable racks) are
//! visible directly in terminal output.

/// Shade ramp from empty (vulnerable) to full, darkest-last.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// A rack-by-time matrix renderer.
///
/// Rows are labeled series (e.g. one per rack); values are clamped to
/// `[0, 1]` where 0 renders as blank (empty battery) and 1 as `@` (full).
///
/// # Example
///
/// ```
/// use simkit::heatmap::Heatmap;
///
/// let mut h = Heatmap::new();
/// h.row("rack-00", vec![1.0, 0.5, 0.0]);
/// h.row("rack-01", vec![0.9, 0.9, 0.9]);
/// let text = h.render(3);
/// assert!(text.contains("rack-00"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    rows: Vec<(String, Vec<f64>)>,
    title: Option<String>,
}

impl Heatmap {
    /// Creates an empty heatmap.
    pub fn new() -> Self {
        Heatmap::default()
    }

    /// Sets a title printed above the map.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a labeled row of values in `[0, 1]` (clamped on render).
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.rows.push((label.into(), values));
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Maps a value in `[0,1]` to a ramp character.
    pub fn shade(value: f64) -> char {
        let v = value.clamp(0.0, 1.0);
        let idx = (v * (RAMP.len() - 1) as f64).round() as usize;
        RAMP[idx]
    }

    /// Renders the heatmap, downsampling each row to at most `max_cols`
    /// columns (by averaging) so wide series fit a terminal.
    ///
    /// # Panics
    ///
    /// Panics if `max_cols` is zero.
    pub fn render(&self, max_cols: usize) -> String {
        assert!(max_cols > 0, "heatmap must render at least one column");
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(&format!("== {title} ==\n"));
        }
        for (label, values) in &self.rows {
            let cells = downsample(values, max_cols);
            let body: String = cells.into_iter().map(Self::shade).collect();
            out.push_str(&format!("{label:<label_w$} |{body}|\n"));
        }
        out.push_str(&format!(
            "{:<label_w$}  scale: empty '{}' .. full '{}'\n",
            "",
            RAMP[0],
            RAMP[RAMP.len() - 1]
        ));
        out
    }
}

/// Averages `values` down to at most `max_cols` buckets.
fn downsample(values: &[f64], max_cols: usize) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    if values.len() <= max_cols {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(max_cols);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_boundaries() {
        assert_eq!(Heatmap::shade(0.0), ' ');
        assert_eq!(Heatmap::shade(1.0), '@');
        assert_eq!(Heatmap::shade(-5.0), ' ');
        assert_eq!(Heatmap::shade(5.0), '@');
    }

    #[test]
    fn shade_is_monotone() {
        let shades: Vec<char> = (0..=10).map(|i| Heatmap::shade(i as f64 / 10.0)).collect();
        let ramp_pos = |c: char| RAMP.iter().position(|&r| r == c).unwrap();
        for w in shades.windows(2) {
            assert!(ramp_pos(w[1]) >= ramp_pos(w[0]));
        }
    }

    #[test]
    fn render_contains_labels_and_bars() {
        let mut h = Heatmap::new();
        h.title("Fig 13");
        h.row("rack-00", vec![1.0; 4]);
        h.row("rack-01", vec![0.0; 4]);
        let text = h.render(10);
        assert!(text.starts_with("== Fig 13 =="));
        assert!(text.contains("rack-00 |@@@@|"));
        assert!(text.contains("rack-01 |    |"));
    }

    #[test]
    fn downsample_averages() {
        assert_eq!(downsample(&[1.0, 3.0, 5.0, 7.0], 2), vec![2.0, 6.0]);
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
        assert!(downsample(&[], 5).is_empty());
    }

    #[test]
    fn render_downsamples_wide_rows() {
        let mut h = Heatmap::new();
        h.row("r", (0..1000).map(|_| 0.5).collect());
        let text = h.render(40);
        let bar = text.lines().next().unwrap();
        assert!(bar.len() < 60, "row should be compact: {bar}");
    }
}
