//! Property tests on the simulation substrate.

use proptest::prelude::*;
use simkit::detect::{Cusum, StreamDetector};
use simkit::engine::{ControlFlow, Engine};
use simkit::rng::RngStream;
use simkit::series::TimeSeries;
use simkit::stats::{OnlineStats, Summary};
use simkit::time::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine dispatches every event exactly once, in non-decreasing
    /// time order, regardless of insertion order.
    #[test]
    fn engine_dispatches_all_in_order(times in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut engine = Engine::empty();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimTime::from_millis(t), i);
        }
        let mut dispatched: Vec<(SimTime, usize)> = Vec::new();
        engine.run(|_, t, id| {
            dispatched.push((t, id));
            ControlFlow::Continue
        });
        prop_assert_eq!(dispatched.len(), times.len(), "lost or duplicated events");
        for w in dispatched.windows(2) {
            prop_assert!(w[1].0 >= w[0].0, "time went backwards");
        }
        let mut ids: Vec<usize> = dispatched.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    }

    /// Simultaneous events preserve FIFO order.
    #[test]
    fn engine_ties_are_fifo(count in 1usize..100, at in 0u64..1_000) {
        let mut engine = Engine::empty();
        for i in 0..count {
            engine.schedule(SimTime::from_millis(at), i);
        }
        let mut seen = Vec::new();
        engine.run(|_, _, id| {
            seen.push(id);
            ControlFlow::Continue
        });
        prop_assert_eq!(seen, (0..count).collect::<Vec<_>>());
    }

    /// OnlineStats merge is equivalent to sequential accumulation at any
    /// split point.
    #[test]
    fn stats_merge_any_split(values in prop::collection::vec(-1e6f64..1e6, 2..100), split_frac in 0.0f64..1.0) {
        let split = ((values.len() as f64 * split_frac) as usize).min(values.len());
        let seq: OnlineStats = values.iter().copied().collect();
        let mut a: OnlineStats = values[..split].iter().copied().collect();
        let b: OnlineStats = values[split..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() <= 1e-6 * seq.mean().abs().max(1.0));
        prop_assert!(
            (a.population_variance() - seq.population_variance()).abs()
                <= 1e-6 * seq.population_variance().abs().max(1.0)
        );
    }

    /// Percentiles are monotone and bounded by the sample extremes.
    #[test]
    fn summary_percentiles_monotone(values in prop::collection::vec(-1e3f64..1e3, 1..80)) {
        let summary: Summary = values.iter().copied().collect();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = summary.percentile(p);
            prop_assert!(v >= last - 1e-12, "percentile not monotone");
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "percentile out of range");
            last = v;
        }
    }

    /// Downsampling by mean conserves the series total (sum × step).
    #[test]
    fn downsample_mean_conserves_total(values in prop::collection::vec(0.0f64..100.0, 1..120), factor in 1usize..10) {
        let series = TimeSeries::new(SimTime::ZERO, SimDuration::SECOND, values.clone());
        let down = series.downsample_mean(factor);
        // Totals match when weighting each downsampled bucket by its
        // actual source count.
        let mut reconstructed = 0.0;
        for (i, chunk) in values.chunks(factor).enumerate() {
            reconstructed += down.values()[i] * chunk.len() as f64;
        }
        let original: f64 = values.iter().sum();
        prop_assert!((reconstructed - original).abs() < 1e-6 * original.max(1.0));
    }

    /// Forked RNG streams with different labels never produce identical
    /// prefixes.
    #[test]
    fn rng_forks_diverge(seed in 0u64..10_000, a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        prop_assume!(a != b);
        let root = RngStream::new(seed);
        let mut x = root.fork(&a);
        let mut y = root.fork(&b);
        let same = (0..16).filter(|_| x.next_u64() == y.next_u64()).count();
        prop_assert!(same < 4, "streams {a:?}/{b:?} suspiciously correlated");
    }

    /// A CUSUM detector must never fire on a constant stream, whatever
    /// the level: a flat signal has zero residual, so the cumulative
    /// sum stays at zero for any drift and threshold.
    #[test]
    fn cusum_never_fires_on_constant_input(
        level in -1e6f64..1e6,
        drift in 0.0f64..4.0,
        threshold in 0.1f64..100.0,
        n in 1usize..400,
    ) {
        let mut cusum = Cusum::new(drift, threshold);
        for i in 0..n {
            let v = cusum.push(SimTime::from_millis(i as u64 * 100), level);
            prop_assert!(!v.fired, "fired on constant input at sample {i}");
        }
        prop_assert_eq!(cusum.positive_sum(), 0.0);
    }

    /// Replaying the same stream through a clone reproduces the exact
    /// verdict sequence — the property the telemetry-replay path
    /// depends on.
    #[test]
    fn cusum_replay_is_deterministic(values in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut live = Cusum::new(0.5, 8.0);
        let mut replayed = live.clone();
        for (i, &x) in values.iter().enumerate() {
            let t = SimTime::from_millis(i as u64 * 100);
            prop_assert_eq!(live.push(t, x), replayed.push(t, x));
        }
        prop_assert_eq!(live, replayed);
    }

    /// The spike of any value through `align_down` stays within one step.
    #[test]
    fn align_down_within_step(ms in 0u64..10_000_000, step_ms in 1u64..100_000) {
        let t = SimTime::from_millis(ms);
        let step = SimDuration::from_millis(step_ms);
        let aligned = t.align_down(step);
        prop_assert!(aligned <= t);
        prop_assert!(t.saturating_since(aligned) < step);
        prop_assert_eq!(aligned.as_millis() % step_ms, 0);
    }
}
