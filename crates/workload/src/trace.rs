//! Trace records and rasterization.
//!
//! A [`TraceRecord`] mirrors one line of the paper's Google trace: "start
//! time, end time, machine ID, and CPU rate of the task". Records are
//! rasterized into a [`ClusterTrace`] — per-machine CPU-rate time series
//! at a fixed step (the paper uses 5 minutes) — by time-weighted averaging
//! within each step, exactly the "calculate the total CPU power demand
//! belong to a given machine at the same timestamp" processing of §V.

use std::sync::atomic::{AtomicUsize, Ordering};

use simkit::series::TimeSeries;
use simkit::time::{SimDuration, SimTime};

/// Process-wide count of [`ClusterTrace::parse_csv`] invocations.
static PARSE_COUNT: AtomicUsize = AtomicUsize::new(0);

/// How many times [`ClusterTrace::parse_csv`] has run in this process.
///
/// A probe for sweep tests: sharing a parsed trace behind an `Arc` must
/// mean the CSV is parsed exactly once per sweep, not once per scenario.
pub fn trace_parse_count() -> usize {
    PARSE_COUNT.load(Ordering::Relaxed)
}

/// One task's residence on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Task start time.
    pub start: SimTime,
    /// Task end time (exclusive).
    pub end: SimTime,
    /// Flat machine index.
    pub machine: usize,
    /// CPU rate consumed while running, in `[0, 1]`.
    pub cpu_rate: f64,
}

impl TraceRecord {
    /// Creates a record.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `cpu_rate` is outside `[0, 1]`.
    pub fn new(start: SimTime, end: SimTime, machine: usize, cpu_rate: f64) -> Self {
        assert!(end > start, "record must have positive duration");
        assert!(
            (0.0..=1.0).contains(&cpu_rate),
            "CPU rate must be in [0,1], got {cpu_rate}"
        );
        TraceRecord {
            start,
            end,
            machine,
            cpu_rate,
        }
    }

    /// Parses one CSV line: `start_seconds,end_seconds,machine_id,cpu_rate`
    /// (the schema the paper describes).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn parse_csv(line: &str) -> Result<Self, String> {
        let fields: Vec<&str> = line.trim().split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!("expected 4 fields, got {}: {line:?}", fields.len()));
        }
        let start: f64 = fields[0]
            .parse()
            .map_err(|e| format!("bad start time {:?}: {e}", fields[0]))?;
        let end: f64 = fields[1]
            .parse()
            .map_err(|e| format!("bad end time {:?}: {e}", fields[1]))?;
        let machine: usize = fields[2]
            .parse()
            .map_err(|e| format!("bad machine id {:?}: {e}", fields[2]))?;
        let cpu_rate: f64 = fields[3]
            .parse()
            .map_err(|e| format!("bad cpu rate {:?}: {e}", fields[3]))?;
        if end <= start {
            return Err(format!("end {end} must be after start {start}"));
        }
        if !(0.0..=1.0).contains(&cpu_rate) {
            return Err(format!("cpu rate {cpu_rate} out of [0,1]"));
        }
        Ok(TraceRecord {
            start: SimTime::from_millis((start * 1000.0).round() as u64),
            end: SimTime::from_millis((end * 1000.0).round() as u64),
            machine,
            cpu_rate,
        })
    }

    /// Formats the record back to the CSV schema.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{}",
            self.start.as_secs_f64(),
            self.end.as_secs_f64(),
            self.machine,
            self.cpu_rate
        )
    }
}

/// Per-machine CPU-rate time series for a whole cluster.
///
/// # Example
///
/// ```
/// use workload::trace::{ClusterTrace, TraceRecord};
/// use simkit::time::{SimDuration, SimTime};
///
/// let records = vec![TraceRecord::new(
///     SimTime::ZERO,
///     SimTime::from_mins(10),
///     0,
///     0.5,
/// )];
/// let trace = ClusterTrace::from_records(&records, 2, SimDuration::from_mins(5), SimTime::from_mins(20));
/// assert_eq!(trace.machine_series(0).values(), &[0.5, 0.5, 0.0, 0.0]);
/// assert_eq!(trace.machine_series(1).values(), &[0.0, 0.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTrace {
    step: SimDuration,
    series: Vec<TimeSeries>,
}

impl ClusterTrace {
    /// Rasterizes task records into per-machine utilization series.
    ///
    /// Each step holds the time-weighted average CPU rate of all tasks on
    /// that machine during the step, clamped to 1.0 (a machine cannot run
    /// above capacity).
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero, `step` is zero, `horizon` is not a
    /// positive multiple of `step`, or a record references a machine out
    /// of range.
    pub fn from_records(
        records: &[TraceRecord],
        machines: usize,
        step: SimDuration,
        horizon: SimTime,
    ) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(!step.is_zero(), "step must be non-zero");
        let steps = (horizon.saturating_since(SimTime::ZERO) / step) as usize;
        assert!(steps > 0, "horizon must cover at least one step");
        let mut grid = vec![vec![0.0f64; steps]; machines];
        let step_secs = step.as_secs_f64();
        for rec in records {
            assert!(
                rec.machine < machines,
                "record references machine {} of {machines}",
                rec.machine
            );
            let first = (rec.start.as_millis() / step.as_millis()) as usize;
            for (idx, cell) in grid[rec.machine]
                .iter_mut()
                .enumerate()
                .take(steps)
                .skip(first)
            {
                let bin_start = SimTime::from_millis(idx as u64 * step.as_millis());
                let bin_end = bin_start + step;
                if bin_start >= rec.end {
                    break;
                }
                let overlap_start = rec.start.max(bin_start);
                let overlap_end = rec.end.min(bin_end);
                let overlap = overlap_end.saturating_since(overlap_start).as_secs_f64();
                if overlap > 0.0 {
                    *cell += rec.cpu_rate * overlap / step_secs;
                }
            }
        }
        let series = grid
            .into_iter()
            .map(|mut vals| {
                for v in &mut vals {
                    *v = v.min(1.0);
                }
                TimeSeries::new(SimTime::ZERO, step, vals)
            })
            .collect();
        ClusterTrace { step, series }
    }

    /// Builds a trace directly from per-machine series (synthetic paths).
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or geometries differ.
    pub fn from_series(series: Vec<TimeSeries>) -> Self {
        let first = series.first().expect("trace needs at least one machine");
        let step = first.step();
        for s in &series {
            assert_eq!(s.step(), step, "machine series step mismatch");
            assert_eq!(s.len(), first.len(), "machine series length mismatch");
        }
        ClusterTrace { step, series }
    }

    /// Parses a whole CSV document (one record per line; blank lines and
    /// `#` comments skipped) and rasterizes it.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's error, with its line number.
    pub fn parse_csv(
        text: &str,
        machines: usize,
        step: SimDuration,
        horizon: SimTime,
    ) -> Result<Self, String> {
        PARSE_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let rec =
                TraceRecord::parse_csv(trimmed).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            records.push(rec);
        }
        Ok(ClusterTrace::from_records(
            &records, machines, step, horizon,
        ))
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.series.len()
    }

    /// The sampling step.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of samples per machine.
    pub fn steps(&self) -> usize {
        self.series[0].len()
    }

    /// End of the covered interval.
    pub fn horizon(&self) -> SimTime {
        self.series[0].end()
    }

    /// One machine's utilization series.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn machine_series(&self, machine: usize) -> &TimeSeries {
        &self.series[machine]
    }

    /// A machine's utilization at a point in time.
    pub fn utilization_at(&self, machine: usize, t: SimTime) -> f64 {
        self.series[machine].value_at(t)
    }

    /// Cluster-wide average utilization series.
    pub fn cluster_mean(&self) -> TimeSeries {
        TimeSeries::sum(self.series.iter()).map(|v| v / self.series.len() as f64)
    }

    /// Writes the trace back out as synthetic task records in the CSV
    /// schema: one record per machine per step with that step's average
    /// CPU rate (zero-rate steps are skipped). Rasterizing the output
    /// reproduces this trace exactly.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# start_secs,end_secs,machine,cpu_rate\n");
        for (m, series) in self.series.iter().enumerate() {
            for (t, v) in series.iter() {
                if v > 0.0 {
                    out.push_str(&format!(
                        "{},{},{m},{v}\n",
                        t.as_secs_f64(),
                        (t + self.step).as_secs_f64(),
                    ));
                }
            }
        }
        out
    }

    /// Aggregate utilization statistics across every machine-step sample.
    pub fn summary(&self) -> simkit::stats::OnlineStats {
        self.series
            .iter()
            .flat_map(|s| s.values().iter().copied())
            .collect()
    }

    /// Restricts the trace to the first `machines` machines (e.g. to run a
    /// small scenario from a large trace).
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero or exceeds the trace's machine count.
    pub fn take_machines(&self, machines: usize) -> ClusterTrace {
        assert!(
            machines > 0 && machines <= self.series.len(),
            "cannot take {machines} of {} machines",
            self.series.len()
        );
        ClusterTrace {
            step: self.step,
            series: self.series[..machines].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasterization_weights_partial_overlap() {
        // Task covers 7.5 of the first 10-minute bin: expect 0.75 × rate.
        let records = vec![TraceRecord::new(
            SimTime::from_mins(2) + SimDuration::from_secs(30),
            SimTime::from_mins(10),
            0,
            0.8,
        )];
        let trace = ClusterTrace::from_records(
            &records,
            1,
            SimDuration::from_mins(10),
            SimTime::from_mins(10),
        );
        let v = trace.machine_series(0).values()[0];
        assert!((v - 0.8 * 0.75).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn concurrent_tasks_sum_and_clamp() {
        let mk = |rate| TraceRecord::new(SimTime::ZERO, SimTime::from_mins(5), 0, rate);
        let trace = ClusterTrace::from_records(
            &[mk(0.7), mk(0.7)],
            1,
            SimDuration::from_mins(5),
            SimTime::from_mins(5),
        );
        assert_eq!(trace.machine_series(0).values(), &[1.0]);
    }

    #[test]
    fn csv_round_trip() {
        let rec = TraceRecord::new(SimTime::from_secs(60), SimTime::from_secs(120), 17, 0.25);
        let parsed = TraceRecord::parse_csv(&rec.to_csv()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn csv_parser_rejects_malformed() {
        assert!(TraceRecord::parse_csv("1,2,3").is_err());
        assert!(TraceRecord::parse_csv("abc,2,3,0.5").is_err());
        assert!(
            TraceRecord::parse_csv("5,2,3,0.5").is_err(),
            "end before start"
        );
        assert!(TraceRecord::parse_csv("1,2,3,1.5").is_err(), "rate > 1");
    }

    #[test]
    fn parse_csv_document_skips_comments() {
        let text = "# google-like trace\n\n0,300,0,0.5\n300,600,1,0.25\n";
        let trace =
            ClusterTrace::parse_csv(text, 2, SimDuration::from_mins(5), SimTime::from_mins(10))
                .unwrap();
        assert_eq!(trace.machine_series(0).values(), &[0.5, 0.0]);
        assert_eq!(trace.machine_series(1).values(), &[0.0, 0.25]);
    }

    #[test]
    fn parse_csv_document_reports_line_numbers() {
        let err = ClusterTrace::parse_csv(
            "0,300,0,0.5\nbogus line\n",
            1,
            SimDuration::from_mins(5),
            SimTime::from_mins(5),
        )
        .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn cluster_mean_averages_machines() {
        let records = vec![
            TraceRecord::new(SimTime::ZERO, SimTime::from_mins(5), 0, 1.0),
            TraceRecord::new(SimTime::ZERO, SimTime::from_mins(5), 1, 0.5),
        ];
        let trace = ClusterTrace::from_records(
            &records,
            2,
            SimDuration::from_mins(5),
            SimTime::from_mins(5),
        );
        assert_eq!(trace.cluster_mean().values(), &[0.75]);
    }

    #[test]
    fn to_csv_round_trips_through_rasterization() {
        let records = vec![
            TraceRecord::new(SimTime::ZERO, SimTime::from_mins(5), 0, 0.5),
            TraceRecord::new(SimTime::from_mins(5), SimTime::from_mins(10), 1, 0.25),
        ];
        let trace = ClusterTrace::from_records(
            &records,
            2,
            SimDuration::from_mins(5),
            SimTime::from_mins(10),
        );
        let csv = trace.to_csv();
        let back =
            ClusterTrace::parse_csv(&csv, 2, SimDuration::from_mins(5), SimTime::from_mins(10))
                .unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn summary_covers_all_samples() {
        let records = vec![TraceRecord::new(
            SimTime::ZERO,
            SimTime::from_mins(5),
            0,
            1.0,
        )];
        let trace = ClusterTrace::from_records(
            &records,
            2,
            SimDuration::from_mins(5),
            SimTime::from_mins(10),
        );
        let stats = trace.summary();
        assert_eq!(stats.count(), 4);
        assert!((stats.mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn take_machines_subsets() {
        let records = vec![TraceRecord::new(
            SimTime::ZERO,
            SimTime::from_mins(5),
            2,
            0.4,
        )];
        let trace = ClusterTrace::from_records(
            &records,
            3,
            SimDuration::from_mins(5),
            SimTime::from_mins(5),
        );
        let sub = trace.take_machines(2);
        assert_eq!(sub.machines(), 2);
        assert_eq!(sub.machine_series(1).values(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "machine 5")]
    fn out_of_range_machine_rejected() {
        let records = vec![TraceRecord::new(
            SimTime::ZERO,
            SimTime::from_mins(5),
            5,
            0.4,
        )];
        ClusterTrace::from_records(
            &records,
            2,
            SimDuration::from_mins(5),
            SimTime::from_mins(5),
        );
    }
}
