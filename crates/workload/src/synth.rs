//! Synthetic Google-like trace generation.
//!
//! The real May-2010 Google trace is not redistributable, so experiments
//! run on synthetic traces that match the statistics the simulator
//! actually consumes: per-machine CPU-rate series at 5-minute steps with a
//! diurnal/weekly pattern, heavy-tailed task durations and realistic
//! machine-to-machine variation (DESIGN.md documents this substitution).
//!
//! Two generation paths are provided:
//!
//! * [`SynthConfig::generate`] — the *faithful* pipeline: Poisson job
//!   arrivals (rate modulated by the diurnal curve) → heavy-tailed task
//!   fan-out → least-loaded dispatch ([`Scheduler`]) → rasterization,
//!   mirroring how the paper processes the real trace;
//! * [`SynthConfig::generate_direct`] — a fast statistical path (diurnal
//!   baseline + per-machine AR(1) noise) for month-long sweeps where the
//!   job pipeline would dominate run time. Both paths produce the same
//!   [`ClusterTrace`] type and similar aggregate statistics.

use simkit::rng::RngStream;
use simkit::series::TimeSeries;
use simkit::time::{SimDuration, SimTime};

use crate::job::{Job, JobId, TaskSpec};
use crate::scheduler::Scheduler;
use crate::trace::ClusterTrace;

/// Parameters of the synthetic trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthConfig {
    /// Number of machines (the paper's cluster: ~220).
    pub machines: usize,
    /// Covered interval.
    pub horizon: SimTime,
    /// Sampling step (the paper's trace: 5 minutes).
    pub step: SimDuration,
    /// Target long-run mean utilization per machine, in `(0, 1)`.
    pub mean_utilization: f64,
    /// Relative amplitude of the daily cycle, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Relative dip of weekend load, in `[0, 1)`.
    pub weekend_dip: f64,
    /// Task CPU-rate range `(min, max)` per task.
    pub task_cpu: (f64, f64),
    /// Minimum task duration (Pareto scale).
    pub task_duration_min: SimDuration,
    /// Pareto shape for task durations (lower = heavier tail).
    pub task_duration_alpha: f64,
    /// Cap on task durations.
    pub task_duration_cap: SimDuration,
    /// Mean number of tasks per job (geometric distribution).
    pub tasks_per_job_mean: f64,
    /// Standard deviation of the persistent per-machine utilization bias
    /// in the direct path (some machines host hot services).
    pub machine_bias_std: f64,
}

impl SynthConfig {
    /// The paper-scale configuration: 220 machines, 1 month at 5-minute
    /// steps, ~45% mean utilization.
    pub fn google_may2010() -> Self {
        SynthConfig {
            machines: 220,
            horizon: SimTime::from_hours(30 * 24),
            step: SimDuration::from_mins(5),
            mean_utilization: 0.45,
            diurnal_amplitude: 0.35,
            weekend_dip: 0.2,
            task_cpu: (0.05, 0.35),
            task_duration_min: SimDuration::from_mins(5),
            task_duration_alpha: 1.5,
            task_duration_cap: SimDuration::from_hours(6),
            tasks_per_job_mean: 2.0,
            machine_bias_std: 0.08,
        }
    }

    /// A small fast configuration for tests: 20 machines, 1 day.
    pub fn small_test() -> Self {
        SynthConfig {
            machines: 20,
            horizon: SimTime::from_hours(24),
            ..SynthConfig::google_may2010()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("machines must be positive".into());
        }
        if self.step.is_zero() || self.horizon <= SimTime::ZERO + self.step {
            return Err("horizon must cover at least one step".into());
        }
        if !(0.0 < self.mean_utilization && self.mean_utilization < 1.0) {
            return Err(format!(
                "mean utilization must be in (0,1), got {}",
                self.mean_utilization
            ));
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) || !(0.0..1.0).contains(&self.weekend_dip)
        {
            return Err("diurnal amplitude and weekend dip must be in [0,1)".into());
        }
        let (lo, hi) = self.task_cpu;
        if !(0.0 < lo && lo <= hi && hi <= 1.0) {
            return Err(format!("task cpu range invalid: ({lo}, {hi})"));
        }
        if self.task_duration_min.is_zero() || self.task_duration_alpha <= 1.0 {
            return Err("task duration scale/shape invalid (alpha must exceed 1)".into());
        }
        if self.tasks_per_job_mean < 1.0 {
            return Err("jobs must average at least one task".into());
        }
        if !(0.0..0.5).contains(&self.machine_bias_std) {
            return Err(format!(
                "machine bias std {} must be in [0, 0.5)",
                self.machine_bias_std
            ));
        }
        Ok(())
    }

    /// Relative load multiplier at time `t`: daily sine + weekend dip,
    /// normalized to average ≈ 1 over a week.
    pub fn diurnal_factor(&self, t: SimTime) -> f64 {
        let hours = t.as_secs_f64() / 3600.0;
        let day_phase = (hours % 24.0) / 24.0;
        // Peak mid-afternoon (~15:00 — sine maximum at phase 0.625),
        // trough in the small hours.
        let daily =
            1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * (day_phase - 0.375)).sin();
        let day_index = (hours / 24.0) as u64 % 7;
        let weekly = if day_index >= 5 {
            1.0 - self.weekend_dip
        } else {
            1.0 + self.weekend_dip * 2.0 / 5.0
        };
        daily * weekly
    }

    /// Mean task duration implied by the (capped) Pareto parameters.
    fn mean_task_duration_secs(&self) -> f64 {
        // Uncapped Pareto mean: α·x_min/(α−1); the cap shortens it a bit,
        // which the calibration constant below absorbs.
        let a = self.task_duration_alpha;
        (a * self.task_duration_min.as_secs_f64() / (a - 1.0))
            .min(self.task_duration_cap.as_secs_f64())
    }

    /// Job arrival rate (jobs/second) that yields the target mean
    /// utilization in steady state.
    fn arrival_rate_per_sec(&self) -> f64 {
        let mean_cpu = 0.5 * (self.task_cpu.0 + self.task_cpu.1);
        let work_per_job = self.tasks_per_job_mean * mean_cpu * self.mean_task_duration_secs();
        self.mean_utilization * self.machines as f64 / work_per_job
    }

    /// Generates the job stream (the faithful pipeline's first stage).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn generate_jobs(&self, seed: u64) -> Vec<Job> {
        self.validate().expect("invalid synth config");
        let root = RngStream::new(seed);
        let mut arrivals = root.fork("arrivals");
        let mut shape = root.fork("job-shape");
        let rate = self.arrival_rate_per_sec();

        let mut jobs = Vec::new();
        let mut id = 0u64;
        let tick = SimDuration::from_mins(1);
        let mut t = SimTime::ZERO;
        while t < self.horizon {
            let expected = rate * tick.as_secs_f64() * self.diurnal_factor(t);
            let count = arrivals.poisson(expected);
            for _ in 0..count {
                let offset = SimDuration::from_secs_f64(shape.uniform(0.0, tick.as_secs_f64()));
                let arrival = t + offset;
                let tasks = self.sample_tasks(&mut shape);
                jobs.push(Job::new(JobId(id), arrival, tasks));
                id += 1;
            }
            t += tick;
        }
        jobs
    }

    fn sample_tasks(&self, rng: &mut RngStream) -> Vec<TaskSpec> {
        // Geometric task count with the configured mean (≥ 1).
        let p = 1.0 / self.tasks_per_job_mean;
        let mut count = 1;
        while !rng.chance(p) && count < 64 {
            count += 1;
        }
        (0..count)
            .map(|_| {
                let cpu = rng.uniform(self.task_cpu.0, self.task_cpu.1);
                let dur_secs = rng
                    .pareto(
                        self.task_duration_min.as_secs_f64(),
                        self.task_duration_alpha,
                    )
                    .min(self.task_duration_cap.as_secs_f64());
                TaskSpec::new(cpu, SimDuration::from_secs_f64(dur_secs))
            })
            .collect()
    }

    /// The faithful pipeline: jobs → dispatch → rasterized trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn generate(&self, seed: u64) -> ClusterTrace {
        let jobs = self.generate_jobs(seed);
        let outcome = Scheduler::new(self.machines).run(jobs, self.horizon);
        ClusterTrace::from_records(&outcome.records, self.machines, self.step, self.horizon)
    }

    /// The fast statistical path: per-machine diurnal baseline + AR(1)
    /// noise + per-machine bias, producing the same trace shape.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn generate_direct(&self, seed: u64) -> ClusterTrace {
        self.validate().expect("invalid synth config");
        let root = RngStream::new(seed);
        let steps = (self.horizon.saturating_since(SimTime::ZERO) / self.step) as usize;
        let mut series = Vec::with_capacity(self.machines);
        for m in 0..self.machines {
            let mut rng = root.fork_indexed("machine", m);
            // Persistent per-machine bias: some machines host hot services.
            let bias = rng.normal_with(0.0, self.machine_bias_std);
            let rho = 0.9; // AR(1) persistence across 5-min steps
            let sigma = 0.05;
            let mut ar = 0.0;
            let mut values = Vec::with_capacity(steps);
            for i in 0..steps {
                let t = SimTime::from_millis(i as u64 * self.step.as_millis());
                let base = self.mean_utilization * self.diurnal_factor(t);
                ar = rho * ar + rng.normal_with(0.0, sigma);
                values.push((base + bias + ar).clamp(0.0, 1.0));
            }
            series.push(TimeSeries::new(SimTime::ZERO, self.step, values));
        }
        ClusterTrace::from_series(series)
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::google_may2010()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_hits_target_utilization_roughly() {
        let cfg = SynthConfig {
            machines: 10,
            horizon: SimTime::from_hours(12),
            ..SynthConfig::small_test()
        };
        let trace = cfg.generate(7);
        // Discard the first 2 hours of warm-up, then check the mean.
        let mean_series = trace.cluster_mean();
        let warm: Vec<f64> = mean_series.values().iter().copied().skip(24).collect();
        let mean: f64 = warm.iter().sum::<f64>() / warm.len() as f64;
        assert!(
            (0.2..=0.8).contains(&mean),
            "steady-state mean utilization {mean} far from target {}",
            cfg.mean_utilization
        );
    }

    #[test]
    fn direct_path_hits_target_utilization() {
        let cfg = SynthConfig::small_test();
        let trace = cfg.generate_direct(11);
        let mean: f64 = trace.cluster_mean().values().iter().sum::<f64>() / trace.steps() as f64;
        assert!(
            (mean - cfg.mean_utilization).abs() < 0.12,
            "direct mean {mean} vs target {}",
            cfg.mean_utilization
        );
    }

    #[test]
    fn diurnal_factor_peaks_in_afternoon() {
        let cfg = SynthConfig::google_may2010();
        let afternoon = cfg.diurnal_factor(SimTime::from_hours(15));
        let night = cfg.diurnal_factor(SimTime::from_hours(3));
        assert!(afternoon > night, "afternoon {afternoon} vs night {night}");
    }

    #[test]
    fn weekend_loads_are_lower() {
        let cfg = SynthConfig::google_may2010();
        // Same hour of day, weekday (day 2) vs weekend (day 5).
        let weekday = cfg.diurnal_factor(SimTime::from_hours(2 * 24 + 12));
        let weekend = cfg.diurnal_factor(SimTime::from_hours(5 * 24 + 12));
        assert!(weekday > weekend);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SynthConfig {
            machines: 5,
            horizon: SimTime::from_hours(3),
            ..SynthConfig::small_test()
        };
        assert_eq!(cfg.generate(3), cfg.generate(3));
        assert_ne!(cfg.generate(3), cfg.generate(4));
        assert_eq!(cfg.generate_direct(3), cfg.generate_direct(3));
        assert_ne!(cfg.generate_direct(3), cfg.generate_direct(4));
    }

    #[test]
    fn all_utilizations_in_unit_range() {
        let cfg = SynthConfig {
            machines: 8,
            horizon: SimTime::from_hours(6),
            ..SynthConfig::small_test()
        };
        for trace in [cfg.generate(5), cfg.generate_direct(5)] {
            for m in 0..trace.machines() {
                assert!(trace
                    .machine_series(m)
                    .values()
                    .iter()
                    .all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn machines_differ_from_each_other() {
        let trace = SynthConfig::small_test().generate_direct(9);
        assert_ne!(
            trace.machine_series(0).values(),
            trace.machine_series(1).values()
        );
    }

    #[test]
    fn task_durations_are_heavy_tailed() {
        let cfg = SynthConfig::small_test();
        let jobs = cfg.generate_jobs(13);
        let durations: Vec<f64> = jobs
            .iter()
            .flat_map(|j| j.tasks().iter().map(|t| t.duration.as_secs_f64()))
            .collect();
        assert!(durations.len() > 100, "too few tasks to judge tail");
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        let max = durations.iter().copied().fold(0.0, f64::max);
        // Heavy tail: the max should dwarf the mean.
        assert!(max > 5.0 * mean, "max {max} vs mean {mean}");
        // And the cap must hold.
        assert!(max <= cfg.task_duration_cap.as_secs_f64() + 1.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = SynthConfig::small_test();
        cfg.mean_utilization = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = SynthConfig::small_test();
        cfg.machines = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SynthConfig::small_test();
        cfg.task_duration_alpha = 0.9;
        assert!(cfg.validate().is_err());
        assert!(SynthConfig::google_may2010().validate().is_ok());
    }
}
