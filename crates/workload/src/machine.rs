//! Machine model for the dispatcher.
//!
//! A machine runs a set of tasks whose CPU rates sum to at most its
//! capacity (1.0 — a whole machine). The dispatcher places each task on
//! the least-loaded machine with room, matching the resource-requirement
//! dispatch described in the paper.

use simkit::time::SimTime;

/// A running task's residue on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Running {
    ends_at: SimTime,
    cpu_rate: f64,
}

/// A schedulable machine.
///
/// # Example
///
/// ```
/// use workload::machine::Machine;
/// use simkit::time::SimTime;
///
/// let mut m = Machine::new();
/// assert!(m.try_place(0.6, SimTime::from_mins(10)));
/// assert!(m.try_place(0.4, SimTime::from_mins(5)));
/// // Full now.
/// assert!(!m.try_place(0.1, SimTime::from_mins(1)));
/// // After the second task ends there is room again.
/// m.release_finished(SimTime::from_mins(6));
/// assert!(m.try_place(0.1, SimTime::from_mins(20)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Machine {
    running: Vec<Running>,
}

/// All machines have unit CPU capacity.
const CAPACITY: f64 = 1.0;

impl Machine {
    /// Creates an empty machine.
    pub fn new() -> Self {
        Machine::default()
    }

    /// Present CPU load (sum of running task rates).
    pub fn load(&self) -> f64 {
        self.running.iter().map(|r| r.cpu_rate).sum()
    }

    /// Unused CPU capacity.
    pub fn headroom(&self) -> f64 {
        (CAPACITY - self.load()).max(0.0)
    }

    /// Number of running tasks.
    pub fn task_count(&self) -> usize {
        self.running.len()
    }

    /// Places a task if it fits; returns whether it was placed.
    pub fn try_place(&mut self, cpu_rate: f64, ends_at: SimTime) -> bool {
        if cpu_rate <= self.headroom() + 1e-12 {
            self.running.push(Running { ends_at, cpu_rate });
            true
        } else {
            false
        }
    }

    /// Removes tasks that have finished by `now`; returns how many ended.
    pub fn release_finished(&mut self, now: SimTime) -> usize {
        let before = self.running.len();
        self.running.retain(|r| r.ends_at > now);
        before - self.running.len()
    }

    /// The earliest time a running task will finish, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.running.iter().map(|r| r.ends_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::SimDuration;

    #[test]
    fn load_and_headroom_track_placements() {
        let mut m = Machine::new();
        assert_eq!(m.load(), 0.0);
        assert_eq!(m.headroom(), 1.0);
        m.try_place(0.3, SimTime::from_mins(5));
        assert!((m.load() - 0.3).abs() < 1e-12);
        assert!((m.headroom() - 0.7).abs() < 1e-12);
        assert_eq!(m.task_count(), 1);
    }

    #[test]
    fn rejects_overflow() {
        let mut m = Machine::new();
        assert!(m.try_place(0.9, SimTime::from_mins(5)));
        assert!(!m.try_place(0.2, SimTime::from_mins(5)));
        assert_eq!(m.task_count(), 1);
    }

    #[test]
    fn exact_fill_is_allowed() {
        let mut m = Machine::new();
        assert!(m.try_place(0.5, SimTime::from_mins(5)));
        assert!(m.try_place(0.5, SimTime::from_mins(5)));
        assert!((m.load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn release_is_strict_on_boundary() {
        let mut m = Machine::new();
        let end = SimTime::from_mins(10);
        m.try_place(0.5, end);
        // At exactly the end time the task is done.
        assert_eq!(m.release_finished(end), 1);
        assert_eq!(m.task_count(), 0);
    }

    #[test]
    fn next_completion_is_minimum() {
        let mut m = Machine::new();
        m.try_place(0.1, SimTime::from_mins(30));
        m.try_place(0.1, SimTime::from_mins(10));
        m.try_place(0.1, SimTime::from_mins(20));
        assert_eq!(m.next_completion(), Some(SimTime::from_mins(10)));
        m.release_finished(SimTime::from_mins(10) + SimDuration::MILLISECOND);
        assert_eq!(m.next_completion(), Some(SimTime::from_mins(20)));
    }

    #[test]
    fn empty_machine_has_no_completion() {
        assert_eq!(Machine::new().next_completion(), None);
    }
}
