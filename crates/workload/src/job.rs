//! Jobs and tasks.
//!
//! "Work arrives at the cluster in the form of jobs. A job is comprised of
//! one or more tasks, each of which is accompanied by a set of resource
//! requirements used for dispatching the tasks onto machines." (§V)

use simkit::time::{SimDuration, SimTime};

/// Identifies a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Resource requirements and duration of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// CPU rate the task consumes while running, in `[0, 1]` of one
    /// machine.
    pub cpu_rate: f64,
    /// How long the task runs once placed.
    pub duration: SimDuration,
}

impl TaskSpec {
    /// Creates a task spec.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_rate` is outside `(0, 1]` or `duration` is zero.
    pub fn new(cpu_rate: f64, duration: SimDuration) -> Self {
        assert!(
            cpu_rate > 0.0 && cpu_rate <= 1.0,
            "task CPU rate must be in (0,1], got {cpu_rate}"
        );
        assert!(!duration.is_zero(), "task duration must be non-zero");
        TaskSpec { cpu_rate, duration }
    }
}

/// A job: an arrival time plus one or more tasks.
///
/// # Example
///
/// ```
/// use workload::job::{Job, JobId, TaskSpec};
/// use simkit::time::{SimDuration, SimTime};
///
/// let job = Job::new(
///     JobId(1),
///     SimTime::from_mins(10),
///     vec![TaskSpec::new(0.25, SimDuration::from_mins(30)); 4],
/// );
/// assert_eq!(job.tasks().len(), 4);
/// assert!((job.total_cpu() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    id: JobId,
    arrival: SimTime,
    tasks: Vec<TaskSpec>,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(id: JobId, arrival: SimTime, tasks: Vec<TaskSpec>) -> Self {
        assert!(!tasks.is_empty(), "a job must have at least one task");
        Job { id, arrival, tasks }
    }

    /// The job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// When the job arrives at the cluster.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// The job's tasks.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Sum of the tasks' CPU rates.
    pub fn total_cpu(&self) -> f64 {
        self.tasks.iter().map(|t| t.cpu_rate).sum()
    }

    /// The longest task duration (the job's minimum makespan).
    pub fn max_duration(&self) -> SimDuration {
        self.tasks
            .iter()
            .map(|t| t.duration)
            .fold(SimDuration::ZERO, SimDuration::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_aggregates() {
        let job = Job::new(
            JobId(7),
            SimTime::from_secs(5),
            vec![
                TaskSpec::new(0.2, SimDuration::from_mins(10)),
                TaskSpec::new(0.3, SimDuration::from_mins(20)),
            ],
        );
        assert_eq!(job.id(), JobId(7));
        assert_eq!(job.arrival(), SimTime::from_secs(5));
        assert!((job.total_cpu() - 0.5).abs() < 1e-12);
        assert_eq!(job.max_duration(), SimDuration::from_mins(20));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_job_rejected() {
        Job::new(JobId(1), SimTime::ZERO, vec![]);
    }

    #[test]
    #[should_panic(expected = "CPU rate")]
    fn zero_cpu_task_rejected() {
        TaskSpec::new(0.0, SimDuration::from_mins(1));
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_task_rejected() {
        TaskSpec::new(0.5, SimDuration::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(JobId(42).to_string(), "job-42");
    }
}
