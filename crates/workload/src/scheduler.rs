//! Event-driven task dispatcher.
//!
//! "A job is comprised of one or more tasks, each of which is accompanied
//! by a set of resource requirements used for dispatching the tasks onto
//! machines." (§V) The dispatcher places each arriving task on the
//! least-loaded machine with room; tasks that do not fit wait in a FIFO
//! backlog and are retried whenever capacity frees up.

use std::collections::VecDeque;

use simkit::engine::{ControlFlow, Engine};
use simkit::time::SimTime;

use crate::job::{Job, TaskSpec};
use crate::machine::Machine;
use crate::trace::TraceRecord;

/// Dispatcher events.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// A job's tasks become available for placement.
    JobArrival(usize),
    /// A machine may have freed capacity.
    Completion,
}

/// Outcome of a scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Placement records (input to trace rasterization).
    pub records: Vec<TraceRecord>,
    /// Tasks still waiting when the horizon was reached.
    pub unplaced: usize,
}

/// A least-loaded first-fit dispatcher over homogeneous machines.
///
/// # Example
///
/// ```
/// use workload::job::{Job, JobId, TaskSpec};
/// use workload::scheduler::Scheduler;
/// use simkit::time::{SimDuration, SimTime};
///
/// let jobs = vec![Job::new(
///     JobId(0),
///     SimTime::ZERO,
///     vec![TaskSpec::new(0.5, SimDuration::from_mins(10)); 3],
/// )];
/// let outcome = Scheduler::new(2).run(jobs, SimTime::from_hours(1));
/// assert_eq!(outcome.records.len(), 3);
/// assert_eq!(outcome.unplaced, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    machines: Vec<Machine>,
}

impl Scheduler {
    /// Creates a dispatcher over `machine_count` empty machines.
    ///
    /// # Panics
    ///
    /// Panics if `machine_count` is zero.
    pub fn new(machine_count: usize) -> Self {
        assert!(machine_count > 0, "need at least one machine");
        Scheduler {
            machines: vec![Machine::new(); machine_count],
        }
    }

    /// Dispatches `jobs` (any order; they are processed by arrival time)
    /// until `horizon`, returning the placement records.
    pub fn run(mut self, jobs: Vec<Job>, horizon: SimTime) -> ScheduleOutcome {
        let mut engine: Engine<Event> = Engine::empty();
        for (idx, job) in jobs.iter().enumerate() {
            engine.schedule(job.arrival(), Event::JobArrival(idx));
        }

        let mut records: Vec<TraceRecord> = Vec::new();
        let mut backlog: VecDeque<TaskSpec> = VecDeque::new();
        let machines = &mut self.machines;

        engine.run_until(horizon, &mut |queue, now, event| {
            // Free any capacity that has become available by now.
            for m in machines.iter_mut() {
                m.release_finished(now);
            }
            if let Event::JobArrival(idx) = event {
                backlog.extend(jobs[idx].tasks().iter().copied());
            }
            // Greedy placement: pop tasks while they fit somewhere.
            let mut requeue: VecDeque<TaskSpec> = VecDeque::new();
            while let Some(task) = backlog.pop_front() {
                let target = machines
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, m)| m.headroom() + 1e-12 >= task.cpu_rate)
                    .min_by(|(_, a), (_, b)| {
                        a.load().partial_cmp(&b.load()).expect("loads are finite")
                    });
                match target {
                    Some((mid, machine)) => {
                        let ends_at = now + task.duration;
                        let placed = machine.try_place(task.cpu_rate, ends_at);
                        debug_assert!(placed, "headroom-checked placement failed");
                        records.push(TraceRecord::new(now, ends_at, mid, task.cpu_rate));
                        // Retry the backlog when this task completes.
                        queue.push(ends_at, Event::Completion);
                    }
                    None => requeue.push_back(task),
                }
            }
            backlog = requeue;
            ControlFlow::Continue
        });

        ScheduleOutcome {
            records,
            unplaced: backlog.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use simkit::time::SimDuration;

    fn job(id: u64, arrival_mins: u64, tasks: Vec<TaskSpec>) -> Job {
        Job::new(JobId(id), SimTime::from_mins(arrival_mins), tasks)
    }

    #[test]
    fn spreads_load_least_loaded_first() {
        let jobs = vec![job(
            0,
            0,
            vec![TaskSpec::new(0.4, SimDuration::from_mins(30)); 4],
        )];
        let outcome = Scheduler::new(2).run(jobs, SimTime::from_hours(1));
        assert_eq!(outcome.unplaced, 0);
        // 4 × 0.4 across 2 machines: 2 tasks each (0.8 load per machine).
        let on_m0 = outcome.records.iter().filter(|r| r.machine == 0).count();
        let on_m1 = outcome.records.iter().filter(|r| r.machine == 1).count();
        assert_eq!(on_m0, 2);
        assert_eq!(on_m1, 2);
    }

    #[test]
    fn queues_when_cluster_full_and_drains_on_completion() {
        let jobs = vec![
            job(0, 0, vec![TaskSpec::new(1.0, SimDuration::from_mins(10))]),
            job(1, 1, vec![TaskSpec::new(1.0, SimDuration::from_mins(10))]),
        ];
        let outcome = Scheduler::new(1).run(jobs, SimTime::from_hours(1));
        assert_eq!(outcome.unplaced, 0);
        assert_eq!(outcome.records.len(), 2);
        // Second task starts when the first finishes.
        assert_eq!(outcome.records[1].start, SimTime::from_mins(10));
    }

    #[test]
    fn unplaced_tasks_reported_at_horizon() {
        let jobs = vec![job(
            0,
            0,
            vec![TaskSpec::new(1.0, SimDuration::from_hours(10)); 3],
        )];
        let outcome = Scheduler::new(1).run(jobs, SimTime::from_hours(1));
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.unplaced, 2);
    }

    #[test]
    fn respects_arrival_order_across_jobs() {
        let jobs = vec![
            job(1, 20, vec![TaskSpec::new(0.5, SimDuration::from_mins(5))]),
            job(0, 10, vec![TaskSpec::new(0.5, SimDuration::from_mins(5))]),
        ];
        let outcome = Scheduler::new(1).run(jobs, SimTime::from_hours(1));
        assert_eq!(outcome.records[0].start, SimTime::from_mins(10));
        assert_eq!(outcome.records[1].start, SimTime::from_mins(20));
    }

    #[test]
    fn deterministic_given_same_input() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                job(
                    i,
                    i % 7,
                    vec![TaskSpec::new(0.3, SimDuration::from_mins(15 + i)); 2],
                )
            })
            .collect();
        let a = Scheduler::new(4).run(jobs.clone(), SimTime::from_hours(2));
        let b = Scheduler::new(4).run(jobs, SimTime::from_hours(2));
        assert_eq!(a, b);
    }
}
