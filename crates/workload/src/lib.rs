//! Workload substrate: Google-cluster-style traces.
//!
//! The paper drives its simulator with "a Google compute cluster trace …
//! 1-month worth of node information from May 2010, on a cluster of about
//! 220 machines. Work arrives at the cluster in the form of jobs. A job is
//! comprised of one or more tasks … Every line in this trace includes
//! start time, end time, machine ID, and CPU rate of the task." (§V)
//!
//! That trace is not redistributable, so this crate provides both:
//!
//! * [`trace`] — the record model plus a CSV parser for the real trace
//!   format, and rasterization of task records into per-machine CPU-rate
//!   time series at the paper's 5-minute granularity;
//! * [`synth`] — a statistically matched synthetic generator (Poisson job
//!   arrivals modulated by a diurnal/weekly pattern, heavy-tailed task
//!   durations, least-loaded placement) that produces the same
//!   [`trace::ClusterTrace`] shape the simulator consumes.
//!
//! Jobs, tasks, machines and the dispatcher live in [`job`], [`machine`]
//! and [`scheduler`].
//!
//! # Example
//!
//! ```
//! use workload::synth::SynthConfig;
//!
//! // A small synthetic cluster: 20 machines, 1 day at 5-minute steps.
//! let trace = SynthConfig::small_test().generate(42);
//! assert_eq!(trace.machines(), 20);
//! // Utilizations are valid rates.
//! for m in 0..trace.machines() {
//!     assert!(trace.machine_series(m).values().iter().all(|&u| (0.0..=1.0).contains(&u)));
//! }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod job;
pub mod machine;
pub mod scheduler;
pub mod synth;
pub mod trace;

/// Convenient re-exports of the most common `workload` items.
pub mod prelude {
    pub use crate::job::{Job, JobId, TaskSpec};
    pub use crate::machine::Machine;
    pub use crate::scheduler::Scheduler;
    pub use crate::synth::SynthConfig;
    pub use crate::trace::{ClusterTrace, TraceRecord};
}

pub use job::{Job, JobId, TaskSpec};
pub use scheduler::Scheduler;
pub use synth::SynthConfig;
pub use trace::{ClusterTrace, TraceRecord};
