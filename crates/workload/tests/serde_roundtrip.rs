//! Serde round-trip tests (only built with `--features serde`).
#![cfg(feature = "serde")]

use simkit::time::{SimDuration, SimTime};
use workload::synth::SynthConfig;
use workload::trace::TraceRecord;

#[test]
fn trace_record_json_round_trip() {
    let rec = TraceRecord::new(SimTime::from_secs(60), SimTime::from_secs(360), 17, 0.375);
    let json = serde_json::to_string(&rec).unwrap();
    let back: TraceRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(back, rec);
}

#[test]
fn synth_config_json_round_trip() {
    let cfg = SynthConfig {
        machines: 12,
        horizon: SimTime::from_hours(6),
        mean_utilization: 0.4,
        ..SynthConfig::small_test()
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SynthConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
    // And the deserialized config generates the identical trace.
    assert_eq!(back.generate_direct(5), cfg.generate_direct(5));
}

#[test]
fn durations_serialize_as_integers() {
    let json = serde_json::to_string(&SimDuration::from_secs(5)).unwrap();
    assert_eq!(json, "5000");
}
