//! Property tests on the workload substrate: scheduler capacity safety,
//! rasterization conservation, generator validity.

use proptest::prelude::*;
use simkit::time::{SimDuration, SimTime};
use workload::job::{Job, JobId, TaskSpec};
use workload::scheduler::Scheduler;
use workload::synth::SynthConfig;
use workload::trace::{ClusterTrace, TraceRecord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The dispatcher never overcommits a machine: at every placement
    /// boundary, concurrent CPU on each machine stays within 1.0.
    #[test]
    fn scheduler_never_overcommits(
        jobs_spec in prop::collection::vec(
            (0u64..120, 0.05f64..0.9, 1u64..90, 1usize..4),
            1..30,
        ),
        machines in 1usize..6,
    ) {
        let jobs: Vec<Job> = jobs_spec
            .iter()
            .enumerate()
            .map(|(i, &(arrival, cpu, mins, tasks))| {
                Job::new(
                    JobId(i as u64),
                    SimTime::from_mins(arrival),
                    vec![TaskSpec::new(cpu, SimDuration::from_mins(mins)); tasks],
                )
            })
            .collect();
        let outcome = Scheduler::new(machines).run(jobs, SimTime::from_hours(8));
        // Check overlap loads per machine at each record start.
        for probe in &outcome.records {
            let load: f64 = outcome
                .records
                .iter()
                .filter(|r| {
                    r.machine == probe.machine
                        && r.start <= probe.start
                        && r.end > probe.start
                })
                .map(|r| r.cpu_rate)
                .sum();
            prop_assert!(load <= 1.0 + 1e-6, "machine {} at {:?} loaded {load}", probe.machine, probe.start);
        }
    }

    /// Rasterization conserves work: total machine-seconds of CPU in the
    /// grid equals the records' cpu×duration. One record per machine, so
    /// the capacity clamp (which intentionally discards work above 1.0)
    /// never triggers.
    #[test]
    fn rasterization_conserves_work(
        recs in prop::collection::vec((0u64..120, 1u64..60, 0.05f64..1.0), 1..20),
    ) {
        let machines = recs.len();
        let records: Vec<TraceRecord> = recs
            .iter()
            .enumerate()
            .map(|(machine, &(start, dur, cpu))| {
                TraceRecord::new(
                    SimTime::from_mins(start),
                    SimTime::from_mins(start + dur),
                    machine,
                    cpu,
                )
            })
            .collect();
        let horizon = SimTime::from_hours(3);
        let step = SimDuration::from_mins(5);
        let trace = ClusterTrace::from_records(&records, machines, step, horizon);
        let expected: f64 = records
            .iter()
            .map(|r| r.cpu_rate * r.end.saturating_since(r.start).as_secs_f64())
            .sum();
        let actual: f64 = (0..machines)
            .map(|m| {
                trace
                    .machine_series(m)
                    .values()
                    .iter()
                    .sum::<f64>()
                    * step.as_secs_f64()
            })
            .sum();
        prop_assert!(
            (actual - expected).abs() < 1e-6 * expected.max(1.0),
            "work {actual} vs expected {expected}"
        );
    }

    /// With stacked records the clamp only ever *removes* work: the grid
    /// total never exceeds the records' total, and never exceeds the
    /// machine-capacity bound.
    #[test]
    fn rasterization_clamps_downward_only(
        recs in prop::collection::vec(
            (0u64..120, 1u64..60, 0usize..3, 0.1f64..1.0),
            1..24,
        ),
    ) {
        let records: Vec<TraceRecord> = recs
            .iter()
            .map(|&(start, dur, machine, cpu)| {
                TraceRecord::new(
                    SimTime::from_mins(start),
                    SimTime::from_mins(start + dur),
                    machine,
                    cpu,
                )
            })
            .collect();
        let horizon = SimTime::from_hours(3);
        let step = SimDuration::from_mins(5);
        let trace = ClusterTrace::from_records(&records, 3, step, horizon);
        let offered: f64 = records
            .iter()
            .map(|r| r.cpu_rate * r.end.saturating_since(r.start).as_secs_f64())
            .sum();
        let gridded: f64 = (0..3)
            .map(|m| {
                trace.machine_series(m).values().iter().sum::<f64>() * step.as_secs_f64()
            })
            .sum();
        prop_assert!(gridded <= offered + 1e-6, "grid {gridded} above offered {offered}");
        // Per-machine capacity bound: 1.0 for the whole horizon.
        for m in 0..3 {
            let total: f64 =
                trace.machine_series(m).values().iter().sum::<f64>() * step.as_secs_f64();
            prop_assert!(total <= horizon.as_secs_f64() + 1e-6);
        }
    }

    /// Both generator paths yield traces with the requested geometry and
    /// valid values for any sane configuration.
    #[test]
    fn generator_geometry(
        machines in 1usize..12,
        hours in 2u64..8,
        mean in 0.1f64..0.8,
        seed in 0u64..1_000,
    ) {
        let cfg = SynthConfig {
            machines,
            horizon: SimTime::from_hours(hours),
            mean_utilization: mean,
            ..SynthConfig::small_test()
        };
        let trace = cfg.generate_direct(seed);
        prop_assert_eq!(trace.machines(), machines);
        prop_assert_eq!(trace.steps() as u64, hours * 12);
        for m in 0..machines {
            for &v in trace.machine_series(m).values() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    /// CSV round trip: records survive format/parse unchanged.
    #[test]
    fn csv_round_trip(
        start in 0u64..100_000,
        dur in 1u64..100_000,
        machine in 0usize..1_000,
        cpu in 0.0f64..=1.0,
    ) {
        let rec = TraceRecord::new(
            SimTime::from_secs(start),
            SimTime::from_secs(start + dur),
            machine,
            cpu,
        );
        let parsed = TraceRecord::parse_csv(&rec.to_csv()).unwrap();
        prop_assert_eq!(parsed, rec);
    }
}
