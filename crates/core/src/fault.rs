//! Fault injection and the graceful-degradation control plane.
//!
//! [`SimFaults`] applies a deterministic [`FaultPlan`] to a running
//! [`ClusterSim`](crate::sim::ClusterSim), exercising the failure modes a
//! battery-backed defense must ride through:
//!
//! * **Sensor faults** corrupt the SOC readings Algorithm 1 and the PAD
//!   policy see — never the ground-truth battery state. A biased or
//!   stuck sensor steers the pooled-discharge plan; the vDEB sanitizer
//!   and the policy hold-down are what keep a single bad reading from
//!   flapping the defense.
//! * **Message faults** perturb the slow management loop: the vDEB
//!   coordinator's per-rack plan entries can be lost (with bounded
//!   retry), delayed by whole coordinator rounds, or reordered, so racks
//!   operate on stale plans.
//! * **Component faults** degrade the physical layer: µDEB converter
//!   outages, breaker derating (narrowed thermal headroom), and battery
//!   capacity fade.
//!
//! Graceful degradation is the other half: a per-rack staleness watchdog
//! notices when no coordinator plan has arrived within
//! [`DegradedConfig::watchdog_timeout`] and falls back to safe local
//! control — planned discharge capped at `P_ideal` and driven by the
//! rack's *current local* excess instead of the stale global plan, gated
//! on a pessimistically decayed last-known-good SOC. Without the
//! fallback a stale non-zero plan keeps draining the pool long after the
//! excess it was computed for has passed.
//!
//! All randomness derives from per-spec/per-unit forks of a root stream
//! seeded by the `(seed, scenario_index)` contract
//! ([`simkit::fault::spec_stream`] / [`simkit::fault::unit_stream`]), so
//! faulted sweeps stay byte-identical across worker counts.

use std::collections::VecDeque;

use battery::units::Watts;
use simkit::fault::{spec_stream, unit_stream, FaultKind, FaultPlan, FaultSpec, FaultTarget};
use simkit::rng::RngStream;
use simkit::time::{SimDuration, SimTime};

use crate::vdeb::{DeliveryOutcome, RackHeld, RoundMsg};

/// How many coordinator rounds of plan history are retained for
/// [`FaultKind::MsgDelay`] / [`FaultKind::MsgReorder`] resolution.
const PLAN_HISTORY: usize = 9;

/// Tunables of the graceful-degradation control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedConfig {
    /// A rack that has not received a coordinator plan for this long
    /// falls back to safe local control. Should be a small multiple of
    /// the grant interval; [`DegradedConfig::for_grant_interval`] picks
    /// three rounds.
    pub watchdog_timeout: SimDuration,
    /// How long a delivered outlet grant stays spendable, measured from
    /// the round's *issue* time. One grant interval (the
    /// [`DegradedConfig::for_grant_interval`] choice) means at most one
    /// round's grants are live at any instant, which is what keeps the
    /// Eq. 2 budget bound across rounds: a rack that stops hearing the
    /// coordinator stops spending shared headroom after one interval,
    /// even before the watchdog fires.
    pub grant_lease: SimDuration,
    /// Extra delivery attempts per coordinator round when a message is
    /// lost (bounded retry; the round period dwarfs the per-message
    /// backoff, so retries resolve within the round).
    pub retry_limit: u32,
    /// How fast the fallback's last-known-good SOC estimate decays, in
    /// SOC fraction per hour. Pessimism: a rack that has been deaf for
    /// an hour assumes its battery is this much emptier than last
    /// reported, and refuses planned discharge once the estimate falls
    /// to the vDEB reserve.
    pub soc_decay_per_hour: f64,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            watchdog_timeout: SimDuration::from_secs(30),
            grant_lease: SimDuration::from_secs(10),
            retry_limit: 1,
            soc_decay_per_hour: 0.25,
        }
    }
}

impl DegradedConfig {
    /// A watchdog sized to the management loop — three missed rounds —
    /// with grant leases of exactly one round.
    pub fn for_grant_interval(grant_interval: SimDuration) -> Self {
        DegradedConfig {
            watchdog_timeout: grant_interval * 3,
            grant_lease: grant_interval,
            ..DegradedConfig::default()
        }
    }

    /// Disables the staleness fallback (for ablation runs): the watchdog
    /// never fires.
    pub fn without_fallback(self) -> Self {
        DegradedConfig {
            watchdog_timeout: SimDuration::from_hours(24 * 365),
            ..self
        }
    }

    /// Disables grant-lease expiry (for ablation runs and the model
    /// checker's known-violation replay): held grants stay spendable
    /// forever, reintroducing the cross-round double-spend.
    pub fn without_lease_expiry(self) -> Self {
        DegradedConfig {
            grant_lease: SimDuration::from_hours(24 * 365),
            ..self
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.watchdog_timeout.is_zero() {
            return Err("watchdog timeout must be non-zero".into());
        }
        if self.grant_lease.is_zero() {
            return Err("grant lease must be non-zero".into());
        }
        if !self.soc_decay_per_hour.is_finite() || self.soc_decay_per_hour < 0.0 {
            return Err(format!(
                "SOC decay {} must be finite and >= 0",
                self.soc_decay_per_hour
            ));
        }
        Ok(())
    }
}

/// A fault window opening or closing, reported by
/// [`SimFaults::begin_step`] so the host can emit telemetry events,
/// spans, and apply/restore component faults exactly on the edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEdge {
    /// Index of the spec within the plan.
    pub spec: usize,
    /// The fault kind.
    pub kind: FaultKind,
    /// The fault target.
    pub target: FaultTarget,
    /// `true` when the window opened, `false` when it closed.
    pub injected: bool,
}

/// Running totals of what the injector actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Fault windows opened.
    pub injected: u64,
    /// Fault windows closed.
    pub cleared: u64,
    /// SOC readings altered by a sensor fault.
    pub readings_corrupted: u64,
    /// SOC readings dropped (consumer kept the stale value).
    pub readings_dropped: u64,
    /// Per-rack plan entries lost after all retries.
    pub plans_lost: u64,
    /// Per-rack plan entries delivered from an older round (delay).
    pub plans_delayed: u64,
    /// Per-rack plan entries swapped with the previous round (reorder).
    pub plans_reordered: u64,
    /// Deliveries ignored as replays of a round the rack already held
    /// (the idempotent receive path; a duplicate never re-applies a
    /// grant and never refreshes the staleness clock).
    pub plans_duplicate: u64,
    /// Extra delivery attempts spent by the bounded retry.
    pub retries_used: u64,
    /// Rack-ticks spent in watchdog fallback.
    pub fallback_ticks: u64,
    /// Distinct fallback entries (rising edges).
    pub fallback_entries: u64,
}

/// Summary of a faulted run, rendered as JSON for `fault_report.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Name of the plan that was injected.
    pub plan: String,
    /// Number of specs in the plan.
    pub specs: usize,
    /// What the injector did.
    pub counters: FaultCounters,
}

impl FaultReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        format!(
            concat!(
                "{{\"plan\":{:?},\"specs\":{},",
                "\"injected\":{},\"cleared\":{},",
                "\"readings_corrupted\":{},\"readings_dropped\":{},",
                "\"plans_lost\":{},\"plans_delayed\":{},\"plans_reordered\":{},",
                "\"plans_duplicate\":{},\"retries_used\":{},",
                "\"fallback_ticks\":{},\"fallback_entries\":{}}}"
            ),
            self.plan,
            self.specs,
            c.injected,
            c.cleared,
            c.readings_corrupted,
            c.readings_dropped,
            c.plans_lost,
            c.plans_delayed,
            c.plans_reordered,
            c.plans_duplicate,
            c.retries_used,
            c.fallback_ticks,
            c.fallback_entries,
        )
    }
}

/// One retained coordinator round: the stamp that makes delayed
/// deliveries arrive pre-aged (lease keyed to `issued_at`, idempotence
/// keyed to `round`).
#[derive(Debug, Clone)]
struct RoundEntry {
    round: u64,
    issued_at: SimTime,
    plans: Vec<Watts>,
    grants: Vec<Watts>,
}

/// The per-simulation fault injector and degraded-mode state machine.
///
/// Owned by the simulator (see `ClusterSim::enable_faults`); every hook
/// is deterministic given the plan, the degraded-mode config, and the
/// seed.
#[derive(Debug, Clone)]
pub struct SimFaults {
    plan: FaultPlan,
    config: DegradedConfig,
    /// Per-spec window state for edge detection.
    active: Vec<bool>,
    /// Per-spec streams (message faults draw per rack from unit forks).
    unit_rngs: Vec<Vec<RngStream>>,
    /// Last SOC value actually delivered per rack (dropout holds it).
    last_sensor: Vec<f64>,
    /// Recent coordinator rounds, newest first, stamped with their round
    /// counter and issue time so delayed deliveries carry the original
    /// lease clock.
    history: VecDeque<RoundEntry>,
    /// Last-known-good SOC per rack and when it was learned.
    last_good_soc: Vec<(SimTime, f64)>,
    /// Which racks are currently in watchdog fallback.
    fallback: Vec<bool>,
    counters: FaultCounters,
}

impl SimFaults {
    /// Builds an injector for `racks` racks, armed at sim-time `now`
    /// with the current SOC vector (so the watchdog and the fallback's
    /// last-known-good estimates start from a delivered state, not from
    /// zero).
    ///
    /// `seed` should be the scenario seed (`scenario_seed(seed, index)`
    /// in sweeps); the root stream is forked under a `"faults"` label so
    /// fault draws never interleave with demand jitter.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid plan spec or config
    /// field.
    pub fn new(
        plan: FaultPlan,
        config: DegradedConfig,
        seed: u64,
        now: SimTime,
        socs: &[f64],
    ) -> Result<SimFaults, String> {
        plan.validate()?;
        config.validate()?;
        let root = RngStream::new(seed).fork("faults");
        let racks = socs.len();
        let unit_rngs = (0..plan.len())
            .map(|i| {
                // The spec fork exists so adding racks never perturbs
                // other specs' streams; unit forks never consume it.
                let _ = spec_stream(&root, i);
                (0..racks).map(|u| unit_stream(&root, i, u)).collect()
            })
            .collect();
        Ok(SimFaults {
            active: vec![false; plan.len()],
            unit_rngs,
            last_sensor: socs.to_vec(),
            history: VecDeque::new(),
            last_good_soc: socs.iter().map(|&s| (now, s)).collect(),
            fallback: vec![false; racks],
            counters: FaultCounters::default(),
            plan,
            config,
        })
    }

    /// The injected plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The degraded-mode configuration.
    pub fn config(&self) -> &DegradedConfig {
        &self.config
    }

    /// Running counters.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Summarizes the run so far.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            plan: self.plan.name().to_string(),
            specs: self.plan.len(),
            counters: self.counters,
        }
    }

    /// Detects fault windows opening or closing at `now`.
    ///
    /// Call once per step before any other hook; the returned edges are
    /// in spec order (opens and closes interleaved as scheduled).
    pub fn begin_step(&mut self, now: SimTime) -> Vec<FaultEdge> {
        let mut edges = Vec::new();
        for (i, spec) in self.plan.specs().iter().enumerate() {
            let on = spec.active_at(now);
            if on != self.active[i] {
                self.active[i] = on;
                if on {
                    self.counters.injected += 1;
                } else {
                    self.counters.cleared += 1;
                }
                edges.push(FaultEdge {
                    spec: i,
                    kind: spec.kind,
                    target: spec.target,
                    injected: on,
                });
            }
        }
        edges
    }

    /// Active specs at `now` covering `unit`, as `(index, spec)` pairs.
    fn active_on(&self, now: SimTime, unit: usize) -> impl Iterator<Item = (usize, &FaultSpec)> {
        self.plan
            .active_at(now)
            .filter(move |(_, s)| s.target.covers(unit))
    }

    /// Effective breaker-rating multiplier for rack `r` at `now` (the
    /// most severe active [`FaultKind::ComponentDerate`] wins).
    pub fn breaker_derate(&self, now: SimTime, r: usize) -> f64 {
        self.active_on(now, r)
            .filter_map(|(_, s)| match s.kind {
                FaultKind::ComponentDerate { factor } => Some(factor),
                _ => None,
            })
            .fold(1.0, f64::min)
    }

    /// Effective usable-capacity multiplier for rack `r`'s cabinet at
    /// `now` (the most severe active [`FaultKind::CapacityFade`] wins).
    pub fn capacity_factor(&self, now: SimTime, r: usize) -> f64 {
        self.active_on(now, r)
            .filter_map(|(_, s)| match s.kind {
                FaultKind::CapacityFade { factor } => Some(factor),
                _ => None,
            })
            .fold(1.0, f64::min)
    }

    /// `true` if rack `r`'s µDEB converter is under an active
    /// [`FaultKind::ComponentOutage`] window at `now`.
    pub fn udeb_out(&self, now: SimTime, r: usize) -> bool {
        self.active_on(now, r)
            .any(|(_, s)| matches!(s.kind, FaultKind::ComponentOutage))
    }

    /// `true` while any [`FaultKind::ComponentOutage`] window is open at
    /// `now`, on any target — the host's cheap gate before building a
    /// per-rack outage map.
    pub fn outage_active(&self, now: SimTime) -> bool {
        self.plan
            .active_at(now)
            .any(|(_, s)| matches!(s.kind, FaultKind::ComponentOutage))
    }

    /// `true` while any sensor-layer fault window is open at `now` —
    /// when `false`, [`report_socs`] would be an identity copy (it draws
    /// no randomness and updates no dropout state), so the host can skip
    /// it on the hot path.
    ///
    /// [`report_socs`]: SimFaults::report_socs
    pub fn sensor_active(&self, now: SimTime) -> bool {
        self.plan.active_at(now).any(|(_, s)| {
            matches!(
                s.kind,
                FaultKind::SensorNoise { .. }
                    | FaultKind::SensorBias { .. }
                    | FaultKind::SensorStuckAt { .. }
                    | FaultKind::SensorDropout { .. }
            )
        })
    }

    /// `true` while at least one rack is in watchdog fallback.
    pub fn any_fallback(&self) -> bool {
        self.fallback.iter().any(|&b| b)
    }

    /// Corrupts an SOC sensor sweep: what the control plane reads at
    /// `now` given ground truth `socs`. Specs apply in plan order, each
    /// composing on the previous output; dropout holds the last value
    /// this injector actually delivered. Ground truth is never touched,
    /// and the output is deliberately *not* clamped — feeding hostile
    /// readings to the planner is the point (the vDEB sanitizer clamps
    /// at the consumer).
    pub fn report_socs(&mut self, now: SimTime, socs: &[f64]) -> Vec<f64> {
        let mut out = socs.to_vec();
        for i in 0..self.plan.len() {
            let spec = self.plan.specs()[i];
            if !spec.active_at(now) {
                continue;
            }
            for (r, value) in out.iter_mut().enumerate() {
                if !spec.target.covers(r) {
                    continue;
                }
                match spec.kind {
                    FaultKind::SensorNoise { std } => {
                        *value += self.unit_rngs[i][r].normal_with(0.0, std);
                        self.counters.readings_corrupted += 1;
                    }
                    FaultKind::SensorBias { delta } => {
                        *value += delta;
                        self.counters.readings_corrupted += 1;
                    }
                    FaultKind::SensorStuckAt { value: stuck } => {
                        *value = stuck;
                        self.counters.readings_corrupted += 1;
                    }
                    FaultKind::SensorDropout { p } => {
                        // One draw per covered rack whether or not it
                        // drops, so window edges never shift the stream.
                        let dropped = self.unit_rngs[i][r].chance(p);
                        if dropped {
                            *value = self.last_sensor[r];
                            self.counters.readings_dropped += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.last_sensor.copy_from_slice(&out);
        out
    }

    /// Delivers a freshly computed coordinator round — per-rack plan
    /// entries *and* outlet-budget grants, which travel in the same
    /// message, stamped with `round` and issued at `now` — through the
    /// faulted control path, updating each rack's [`RackHeld`] state in
    /// place via the idempotent receive path.
    ///
    /// Per rack, in order: **delay** picks an older round from the
    /// round history, **reorder** swaps this round with the previous
    /// one, and **loss** drops the delivery outright after
    /// [`DegradedConfig::retry_limit`] extra attempts. A rack whose
    /// delivery is lost keeps its stale held state and its staleness
    /// clock keeps running. A delivery that reaches the rack is applied
    /// through [`RackHeld::receive`]: only a strictly newer round is
    /// adopted (refreshing the staleness clock and the last-known-good
    /// SOC from the possibly sensor-corrupted `reported_socs`); replays
    /// of the held round or older are counted as duplicates and ignored,
    /// so a re-delivered grant can never be spent twice or talk a rack
    /// out of watchdog fallback.
    pub fn deliver_plan(
        &mut self,
        now: SimTime,
        round: u64,
        computed: &[Watts],
        computed_grants: &[Watts],
        reported_socs: &[f64],
        held: &mut [RackHeld],
    ) {
        self.history.push_front(RoundEntry {
            round,
            issued_at: now,
            plans: computed.to_vec(),
            grants: computed_grants.to_vec(),
        });
        self.history.truncate(PLAN_HISTORY);
        for r in 0..held.len() {
            // Delay: the entry this rack would receive now is the one
            // computed `rounds` rounds ago. If that round predates the
            // injector, nothing arrives yet.
            let mut age = 0usize;
            let mut delayed = false;
            for (_, spec) in self.plan.active_at(now).filter(|(_, s)| s.target.covers(r)) {
                if let FaultKind::MsgDelay { rounds } = spec.kind {
                    age = age.max(rounds as usize);
                    delayed = true;
                }
            }
            if delayed {
                self.counters.plans_delayed += 1;
            }
            // Reorder: swap with the adjacent (previous) round.
            for i in 0..self.plan.len() {
                let spec = self.plan.specs()[i];
                if !spec.active_at(now) || !spec.target.covers(r) {
                    continue;
                }
                if let FaultKind::MsgReorder { p } = spec.kind {
                    if self.unit_rngs[i][r].chance(p) {
                        age += 1;
                        self.counters.plans_reordered += 1;
                    }
                }
            }
            if age >= self.history.len() {
                // The delayed round predates recorded history: no
                // delivery this round.
                self.counters.plans_lost += 1;
                continue;
            }
            // Loss with bounded retry, per active loss spec.
            let mut lost = false;
            for i in 0..self.plan.len() {
                let spec = self.plan.specs()[i];
                if !spec.active_at(now) || !spec.target.covers(r) {
                    continue;
                }
                if let FaultKind::MsgLoss { p } = spec.kind {
                    let mut through = false;
                    for attempt in 0..=self.config.retry_limit {
                        if attempt > 0 {
                            self.counters.retries_used += 1;
                        }
                        if !self.unit_rngs[i][r].chance(p) {
                            through = true;
                            break;
                        }
                    }
                    if !through {
                        lost = true;
                    }
                }
            }
            if lost {
                self.counters.plans_lost += 1;
                continue;
            }
            let entry = &self.history[age];
            let msg = RoundMsg {
                round: entry.round,
                issued_at: entry.issued_at,
                plan: entry.plans[r],
                grant: entry.grants[r],
            };
            match held[r].receive(&msg, now) {
                DeliveryOutcome::Fresh => {
                    self.last_good_soc[r] = (now, reported_socs[r]);
                }
                DeliveryOutcome::Duplicate => {
                    self.counters.plans_duplicate += 1;
                }
            }
        }
    }

    /// Advances the per-rack staleness watchdog at `now` against each
    /// rack's held-state staleness clock, returning the racks whose
    /// fallback state changed as `(rack, entered)` edges.
    pub fn watchdog_tick(&mut self, now: SimTime, held: &[RackHeld]) -> Vec<(usize, bool)> {
        let mut edges = Vec::new();
        for (r, fallback) in self.fallback.iter_mut().enumerate() {
            if let Some(stale) =
                crate::vdeb::watchdog_edge(&held[r], now, self.config.watchdog_timeout, fallback)
            {
                if stale {
                    self.counters.fallback_entries += 1;
                }
                edges.push((r, stale));
            }
            if *fallback {
                self.counters.fallback_ticks += 1;
            }
        }
        edges
    }

    /// `true` if rack `r` is currently in watchdog fallback.
    pub fn fallback_active(&self, r: usize) -> bool {
        self.fallback[r]
    }

    /// The fallback's pessimistic SOC estimate for rack `r` at `now`:
    /// last-known-good decayed at [`DegradedConfig::soc_decay_per_hour`].
    pub fn decayed_soc(&self, now: SimTime, r: usize) -> f64 {
        let (stamp, soc) = self.last_good_soc[r];
        let hours = now.saturating_since(stamp).as_hours_f64();
        (soc - self.config.soc_decay_per_hour * hours).max(0.0)
    }

    /// Safe local discharge cap for a fallback rack: `P_ideal` while the
    /// decayed SOC estimate clears the vDEB reserve, zero once it does
    /// not (a deaf rack never deep-discharges on guesswork).
    pub fn fallback_cap(&self, now: SimTime, r: usize, p_ideal: Watts, reserve: f64) -> Watts {
        if self.decayed_soc(now, r) > reserve {
            p_ideal
        } else {
            Watts::ZERO
        }
    }
}

/// Names of the built-in fault plans, for CLI listings.
pub const NAMED_PLANS: [&str; 4] = ["ci-smoke", "sensor-storm", "partition", "brownout"];

/// Looks up a built-in fault plan by name.
///
/// Windows are written for the default `padsim fault` timeline (attack
/// at minute 10 of a 30-minute run) but degrade gracefully on other
/// horizons: anything scheduled past the end simply never fires.
///
/// * `ci-smoke` — one fault from each layer, mild parameters; the CI
///   fault-suite plan.
/// * `sensor-storm` — every sensor fault kind at once on the SOC path.
/// * `partition` — the coordinator link mostly dark: heavy loss plus
///   delay and reordering.
/// * `brownout` — physical-layer degradation: derated breakers, faded
///   batteries, a µDEB outage.
pub fn named_plan(name: &str) -> Option<FaultPlan> {
    let m = SimTime::from_mins;
    let plan = match name {
        "ci-smoke" => FaultPlan::new("ci-smoke")
            .with(FaultSpec::new(
                FaultKind::SensorNoise { std: 0.05 },
                FaultTarget::All,
                m(5),
                m(15),
            ))
            .with(FaultSpec::new(
                FaultKind::MsgLoss { p: 0.3 },
                FaultTarget::All,
                m(10),
                m(20),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentOutage,
                FaultTarget::Unit(0),
                m(12),
                m(18),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentDerate { factor: 0.9 },
                FaultTarget::All,
                m(8),
                m(25),
            ))
            .with(FaultSpec::new(
                FaultKind::CapacityFade { factor: 0.85 },
                FaultTarget::Unit(1),
                m(1),
                m(28),
            )),
        "sensor-storm" => FaultPlan::new("sensor-storm")
            .with(FaultSpec::new(
                FaultKind::SensorNoise { std: 0.15 },
                FaultTarget::All,
                m(5),
                m(25),
            ))
            .with(FaultSpec::new(
                FaultKind::SensorBias { delta: -0.4 },
                FaultTarget::Unit(0),
                m(8),
                m(20),
            ))
            .with(FaultSpec::new(
                FaultKind::SensorStuckAt { value: 1.0 },
                FaultTarget::Unit(1),
                m(10),
                m(22),
            ))
            .with(FaultSpec::new(
                FaultKind::SensorDropout { p: 0.5 },
                FaultTarget::All,
                m(12),
                m(24),
            )),
        "partition" => FaultPlan::new("partition")
            .with(FaultSpec::new(
                FaultKind::MsgLoss { p: 0.9 },
                FaultTarget::All,
                m(10),
                m(26),
            ))
            .with(FaultSpec::new(
                FaultKind::MsgDelay { rounds: 2 },
                FaultTarget::All,
                m(10),
                m(26),
            ))
            .with(FaultSpec::new(
                FaultKind::MsgReorder { p: 0.25 },
                FaultTarget::All,
                m(10),
                m(26),
            )),
        "brownout" => FaultPlan::new("brownout")
            .with(FaultSpec::new(
                FaultKind::ComponentDerate { factor: 0.8 },
                FaultTarget::All,
                m(5),
                m(28),
            ))
            .with(FaultSpec::new(
                FaultKind::CapacityFade { factor: 0.7 },
                FaultTarget::All,
                m(5),
                m(28),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentOutage,
                FaultTarget::All,
                m(14),
                m(20),
            )),
        _ => return None,
    };
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_plan() -> FaultPlan {
        FaultPlan::new("t").with(FaultSpec::new(
            FaultKind::SensorNoise { std: 0.1 },
            FaultTarget::All,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        ))
    }

    #[test]
    fn edges_fire_once_per_window() {
        let mut f = SimFaults::new(
            noise_plan(),
            DegradedConfig::default(),
            7,
            SimTime::ZERO,
            &[1.0, 1.0],
        )
        .unwrap();
        assert!(f.begin_step(SimTime::ZERO).is_empty());
        let open = f.begin_step(SimTime::from_secs(10));
        assert_eq!(open.len(), 1);
        assert!(open[0].injected);
        assert!(f.begin_step(SimTime::from_secs(15)).is_empty());
        let close = f.begin_step(SimTime::from_secs(20));
        assert_eq!(close.len(), 1);
        assert!(!close[0].injected);
        assert_eq!(f.counters().injected, 1);
        assert_eq!(f.counters().cleared, 1);
    }

    #[test]
    fn sensor_faults_never_touch_ground_truth_and_are_deterministic() {
        let mk = || {
            SimFaults::new(
                noise_plan(),
                DegradedConfig::default(),
                42,
                SimTime::ZERO,
                &[0.8, 0.6],
            )
            .unwrap()
        };
        let truth = [0.8, 0.6];
        let mut a = mk();
        let mut b = mk();
        let t = SimTime::from_secs(12);
        let ra = a.report_socs(t, &truth);
        let rb = b.report_socs(t, &truth);
        assert_eq!(ra, rb, "same seed, same corruption");
        assert_ne!(ra, truth.to_vec(), "noise applied");
        assert_eq!(truth, [0.8, 0.6], "ground truth untouched");
        // Outside the window the readings pass through clean.
        assert_eq!(
            a.report_socs(SimTime::from_secs(30), &truth),
            truth.to_vec()
        );
    }

    #[test]
    fn stuck_and_bias_compose_in_spec_order() {
        let plan = FaultPlan::new("t")
            .with(FaultSpec::new(
                FaultKind::SensorStuckAt { value: 0.5 },
                FaultTarget::Unit(0),
                SimTime::ZERO,
                SimTime::from_secs(10),
            ))
            .with(FaultSpec::new(
                FaultKind::SensorBias { delta: -0.7 },
                FaultTarget::Unit(0),
                SimTime::ZERO,
                SimTime::from_secs(10),
            ));
        let mut f =
            SimFaults::new(plan, DegradedConfig::default(), 1, SimTime::ZERO, &[0.9]).unwrap();
        let r = f.report_socs(SimTime::from_secs(1), &[0.9]);
        // Stuck first (0.5), then bias: 0.5 - 0.7 = -0.2, left unclamped
        // for the vDEB sanitizer to handle.
        assert!((r[0] - (-0.2)).abs() < 1e-12);
    }

    #[test]
    fn total_loss_starves_delivery_and_watchdog_fires() {
        let plan = FaultPlan::new("t").with(FaultSpec::new(
            FaultKind::MsgLoss { p: 1.0 },
            FaultTarget::All,
            SimTime::ZERO,
            SimTime::from_hours(1),
        ));
        let config = DegradedConfig {
            watchdog_timeout: SimDuration::from_secs(30),
            ..DegradedConfig::default()
        };
        let mut f = SimFaults::new(plan, config, 3, SimTime::ZERO, &[1.0]).unwrap();
        let mut held = [RackHeld {
            plan: Watts(100.0),
            grant: Watts(40.0),
            round: 1,
            issued_at: SimTime::ZERO,
            last_contact: SimTime::ZERO,
        }];
        f.deliver_plan(
            SimTime::from_secs(10),
            2,
            &[Watts(5.0)],
            &[Watts(2.0)],
            &[1.0],
            &mut held,
        );
        assert_eq!(held[0].plan, Watts(100.0), "loss keeps the stale plan");
        assert_eq!(held[0].grant, Watts(40.0), "loss keeps the stale grant");
        assert!(f.counters().plans_lost >= 1);
        assert!(f.counters().retries_used >= 1, "bounded retry was spent");
        assert!(f.watchdog_tick(SimTime::from_secs(20), &held).is_empty());
        let edges = f.watchdog_tick(SimTime::from_secs(31), &held);
        assert_eq!(edges, vec![(0, true)]);
        assert!(f.fallback_active(0));
        // A *fresh* delivery outside the loss window clears the fallback.
        f.deliver_plan(
            SimTime::from_hours(2),
            3,
            &[Watts(5.0)],
            &[Watts(2.0)],
            &[1.0],
            &mut held,
        );
        assert_eq!(held[0].plan, Watts(5.0));
        assert_eq!(held[0].grant, Watts(2.0));
        let edges = f.watchdog_tick(SimTime::from_hours(2), &held);
        assert_eq!(edges, vec![(0, false)]);
    }

    #[test]
    fn delay_delivers_older_rounds() {
        let plan = FaultPlan::new("t").with(FaultSpec::new(
            FaultKind::MsgDelay { rounds: 1 },
            FaultTarget::All,
            SimTime::ZERO,
            SimTime::from_hours(1),
        ));
        let mut f =
            SimFaults::new(plan, DegradedConfig::default(), 3, SimTime::ZERO, &[1.0]).unwrap();
        let mut held = [RackHeld::new(SimTime::ZERO)];
        let deliver = |f: &mut SimFaults, t, round, p, g, held: &mut [RackHeld]| {
            f.deliver_plan(t, round, &[Watts(p)], &[Watts(g)], &[1.0], held);
        };
        deliver(&mut f, SimTime::from_secs(10), 1, 1.0, 10.0, &mut held);
        assert_eq!(held[0].round, 0, "first round predates history");
        deliver(&mut f, SimTime::from_secs(20), 2, 2.0, 20.0, &mut held);
        assert_eq!(held[0].plan, Watts(1.0), "one round late");
        assert_eq!(held[0].grant, Watts(10.0), "grant travels with its round");
        assert_eq!(
            held[0].issued_at,
            SimTime::from_secs(10),
            "a delayed round keeps its original lease clock"
        );
        deliver(&mut f, SimTime::from_secs(30), 3, 3.0, 30.0, &mut held);
        assert_eq!(held[0].plan, Watts(2.0));
        assert_eq!(held[0].grant, Watts(20.0));
        assert_eq!(
            f.counters().plans_duplicate,
            0,
            "a delayed round is still newer than what the rack holds"
        );
    }

    #[test]
    fn replayed_rounds_are_duplicates() {
        // A delay window that opens after the rack has already adopted
        // the latest round re-delivers that same round one interval
        // later — a replay the idempotent receive must ignore.
        let plan = FaultPlan::new("t").with(FaultSpec::new(
            FaultKind::MsgDelay { rounds: 1 },
            FaultTarget::All,
            SimTime::from_secs(25),
            SimTime::from_hours(1),
        ));
        let mut f =
            SimFaults::new(plan, DegradedConfig::default(), 3, SimTime::ZERO, &[1.0]).unwrap();
        let mut held = [RackHeld::new(SimTime::ZERO)];
        let deliver = |f: &mut SimFaults, t, round, held: &mut [RackHeld]| {
            f.deliver_plan(
                t,
                round,
                &[Watts(round as f64)],
                &[Watts(10.0 * round as f64)],
                &[1.0],
                held,
            );
        };
        // Healthy deliveries: the rack adopts rounds 1 and 2.
        deliver(&mut f, SimTime::from_secs(10), 1, &mut held);
        deliver(&mut f, SimTime::from_secs(20), 2, &mut held);
        assert_eq!(held[0].round, 2);
        let clock = held[0].last_contact;
        // The delay window is now open: the round-3 delivery resolves
        // one round older, replaying round 2 — a duplicate. Before the
        // idempotence fix this replay re-applied round 2's grant (a
        // double-spend of headroom the coordinator has since re-granted)
        // and refreshed the staleness clock.
        deliver(&mut f, SimTime::from_secs(30), 3, &mut held);
        assert_eq!(held[0].round, 2, "replay not re-applied");
        assert_eq!(held[0].grant, Watts(20.0), "grant unchanged by replay");
        assert_eq!(
            held[0].last_contact, clock,
            "replay does not refresh the staleness clock"
        );
        assert_eq!(f.counters().plans_duplicate, 1);
        // The next round's delayed delivery resolves to round 3: fresh.
        deliver(&mut f, SimTime::from_secs(40), 4, &mut held);
        assert_eq!(held[0].round, 3);
        assert!(held[0].last_contact > clock);
    }

    #[test]
    fn decayed_soc_gates_fallback_cap() {
        let plan = FaultPlan::new("t");
        let config = DegradedConfig {
            soc_decay_per_hour: 0.5,
            ..DegradedConfig::default()
        };
        let f = SimFaults::new(plan, config, 1, SimTime::ZERO, &[0.6]).unwrap();
        let p = Watts(250.0);
        assert_eq!(f.fallback_cap(SimTime::ZERO, 0, p, 0.3), p);
        // After one hour the estimate decays 0.6 -> 0.1, under the
        // reserve: the cap drops to zero.
        assert_eq!(
            f.fallback_cap(SimTime::from_hours(1), 0, p, 0.3),
            Watts::ZERO
        );
        assert!((f.decayed_soc(SimTime::from_hours(1), 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn component_factors_take_most_severe() {
        let plan = FaultPlan::new("t")
            .with(FaultSpec::new(
                FaultKind::ComponentDerate { factor: 0.9 },
                FaultTarget::All,
                SimTime::ZERO,
                SimTime::from_secs(10),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentDerate { factor: 0.7 },
                FaultTarget::Unit(0),
                SimTime::ZERO,
                SimTime::from_secs(10),
            ))
            .with(FaultSpec::new(
                FaultKind::CapacityFade { factor: 0.8 },
                FaultTarget::Unit(1),
                SimTime::ZERO,
                SimTime::from_secs(10),
            ))
            .with(FaultSpec::new(
                FaultKind::ComponentOutage,
                FaultTarget::Unit(1),
                SimTime::ZERO,
                SimTime::from_secs(10),
            ));
        let f = SimFaults::new(
            plan,
            DegradedConfig::default(),
            1,
            SimTime::ZERO,
            &[1.0, 1.0],
        )
        .unwrap();
        let t = SimTime::from_secs(1);
        assert!((f.breaker_derate(t, 0) - 0.7).abs() < 1e-12);
        assert!((f.breaker_derate(t, 1) - 0.9).abs() < 1e-12);
        assert!((f.capacity_factor(t, 0) - 1.0).abs() < 1e-12);
        assert!((f.capacity_factor(t, 1) - 0.8).abs() < 1e-12);
        assert!(!f.udeb_out(t, 0));
        assert!(f.udeb_out(t, 1));
        let after = SimTime::from_secs(11);
        assert!((f.breaker_derate(after, 0) - 1.0).abs() < 1e-12);
        assert!(!f.udeb_out(after, 1));
    }

    #[test]
    fn named_plans_all_validate() {
        for name in NAMED_PLANS {
            let plan = named_plan(name).expect("named plan exists");
            plan.validate().expect("named plan valid");
            assert_eq!(plan.name(), name);
        }
        assert!(named_plan("nonsense").is_none());
    }

    #[test]
    fn report_renders_json() {
        let f = SimFaults::new(
            named_plan("ci-smoke").unwrap(),
            DegradedConfig::default(),
            1,
            SimTime::ZERO,
            &[1.0],
        )
        .unwrap();
        let json = f.report().to_json();
        assert!(json.starts_with("{\"plan\":\"ci-smoke\""));
        assert!(json.contains("\"specs\":5"));
        assert!(json.contains("\"fallback_ticks\":0"));
    }
}
