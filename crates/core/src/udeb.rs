//! Micro distributed energy backup (µDEB).
//!
//! "We propose to further integrate a dedicated small power backup device
//! in existing rack power zone … the µDEB must be designed to react to any
//! voltage surge/sags automatically. To this end, we connect µDEB with the
//! primary power delivery bus using an ORing controller (a low
//! forward-voltage FET device)." (§IV.B.2)
//!
//! The ORing path means the super-capacitor shaves whatever excess appears
//! on the bus with **zero software latency** — the property that closes
//! the 100–300 ms capping gap hidden spikes exploit. Between spikes it
//! recharges opportunistically from budget headroom.

use battery::model::EnergyStorage;
use battery::supercap::{SuperCapacitor, SC_COST_USD_PER_WH};
use battery::units::{Joules, WattHours, Watts};
use simkit::time::SimDuration;

/// Lead-acid price band ($/Wh) for the Figure-17 cost ratio (supercaps are
/// 10~30 $/Wh per the paper; lead-acid cabinets are roughly 0.2–0.4 $/Wh).
pub const LEAD_ACID_COST_USD_PER_WH: f64 = 0.3;

/// A rack-level µDEB unit: super-capacitor bank behind an ORing FET.
///
/// The unit is a *spike* shaver, not a peak shaver: "current sharing for
/// sustained peak shaving can cause thermal issues in µDEB" (§IV.B.2), so
/// a thermal burst guard cuts the ORing path after 5 s of continuous
/// discharge and re-arms it only after an equal rest.
///
/// # Example
///
/// ```
/// use pad::udeb::MicroDeb;
/// use pad::units::{Joules, Watts};
/// use simkit::time::SimDuration;
///
/// // A µDEB sized at 5% of a 290 kJ cabinet.
/// let mut udeb = MicroDeb::sized_fraction(Joules(290_000.0), 0.05, Watts(6000.0));
/// // A 700 W spike excess for 2 s: shaved instantly, no software involved.
/// let shaved = udeb.shave(Watts(700.0), SimDuration::from_secs(2));
/// assert_eq!(shaved, Watts(700.0));
/// assert!(udeb.soc() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MicroDeb {
    bank: SuperCapacitor,
    /// Recharge draw cap, so recharging never becomes its own power peak.
    recharge_rate: Watts,
    /// Lifetime energy shaved (for the effectiveness reports).
    shaved_total: Joules,
    /// Number of shave events served.
    shave_events: u64,
    /// Continuous-discharge stopwatch for the thermal burst guard.
    burst_secs: f64,
    /// Rest accumulated since the guard tripped.
    rest_secs: f64,
    /// Whether the burst guard has cut the ORing path.
    guard_open: bool,
}

impl MicroDeb {
    /// Creates a µDEB around an explicit super-capacitor bank.
    pub fn new(bank: SuperCapacitor, recharge_rate: Watts) -> Self {
        assert!(recharge_rate.0 > 0.0, "recharge rate must be positive");
        MicroDeb {
            bank,
            recharge_rate,
            shaved_total: Joules::ZERO,
            shave_events: 0,
            burst_secs: 0.0,
            rest_secs: 0.0,
            guard_open: false,
        }
    }

    /// Sizes the bank as a fraction of the rack cabinet's capacity — the
    /// Figure 17 sweep knob ("keep the cost of µDEB below certain
    /// percentage of vDEB by limiting the installed capacity").
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn sized_fraction(cabinet_capacity: Joules, fraction: f64, max_power: Watts) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "capacity fraction must be in (0,1], got {fraction}"
        );
        let usable = cabinet_capacity * fraction;
        let bank = SuperCapacitor::with_usable_energy(usable, max_power);
        // Recharge within ~20 s from empty, but never faster than 10% of
        // the spike power rating.
        let recharge = (usable / SimDuration::from_secs(20)).max(max_power * 0.02);
        MicroDeb::new(bank, recharge)
    }

    /// The super-capacitor bank.
    pub fn bank(&self) -> &SuperCapacitor {
        &self.bank
    }

    /// State of charge of the bank.
    pub fn soc(&self) -> f64 {
        self.bank.soc()
    }

    /// `true` while the bank can still shave (the policy FSM's `µDEB > 0`
    /// input).
    pub fn available(&self) -> bool {
        self.bank.soc() > 0.02
    }

    /// Total energy shaved so far.
    pub fn shaved_total(&self) -> Joules {
        self.shaved_total
    }

    /// Number of non-zero shave events served.
    pub fn shave_events(&self) -> u64 {
        self.shave_events
    }

    /// Maximum continuous discharge before the thermal guard opens.
    const MAX_BURST_SECS: f64 = 5.0;

    /// ORing-path shave: absorbs up to `excess` for `dt`, automatically.
    /// Returns the power actually shaved.
    ///
    /// Sustained draws trip the thermal burst guard: after 5 s of
    /// continuous discharge the path opens and only re-arms after an
    /// equal rest, so the bank's energy is preserved for the hidden
    /// spikes it exists to absorb.
    pub fn shave(&mut self, excess: Watts, dt: SimDuration) -> Watts {
        if excess.0 <= 0.0 || dt.is_zero() {
            self.note_rest(dt);
            return Watts::ZERO;
        }
        if self.guard_open {
            self.note_rest(dt);
            return Watts::ZERO;
        }
        self.burst_secs += dt.as_secs_f64();
        self.rest_secs = 0.0;
        if self.burst_secs > Self::MAX_BURST_SECS {
            self.guard_open = true;
            return Watts::ZERO;
        }
        let shaved = self.bank.discharge(excess, dt);
        if shaved.0 > 0.0 {
            self.shaved_total += shaved * dt;
            self.shave_events += 1;
        }
        shaved
    }

    fn note_rest(&mut self, dt: SimDuration) {
        self.rest_secs += dt.as_secs_f64();
        if self.rest_secs >= Self::MAX_BURST_SECS {
            self.burst_secs = 0.0;
            self.guard_open = false;
        }
    }

    /// Whether the thermal burst guard currently blocks the ORing path.
    pub fn guard_open(&self) -> bool {
        self.guard_open
    }

    /// Opportunistic recharge from budget `headroom`. Returns the power
    /// drawn from the grid. Recharging counts as rest for the burst
    /// guard.
    pub fn recharge(&mut self, headroom: Watts, dt: SimDuration) -> Watts {
        self.note_rest(dt);
        if headroom.0 <= 0.0 || dt.is_zero() {
            return Watts::ZERO;
        }
        self.bank.charge(headroom.min(self.recharge_rate), dt)
    }

    /// Purchase cost of this unit at the paper's super-capacitor price
    /// band.
    pub fn cost_usd(&self) -> f64 {
        self.bank.cost_usd(SC_COST_USD_PER_WH)
    }

    /// Figure 17's cost ratio: µDEB cost over the cost of the (lead-acid)
    /// vDEB cabinet it supplements.
    pub fn cost_ratio_vs_cabinet(&self, cabinet_capacity: Joules) -> f64 {
        let cabinet_cost = WattHours::from(cabinet_capacity).0 * LEAD_ACID_COST_USD_PER_WH;
        if cabinet_cost <= 0.0 {
            f64::INFINITY
        } else {
            self.cost_usd() / cabinet_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udeb(fraction: f64) -> MicroDeb {
        MicroDeb::sized_fraction(Joules(290_000.0), fraction, Watts(6000.0))
    }

    #[test]
    fn sized_fraction_sets_capacity() {
        let u = udeb(0.05);
        assert!((u.bank().capacity().0 - 14_500.0).abs() < 1.0);
    }

    #[test]
    fn shaves_full_spike_when_charged() {
        let mut u = udeb(0.05);
        let got = u.shave(Watts(900.0), SimDuration::from_secs(2));
        assert_eq!(got, Watts(900.0));
        assert_eq!(u.shave_events(), 1);
        assert!((u.shaved_total().0 - 1800.0).abs() < 1e-6);
    }

    #[test]
    fn empty_bank_shaves_nothing() {
        let mut u = udeb(0.01);
        // Drain it.
        while u.available() {
            u.shave(Watts(6000.0), SimDuration::from_millis(100));
        }
        let got = u.shave(Watts(500.0), SimDuration::from_millis(100));
        assert!(got.0 < 500.0, "depleted bank cannot shave fully");
    }

    #[test]
    fn recharges_between_spikes() {
        let mut u = udeb(0.01);
        u.shave(Watts(6000.0), SimDuration::from_millis(400));
        let before = u.soc();
        // 8 s gap with 300 W of headroom.
        u.recharge(Watts(300.0), SimDuration::from_secs(8));
        assert!(u.soc() > before);
    }

    #[test]
    fn recharge_draw_is_capped() {
        let mut u = udeb(0.05);
        u.shave(Watts(6000.0), SimDuration::from_secs(1));
        let drawn = u.recharge(Watts(100_000.0), SimDuration::SECOND);
        assert!(drawn.0 <= u.recharge_rate.0 + 1e-9, "drew {drawn}");
    }

    #[test]
    fn no_recharge_without_headroom() {
        let mut u = udeb(0.05);
        u.shave(Watts(6000.0), SimDuration::from_secs(1));
        assert_eq!(u.recharge(Watts(0.0), SimDuration::SECOND), Watts::ZERO);
        assert_eq!(u.recharge(Watts(-100.0), SimDuration::SECOND), Watts::ZERO);
    }

    #[test]
    fn cost_ratio_scales_linearly_with_fraction() {
        let small = udeb(0.01).cost_ratio_vs_cabinet(Joules(290_000.0));
        let large = udeb(0.10).cost_ratio_vs_cabinet(Joules(290_000.0));
        assert!(
            (large / small - 10.0).abs() < 0.01,
            "ratio {}",
            large / small
        );
        // Supercaps are ~67× pricier per Wh, so 1% capacity ≈ 67% cost.
        assert!(
            (small - 0.667).abs() < 0.01,
            "1% capacity cost ratio {small}"
        );
    }

    #[test]
    fn availability_threshold() {
        let mut u = udeb(0.01);
        assert!(u.available());
        while u.soc() > 0.01 {
            u.shave(Watts(6000.0), SimDuration::from_millis(100));
        }
        assert!(!u.available());
    }
}
