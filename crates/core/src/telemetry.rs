//! Simulator-side telemetry wiring.
//!
//! [`SimTelemetry`] binds [`ClusterSim`](crate::sim::ClusterSim) to the
//! generic [`simkit::telemetry`] layer: it registers the cluster's
//! metric set once (registration order fixes the [`MetricId`] order, and
//! the per-tick emission loop walks racks in the same order, so recorded
//! streams are already in the canonical sort order), holds the interned
//! ids, and owns the recording sink.
//!
//! # Metric naming
//!
//! Names follow `<scope>.<quantity>[_<unit>]`:
//!
//! | scope       | metrics |
//! |-------------|---------|
//! | `rack-NN`   | `draw_w`, `soc`, `batt_discharge_w`, `batt_charge_w`, `udeb_energy_j`, `udeb_shave_w`, `cap_duty`, `breaker_margin` |
//! | `cluster`   | `draw_w` (gauge); `overloads`, `breaker_trips`, `level_changes`, `shed_events` (counters) |
//! | `policy`    | `level` (gauge, 1–3) |
//! | `rack`      | `draw_w.hist` (histogram of every per-rack draw sample) |
//!
//! Typed events ([`EventKind`]) carry the emitting component as their
//! source (`rack-NN`, `pdu`, `policy`, `shedder`, `migrator`,
//! `operator`).

use simkit::telemetry::{
    EventKind, MetricId, MetricRegistry, Recorder, RingRecorder, TelemetryDump, TelemetrySink,
};
use simkit::time::SimTime;

/// The interned per-rack gauge ids, one struct per rack.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RackMetrics {
    draw: MetricId,
    soc: MetricId,
    batt_discharge: MetricId,
    batt_charge: MetricId,
    udeb_energy: MetricId,
    udeb_shave: MetricId,
    cap_duty: MetricId,
    breaker_margin: MetricId,
}

/// One rack's per-tick gauge readings, in engineering units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RackTick {
    /// Utility draw after shaving, watts.
    pub draw_w: f64,
    /// Battery cabinet state of charge, `[0, 1]`.
    pub soc: f64,
    /// Battery discharge power delivered this tick, watts.
    pub batt_discharge_w: f64,
    /// Battery recharge power drawn this tick, watts.
    pub batt_charge_w: f64,
    /// Energy stored in the µDEB super-capacitor, joules (0 when the
    /// scheme deploys no µDEB).
    pub udeb_energy_j: f64,
    /// µDEB shave power delivered this tick, watts.
    pub udeb_shave_w: f64,
    /// DVFS factor currently in force (1.0 = uncapped).
    pub cap_duty: f64,
    /// Breaker thermal margin, 1.0 cold → 0.0 tripping.
    pub breaker_margin: f64,
}

/// The cluster simulator's telemetry state: registry, interned ids, and
/// the recording sink.
///
/// Construction registers every metric; the registry is immutable
/// afterwards, which is what makes `MetricId` order (and therefore
/// serialized output) a pure function of the topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTelemetry {
    registry: MetricRegistry,
    sink: TelemetrySink,
    racks: Vec<RackMetrics>,
    cluster_draw: MetricId,
    policy_level: MetricId,
    overloads: MetricId,
    breaker_trips: MetricId,
    level_changes: MetricId,
    shed_events: MetricId,
    draw_hist: MetricId,
    dropped_hint: u64,
}

impl SimTelemetry {
    /// Registers the full metric set for a cluster of `racks` racks whose
    /// per-rack draw ranges up to `rack_nameplate_w` (histogram bounds),
    /// recording into `sink`.
    pub fn new(racks: usize, rack_nameplate_w: f64, sink: TelemetrySink) -> Self {
        let mut registry = MetricRegistry::new();
        let rack_ids = (0..racks)
            .map(|r| RackMetrics {
                draw: registry.register_gauge(&format!("rack-{r:02}.draw_w")),
                soc: registry.register_gauge(&format!("rack-{r:02}.soc")),
                batt_discharge: registry.register_gauge(&format!("rack-{r:02}.batt_discharge_w")),
                batt_charge: registry.register_gauge(&format!("rack-{r:02}.batt_charge_w")),
                udeb_energy: registry.register_gauge(&format!("rack-{r:02}.udeb_energy_j")),
                udeb_shave: registry.register_gauge(&format!("rack-{r:02}.udeb_shave_w")),
                cap_duty: registry.register_gauge(&format!("rack-{r:02}.cap_duty")),
                breaker_margin: registry.register_gauge(&format!("rack-{r:02}.breaker_margin")),
            })
            .collect();
        let hi = (rack_nameplate_w * 1.25).max(1.0);
        SimTelemetry {
            racks: rack_ids,
            cluster_draw: registry.register_gauge("cluster.draw_w"),
            policy_level: registry.register_gauge("policy.level"),
            overloads: registry.register_counter("cluster.overloads"),
            breaker_trips: registry.register_counter("cluster.breaker_trips"),
            level_changes: registry.register_counter("cluster.level_changes"),
            shed_events: registry.register_counter("cluster.shed_events"),
            draw_hist: registry.register_histogram("rack.draw_w.hist", 0.0, hi, 50),
            registry,
            sink,
            dropped_hint: 0,
        }
    }

    /// Convenience: a ring-buffered telemetry state.
    pub fn ring(racks: usize, rack_nameplate_w: f64, capacity: usize) -> Self {
        SimTelemetry::new(
            racks,
            rack_nameplate_w,
            TelemetrySink::Ring(RingRecorder::new(capacity)),
        )
    }

    /// The metric registry (aggregates and the name table).
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// `true` when the sink retains records (the per-tick gauge loop is
    /// skipped entirely when this is `false`).
    pub fn recording(&self) -> bool {
        self.sink.enabled()
    }

    /// Records one rack's per-tick gauges (and feeds the draw histogram).
    pub fn record_rack(&mut self, now: SimTime, rack: usize, tick: RackTick) {
        let ids = self.racks[rack];
        self.registry.set_gauge(ids.draw, tick.draw_w);
        self.registry.set_gauge(ids.soc, tick.soc);
        self.registry
            .set_gauge(ids.batt_discharge, tick.batt_discharge_w);
        self.registry.set_gauge(ids.batt_charge, tick.batt_charge_w);
        self.registry.set_gauge(ids.udeb_energy, tick.udeb_energy_j);
        self.registry.set_gauge(ids.udeb_shave, tick.udeb_shave_w);
        self.registry.set_gauge(ids.cap_duty, tick.cap_duty);
        self.registry
            .set_gauge(ids.breaker_margin, tick.breaker_margin);
        self.registry.observe(self.draw_hist, tick.draw_w);
        self.sink.record_sample(now, ids.draw, tick.draw_w);
        self.sink.record_sample(now, ids.soc, tick.soc);
        self.sink
            .record_sample(now, ids.batt_discharge, tick.batt_discharge_w);
        self.sink
            .record_sample(now, ids.batt_charge, tick.batt_charge_w);
        self.sink
            .record_sample(now, ids.udeb_energy, tick.udeb_energy_j);
        self.sink
            .record_sample(now, ids.udeb_shave, tick.udeb_shave_w);
        self.sink.record_sample(now, ids.cap_duty, tick.cap_duty);
        self.sink
            .record_sample(now, ids.breaker_margin, tick.breaker_margin);
    }

    /// Records the cluster-scope per-tick gauges.
    pub fn record_cluster(&mut self, now: SimTime, cluster_draw_w: f64, policy_level: u8) {
        self.registry.set_gauge(self.cluster_draw, cluster_draw_w);
        self.registry
            .set_gauge(self.policy_level, policy_level as f64);
        self.sink
            .record_sample(now, self.cluster_draw, cluster_draw_w);
        self.sink
            .record_sample(now, self.policy_level, policy_level as f64);
    }

    /// Records one typed event, bumping the matching cluster counter.
    pub fn event(&mut self, now: SimTime, kind: EventKind, source: &str, value: f64) {
        match kind {
            EventKind::Overload => self.registry.inc(self.overloads, 1),
            EventKind::BreakerTrip => self.registry.inc(self.breaker_trips, 1),
            EventKind::LevelChange => self.registry.inc(self.level_changes, 1),
            EventKind::Shed => self.registry.inc(self.shed_events, 1),
            _ => {}
        }
        self.sink.record_event(now, kind, source, value);
    }

    /// Consumes the state into a serializable [`TelemetryDump`].
    pub fn into_dump(self) -> TelemetryDump {
        let (records, dropped) = match self.sink {
            TelemetrySink::Null => (Vec::new(), 0),
            TelemetrySink::Ring(ring) => {
                let dropped = ring.dropped();
                (ring.into_records(), dropped)
            }
        };
        TelemetryDump::new(self.registry, records, dropped + self.dropped_hint)
    }

    /// The metric names this cluster shape registers, in id order — the
    /// schema the CI drift check pins down.
    pub fn schema(racks: usize) -> Vec<String> {
        SimTelemetry::new(racks, 1.0, TelemetrySink::Null)
            .registry
            .names()
            .map(str::to_string)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_registration_ordered() {
        let names = SimTelemetry::schema(2);
        assert_eq!(names[0], "rack-00.draw_w");
        assert_eq!(names[7], "rack-00.breaker_margin");
        assert_eq!(names[8], "rack-01.draw_w");
        assert_eq!(names[16], "cluster.draw_w");
        assert_eq!(names.last().unwrap(), "rack.draw_w.hist");
        assert_eq!(names.len(), 2 * 8 + 7);
    }

    #[test]
    fn rack_tick_feeds_gauges_histogram_and_sink() {
        let mut t = SimTelemetry::ring(1, 1000.0, 64);
        assert!(t.recording());
        let tick = RackTick {
            draw_w: 800.0,
            soc: 0.9,
            cap_duty: 1.0,
            breaker_margin: 1.0,
            ..RackTick::default()
        };
        t.record_rack(SimTime::from_millis(100), 0, tick);
        t.record_cluster(SimTime::from_millis(100), 800.0, 1);
        let reg = t.registry();
        let draw = reg.id("rack-00.draw_w").unwrap();
        assert_eq!(reg.gauge(draw), 800.0);
        assert_eq!(reg.stats(draw).count(), 1);
        let hist = reg.id("rack.draw_w.hist").unwrap();
        assert_eq!(reg.histogram(hist).unwrap().counts().iter().sum::<u64>(), 1);
        let dump = t.into_dump();
        assert_eq!(dump.records.len(), 10, "8 rack + 2 cluster samples");
        let jsonl = dump.to_jsonl();
        assert!(jsonl.starts_with("{\"t\":100,\"m\":\"rack-00.draw_w\",\"v\":800}"));
    }

    #[test]
    fn events_bump_matching_counters() {
        let mut t = SimTelemetry::ring(1, 1000.0, 64);
        t.event(SimTime::ZERO, EventKind::Overload, "rack-00", 900.0);
        t.event(SimTime::ZERO, EventKind::BreakerTrip, "pdu", 1.0);
        t.event(SimTime::ZERO, EventKind::LvdIsolation, "rack-00", 1.0);
        let reg = t.registry();
        assert_eq!(reg.counter(reg.id("cluster.overloads").unwrap()), 1);
        assert_eq!(reg.counter(reg.id("cluster.breaker_trips").unwrap()), 1);
        assert_eq!(reg.counter(reg.id("cluster.shed_events").unwrap()), 0);
        assert_eq!(t.into_dump().records.len(), 3);
    }

    #[test]
    fn null_sink_still_counts_events() {
        let mut t = SimTelemetry::new(1, 1000.0, TelemetrySink::Null);
        assert!(!t.recording());
        t.event(SimTime::ZERO, EventKind::Shed, "shedder", 3.0);
        assert_eq!(
            t.registry()
                .counter(t.registry().id("cluster.shed_events").unwrap()),
            1
        );
        let dump = t.into_dump();
        assert!(dump.records.is_empty());
    }
}
